"""E13 — capture rules: bound-argument specialization of linear recursion."""

import pytest

from repro import paper
from repro.bench import experiments
from repro.calculus import dsl as d
from repro.compiler import bound_query, construct_compiled, detect_linear_tc
from repro.constructors import instantiate
from repro.workloads import chain

from benchtable import write_table

EDGES = chain(256)


@pytest.fixture(scope="module")
def chain_db():
    return paper.cad_database(infront=EDGES, mutual=False)


@pytest.fixture(scope="module")
def tc_shape(chain_db):
    system = instantiate(chain_db, d.constructed("Infront", "ahead"))
    return detect_linear_tc(chain_db, system)


@pytest.mark.benchmark(group="E13-specialization")
def test_e13_full_lfp(benchmark, chain_db):
    result = benchmark(
        lambda: construct_compiled(chain_db, d.constructed("Infront", "ahead"))
    )
    assert len(result.rows) == 256 * 257 // 2


@pytest.mark.benchmark(group="E13-specialization")
def test_e13_seeded_bound_head(benchmark, chain_db, tc_shape):
    rows = benchmark(lambda: bound_query(chain_db, tc_shape, "head", "n0"))
    assert len(rows) == 256


@pytest.mark.benchmark(group="E13-specialization")
def test_e13_seeded_bound_tail(benchmark, chain_db, tc_shape):
    rows = benchmark(lambda: bound_query(chain_db, tc_shape, "tail", "n256"))
    assert len(rows) == 256


@pytest.mark.benchmark(group="E13-specialization")
def test_e13_table(benchmark):
    table = benchmark.pedantic(
        experiments.e13_specialization,
        kwargs={"sizes": (64, 256, 512)},
        rounds=1,
        iterations=1,
    )
    write_table("e13", table)
    assert table.rows
