"""E1 — selector semantics and checked assignment (Fig. 1)."""

import pytest

from repro.bench import experiments
from repro.selectors import selected
from repro.workloads import generate_scene

from benchtable import write_table


@pytest.fixture(scope="module")
def scene_db():
    return generate_scene(rooms=16, row_length=6).database(mutual=False)


@pytest.mark.benchmark(group="E1-selectors")
def test_e01_selected_read(benchmark, scene_db):
    view = selected(scene_db, "Infront", "hidden_by",
                    scene_db["Infront"].sorted_rows()[0][0])
    rows = benchmark(view.value)
    assert rows


@pytest.mark.benchmark(group="E1-selectors")
def test_e01_checked_assignment(benchmark, scene_db):
    view = selected(scene_db, "Infront", "refint")
    rows = list(scene_db["Infront"].rows())
    benchmark(lambda: view.assign(rows))


@pytest.mark.benchmark(group="E1-selectors")
def test_e01_table(benchmark):
    table = benchmark.pedantic(experiments.e01_selectors, rounds=1, iterations=1)
    write_table("e01", table)
    assert all(row[-1] for row in table.rows)  # every equivalence held
