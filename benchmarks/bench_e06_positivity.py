"""E6 — positivity checking and the nonsense/strange iterations (section 3.3)."""

import pytest

from repro import paper
from repro.bench import experiments
from repro.constructors import apply_constructor
from repro.errors import ConvergenceError
from repro.relational import Database

from benchtable import write_table


def make_card_db(n: int) -> Database:
    db = Database()
    db.declare("Base", paper.CARDREL, [(i,) for i in range(n)])
    return db


@pytest.mark.benchmark(group="E6-positivity")
def test_e06_positivity_check_cost(benchmark):
    """Definition-time positivity analysis of the full CAD module."""

    def define_all():
        db = Database()
        db.declare("Objects", paper.OBJECTREL)
        db.declare("Infront", paper.INFRONTREL)
        db.declare("Ontop", paper.ONTOPREL)
        paper.define_mutual_ahead_above(db)
        return db

    benchmark(define_all)


@pytest.mark.benchmark(group="E6-positivity")
def test_e06_strange_limit(benchmark):
    db = make_card_db(32)
    paper.define_strange(db)
    result = benchmark(
        lambda: apply_constructor(db, "Base", "strange", allow_nonmonotonic=True)
    )
    assert (0,) in result.rows and (1,) not in result.rows


@pytest.mark.benchmark(group="E6-positivity")
def test_e06_nonsense_detection(benchmark):
    db = make_card_db(8)
    paper.define_nonsense(db)

    def detect():
        try:
            apply_constructor(db, "Base", "nonsense", allow_nonmonotonic=True)
            return False
        except ConvergenceError:
            return True

    assert benchmark(detect)


@pytest.mark.benchmark(group="E6-positivity")
def test_e06_table(benchmark):
    table = benchmark.pedantic(experiments.e06_positivity, rounds=1, iterations=1)
    write_table("e06", table)
    verdicts = [row[1] for row in table.rows]
    assert verdicts == ["accepted", "rejected", "rejected"]
