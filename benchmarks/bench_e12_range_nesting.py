"""E12 — range nesting N1-N3 and the compiled-plan execution ablation."""

import pytest

from repro import paper
from repro.bench import experiments
from repro.calculus import Evaluator, dsl as d, nest_binding, unnest_query
from repro.compiler import run_query
from repro.workloads import random_digraph

from benchtable import write_table

EDGES = random_digraph(48, 480, seed=13)


@pytest.fixture(scope="module")
def graph_db():
    return paper.cad_database(infront=EDGES, mutual=False)


JOIN_QUERY = d.query(
    d.branch(
        d.each("f", "Infront"), d.each("b", "Infront"),
        pred=d.eq(d.a("f", "back"), d.a("b", "front")),
        targets=[d.a("f", "front"), d.a("b", "back")],
    )
)


@pytest.mark.benchmark(group="E12-execution")
def test_e12_reference_nested_loop(benchmark, graph_db):
    rows = benchmark(lambda: Evaluator(graph_db).eval_query(JOIN_QUERY))
    assert rows


@pytest.mark.benchmark(group="E12-execution")
def test_e12_compiled_index_join(benchmark, graph_db):
    rows = benchmark(lambda: run_query(graph_db, JOIN_QUERY))
    assert rows == Evaluator(graph_db).eval_query(JOIN_QUERY)


@pytest.mark.benchmark(group="E12-execution")
def test_e12_nesting_rewrite_cost(benchmark, graph_db):
    branch = JOIN_QUERY.branches[0]
    restricted = d.branch(
        *branch.bindings,
        pred=d.and_(branch.pred, d.eq(d.a("f", "front"), "n1")),
        targets=list(branch.targets),
    )

    def rewrite_roundtrip():
        nested = nest_binding(restricted, "f")
        return unnest_query(d.query(nested))

    flat = benchmark(rewrite_roundtrip)
    assert Evaluator(graph_db).eval_query(flat) == Evaluator(graph_db).eval_query(
        d.query(restricted)
    )


@pytest.mark.benchmark(group="E12-execution")
def test_e12_table(benchmark):
    table = benchmark.pedantic(experiments.e12_range_nesting, rounds=1, iterations=1)
    write_table("e12", table)
    assert all(row[-1] for row in table.rows)
