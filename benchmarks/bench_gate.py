"""Benchmark regression gate: compare BENCH_*.json against baselines.

``python -m repro.bench.run_all`` writes one ``BENCH_<id>.json`` per
experiment (wall-clock, a machine-speed calibration, and the sweep's own
metrics).  This gate compares a freshly produced set against the
committed baselines in ``benchmarks/baselines/`` and fails on:

* **wall-clock** — calibration-normalized elapsed time more than
  ``threshold`` (default 1.5x) above the baseline;
* **scanned-row counters** — any ``*_rows_scanned`` metric more than
  ``threshold`` above the baseline, and any ``*_scan_ratio`` metric
  (a quotient of scanned-row counters) dropping below
  baseline / ``threshold``: both deterministic, machine-independent;
* **timing speedups** — any other ``*_speedup`` / ``*_ratio`` metric
  collapsing below baseline / ``RATIO_THRESHOLD`` (3x).  These are
  ratios of few-sample timings, so they get a deliberately wide margin:
  the gate catches a headline win structurally disappearing (463x
  falling to 100x), not scheduler noise on a shared runner;
* **schema** — a record whose ``schema`` version differs from its
  baseline fails outright (refresh the baselines instead of comparing
  incomparable shapes).

Usage::

    python benchmarks/bench_gate.py --baselines benchmarks/baselines \
        --current results [--threshold 1.5] [--update]

``--update`` refreshes the baselines from the current results (the
documented baseline-refresh procedure — see benchmarks/README.md).
``--inject-slowdown F`` multiplies current wall-clocks by ``F`` before
comparing; it exists to demonstrate that the gate actually fails (used
by the PR description and the gate's own tests).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys


#: Ratio/speedup metrics are few-sample timing quotients; a drop has to
#: clear this (wide) factor before it reads as a regression.
RATIO_THRESHOLD = 3.0


def load_records(directory: pathlib.Path) -> dict[str, dict]:
    records = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        record = json.loads(path.read_text())
        records[record["experiment"]] = record
    return records


def compare_records(base: dict, cur: dict, threshold: float) -> list[str]:
    """Human-readable regression messages for one experiment (empty = ok)."""
    failures = []
    name = base["experiment"]
    if base.get("schema") != cur.get("schema"):
        return [
            f"{name}: record schema {cur.get('schema')!r} does not match "
            f"baseline schema {base.get('schema')!r} — refresh the baselines"
        ]
    base_norm = base.get("normalized") or 0.0
    cur_norm = cur.get("normalized") or 0.0
    if base_norm > 0 and cur_norm > base_norm * threshold:
        failures.append(
            f"{name}: normalized wall-clock {cur_norm:.2f} vs baseline "
            f"{base_norm:.2f} ({cur_norm / base_norm:.2f}x > {threshold}x)"
        )
    base_metrics = base.get("metrics", {})
    cur_metrics = cur.get("metrics", {})
    for key, base_value in base_metrics.items():
        cur_value = cur_metrics.get(key)
        if cur_value is None:
            # A gated metric silently disappearing is itself a failure —
            # it usually means the sweep stopped measuring the win.
            failures.append(
                f"{name}: baseline metric {key} missing from the current "
                f"record — did the experiment stop recording it?"
            )
            continue
        if base_value <= 0:
            continue
        if key.endswith("_rows_scanned") and cur_value > base_value * threshold:
            failures.append(
                f"{name}: {key} {cur_value:.0f} vs baseline {base_value:.0f} "
                f"({cur_value / base_value:.2f}x > {threshold}x)"
            )
        elif key.endswith("_scan_ratio") and cur_value < base_value / threshold:
            # Quotients of scanned-row counters are deterministic, so
            # they gate at the tight threshold, not the timing margin.
            failures.append(
                f"{name}: {key} fell to {cur_value:.2f} from baseline "
                f"{base_value:.2f} (> {threshold}x drop, deterministic)"
            )
        elif (
            key.endswith(("_speedup", "_ratio"))
            and cur_value < base_value / RATIO_THRESHOLD
        ):
            failures.append(
                f"{name}: {key} fell to {cur_value:.2f} from baseline "
                f"{base_value:.2f} (> {RATIO_THRESHOLD}x drop)"
            )
    return failures


def run_gate(
    baselines: pathlib.Path,
    current: pathlib.Path,
    threshold: float = 1.5,
    inject_slowdown: float = 1.0,
) -> tuple[list[str], list[str]]:
    """(failures, notes) of the whole gate run."""
    base_records = load_records(baselines)
    cur_records = load_records(current)
    failures: list[str] = []
    notes: list[str] = []
    if not base_records:
        notes.append(f"no baselines under {baselines} — nothing gated")
    for name, base in sorted(base_records.items()):
        cur = cur_records.get(name)
        if cur is None:
            notes.append(f"{name}: no current record (experiment not run)")
            continue
        if inject_slowdown != 1.0:
            cur = dict(cur)
            cur["normalized"] = (cur.get("normalized") or 0.0) * inject_slowdown
        messages = compare_records(base, cur, threshold)
        failures.extend(messages)
        if not messages:
            notes.append(
                f"{name}: ok (normalized {cur.get('normalized', 0):.2f} vs "
                f"baseline {base.get('normalized', 0):.2f})"
            )
    return failures, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baselines", type=pathlib.Path,
                        default=pathlib.Path("benchmarks/baselines"))
    parser.add_argument("--current", type=pathlib.Path,
                        default=pathlib.Path("results"))
    parser.add_argument("--threshold", type=float, default=1.5)
    parser.add_argument("--update", action="store_true",
                        help="refresh baselines from the current results")
    parser.add_argument("--inject-slowdown", type=float, default=1.0,
                        help="multiply current wall-clocks (gate self-test)")
    args = parser.parse_args(argv)

    if args.update:
        args.baselines.mkdir(parents=True, exist_ok=True)
        copied = 0
        for path in sorted(args.current.glob("BENCH_*.json")):
            shutil.copy(path, args.baselines / path.name)
            copied += 1
        print(f"refreshed {copied} baseline record(s) in {args.baselines}")
        return 0

    failures, notes = run_gate(
        args.baselines, args.current, args.threshold, args.inject_slowdown
    )
    for note in notes:
        print(f"  {note}")
    if failures:
        print(f"\nBENCH GATE FAILED ({len(failures)} regression(s)):")
        for message in failures:
            print(f"  ✗ {message}")
        print(
            "\nIf this regression is intended, apply the 'bench-override' "
            "label to the PR, or refresh baselines with --update (see "
            "benchmarks/README.md)."
        )
        return 1
    print("\nbench gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
