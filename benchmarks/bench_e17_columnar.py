"""E17 — columnar (struct-of-arrays) executor vs row-major batches.

The same cost-based plans run through the two batched executors: the
columnar pipelines (slot carries expanded by C-level kernels, projection
fused into the producing join/filter, residual quantifiers answered once
per distinct binding via grouped index probes) against PR 3's row-major
flat-carry pipelines (``executor="rowbatch"``).  The acceptance bar is
>=2x wall-clock on the quantifier-heavy workload at >=10k rows with
byte-identical answers; the sweep also regenerates the E17 table.
"""

import pytest

from benchtable import write_table
from repro.bench import experiments
from repro.bench.experiments import e17_quantifier_case, e17_wide_case
from repro.compiler import ExecutionContext, PlanStats, compile_query


@pytest.fixture(scope="module")
def quantifier_case():
    return e17_quantifier_case()


def _execute(db, plan, executor):
    stats = PlanStats()
    rows = plan.execute(ExecutionContext(db, stats=stats), executor=executor)
    return rows, stats


@pytest.mark.benchmark(group="E17-executor")
def test_e17_rowbatch_executor(benchmark, quantifier_case):
    db, query = quantifier_case
    plan = compile_query(db, query)
    benchmark.pedantic(
        lambda: _execute(db, plan, "rowbatch")[0], rounds=1, iterations=1
    )


@pytest.mark.benchmark(group="E17-executor")
def test_e17_columnar_executor(benchmark, quantifier_case):
    db, query = quantifier_case
    plan = compile_query(db, query)
    rows_col = benchmark(lambda: _execute(db, plan, "batch")[0])
    rows_row, _ = _execute(db, plan, "rowbatch")
    assert rows_col == rows_row


def test_e17_headline_speedup(quantifier_case):
    """The acceptance bar: >=2x over the row-major batch executor on the
    quantifier-heavy join at >=10k rows, identical answers (measured
    directly, independent of pytest-benchmark)."""
    import time

    db, query = quantifier_case
    assert sum(len(r) for r in db.relations.values()) >= 10_000
    plan = compile_query(db, query)

    def best_of(executor, reps):
        best, rows = float("inf"), None
        for _ in range(reps):
            start = time.perf_counter()
            rows = plan.execute(ExecutionContext(db), executor=executor)
            best = min(best, time.perf_counter() - start)
        return rows, best

    rows_col, t_col = best_of("batch", 3)
    rows_row, t_row = best_of("rowbatch", 1)
    assert rows_col == rows_row
    assert t_row >= 2.0 * t_col, (
        f"expected >=2x, got {t_row / t_col:.2f}x "
        f"(rowbatch {t_row:.4f}s vs columnar {t_col:.4f}s)"
    )


def test_e17_wide_carry_equivalence():
    """Wide-carry joins: identical answers across all three executors and
    a grouped-probe-free plan (no residuals) whose projection is fused."""
    from repro.compiler import Project

    db, query = e17_wide_case(rows=4_000, partners=2_000)
    plan = compile_query(db, query)
    rows_col, stats = _execute(db, plan, "batch")
    rows_row, _ = _execute(db, plan, "rowbatch")
    rows_tup, _ = _execute(db, plan, "tuple")
    assert rows_col == rows_row == rows_tup
    ops = list(plan.branches[0].ensure_pipeline().operators())
    assert not any(isinstance(op, Project) for op in ops)


def test_e17_residuals_grouped(quantifier_case):
    """Quantifier and membership checks cost one probe per distinct
    binding: the columnar run never calls the reference evaluator."""
    db, query = quantifier_case
    plan = compile_query(db, query)
    _rows, stats = _execute(db, plan, "batch")
    assert stats.residual_checks > 0
    assert stats.residual_evals == 0


@pytest.mark.benchmark(group="E17-table")
def test_e17_table(benchmark):
    table = benchmark.pedantic(experiments.e17_columnar, rounds=1, iterations=1)
    write_table("e17", table)
    assert all(row[-1] for row in table.rows)  # every comparison agreed
    assert table.metrics["headline_speedup"] >= 2.0
