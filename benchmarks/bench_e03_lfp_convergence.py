"""E3 — Infront{ahead} = lim ahead_n: convergence of the bounded sequence."""

import pytest

from repro import paper
from repro.bench import experiments
from repro.calculus import dsl as d
from repro.constructors import apply_constructor, construct_bounded
from repro.workloads import chain

from benchtable import write_table


@pytest.fixture(scope="module")
def chain_db():
    return paper.cad_database(infront=chain(64), mutual=False)


@pytest.mark.benchmark(group="E3-convergence")
def test_e03_full_lfp_chain64(benchmark, chain_db):
    result = benchmark(
        lambda: apply_constructor(chain_db, "Infront", "ahead", mode="seminaive")
    )
    assert len(result.rows) == 64 * 65 // 2


@pytest.mark.benchmark(group="E3-convergence")
def test_e03_bounded_prefix(benchmark, chain_db):
    node = d.constructed("Infront", "ahead")
    result = benchmark(lambda: construct_bounded(chain_db, node, 8))
    assert len(result.rows) < 64 * 65 // 2


@pytest.mark.benchmark(group="E3-convergence")
def test_e03_table(benchmark):
    table = benchmark.pedantic(experiments.e03_lfp_convergence, rounds=1, iterations=1)
    write_table("e03", table)
    assert all(row[-1] for row in table.rows)  # loop program == engine
