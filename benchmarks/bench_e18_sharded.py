"""E18 — sharded parallel executor vs single-worker columnar execution.

The same cost-based plan runs through the executor registry twice:
``executor="batch"`` (one worker, columnar pipelines) against
``executor="sharded"`` (hash-partitioned build and probe sides, the
columnar pipelines per shard in a worker pool, dedup-aware merge).  The
acceptance bar — >=2x wall-clock on the 100k-row skewed join at >=4
workers with byte-identical answers — is a multi-core number: the
process-pool headline test skips on boxes with fewer than four cores,
while the equivalence and shard-accounting tests always run.  The sweep
also regenerates the E18 table.
"""

import os

import pytest

from benchtable import write_table
from repro.bench import experiments
from repro.bench.experiments import e18_sharded_case
from repro.compiler import ExecutionContext, ShardConfig, compile_query

CORES = os.cpu_count() or 1


@pytest.fixture(scope="module")
def small_case():
    return e18_sharded_case(rows=10_000, dim=1_000)


def _sharded(db, plan, config):
    ctx = ExecutionContext(db)
    ctx.shard_config = config
    return plan.execute(ctx, executor="sharded")


def test_e18_equivalence_both_pools(small_case):
    db, query = small_case
    plan = compile_query(db, query)
    batch_rows = plan.execute(ExecutionContext(db), executor="batch")
    for pool in ("thread", "process"):
        config = ShardConfig(workers=4, pool=pool, min_rows=0, rows_per_shard=64)
        assert _sharded(db, plan, config) == batch_rows, pool


def test_e18_shard_report_in_explain(small_case):
    db, query = small_case
    plan = compile_query(db, query)
    config = ShardConfig(workers=4, min_rows=0, rows_per_shard=64)
    rows = _sharded(db, plan, config)
    report = plan.branches[0].shards
    assert report is not None and report.k >= 2
    assert report.merged_total == len(rows)  # dedup-aware merge
    assert "SHARDS k=" in plan.explain()


@pytest.mark.benchmark(group="E18-executor")
def test_e18_batch_executor(benchmark, small_case):
    db, query = small_case
    plan = compile_query(db, query)
    benchmark.pedantic(
        lambda: plan.execute(ExecutionContext(db), executor="batch"),
        rounds=1, iterations=1,
    )


@pytest.mark.benchmark(group="E18-executor")
def test_e18_sharded_executor(benchmark, small_case):
    db, query = small_case
    plan = compile_query(db, query)
    config = ShardConfig(workers=max(2, min(8, CORES)), min_rows=0)
    rows_sharded = benchmark(lambda: _sharded(db, plan, config))
    assert rows_sharded == plan.execute(ExecutionContext(db), executor="batch")


@pytest.mark.skipif(
    CORES < 4 or not os.environ.get("E18_HEADLINE"),
    reason="the >=2x headline needs >=4 quiet cores (process pool); "
    "opt in with E18_HEADLINE=1 — CI's perf gate is the bench-gate "
    "job's sharded_speedup baseline comparison, not this smoke-step "
    "assertion",
)
def test_e18_headline_speedup():
    """The acceptance bar: >=2x over the single-worker columnar executor
    on the 100k-row skewed join at >=4 workers, identical answers
    (measured directly, independent of pytest-benchmark).  Run it
    explicitly on a quiet >=4-core box::

        E18_HEADLINE=1 PYTHONPATH=src python -m pytest \\
            benchmarks/bench_e18_sharded.py -k headline -q
    """
    import time

    db, query = e18_sharded_case()
    assert sum(len(r) for r in db.relations.values()) >= 100_000
    plan = compile_query(db, query)
    config = ShardConfig(workers=max(4, CORES), pool="process")

    def best_of(fn, reps):
        best, rows = float("inf"), None
        for _ in range(reps):
            start = time.perf_counter()
            rows = fn()
            best = min(best, time.perf_counter() - start)
        return rows, best

    rows_batch, t_batch = best_of(
        lambda: plan.execute(ExecutionContext(db), executor="batch"), 3
    )
    rows_sharded, t_sharded = best_of(lambda: _sharded(db, plan, config), 3)
    assert rows_sharded == rows_batch
    assert t_batch >= 2.0 * t_sharded, (
        f"expected >=2x at {config.workers} workers, got "
        f"{t_batch / t_sharded:.2f}x "
        f"(batch {t_batch:.4f}s vs sharded {t_sharded:.4f}s)"
    )


@pytest.mark.benchmark(group="E18-table")
def test_e18_table(benchmark):
    table = benchmark.pedantic(experiments.e18_sharded, rounds=1, iterations=1)
    write_table("e18", table)
    assert all(row[-1] for row in table.rows)  # every comparison agreed
    assert table.metrics["sharded_speedup"] > 0
    assert table.metrics["sharded_fixpoint_speedup"] > 0
