"""E2 — ahead_2 constructor vs the explicit union expression (Fig. 2)."""

import pytest

from repro.bench import experiments
from repro.constructors import apply_constructor
from repro.workloads import generate_scene

from benchtable import write_table


@pytest.fixture(scope="module")
def scene_db():
    return generate_scene(rooms=16, row_length=6).database(mutual=False)


@pytest.mark.benchmark(group="E2-basics")
def test_e02_ahead2_constructor(benchmark, scene_db):
    result = benchmark(lambda: apply_constructor(scene_db, "Infront", "ahead2"))
    assert len(result.rows) > len(scene_db["Infront"])


@pytest.mark.benchmark(group="E2-basics")
def test_e02_table(benchmark):
    table = benchmark.pedantic(
        experiments.e02_constructor_basics, rounds=1, iterations=1
    )
    write_table("e02", table)
    assert all(row[-1] for row in table.rows)
