"""E5 — section 3.2 semantics: monotone bounded sequence, least fixpoint."""

import pytest

from repro import paper
from repro.bench import experiments
from repro.calculus import dsl as d
from repro.constructors import construct_bounded, instantiate, iterate_steps
from repro.workloads import grid

from benchtable import write_table


@pytest.fixture(scope="module")
def grid_db():
    return paper.cad_database(infront=grid(5, 5), mutual=False)


@pytest.mark.benchmark(group="E5-semantics")
def test_e05_one_operator_application(benchmark, grid_db):
    system = instantiate(grid_db, d.constructed("Infront", "ahead"))
    benchmark(lambda: iterate_steps(grid_db, system, 1))


@pytest.mark.benchmark(group="E5-semantics")
def test_e05_bounded_sequence(benchmark, grid_db):
    node = d.constructed("Infront", "ahead")
    benchmark(lambda: [construct_bounded(grid_db, node, k) for k in range(6)])


@pytest.mark.benchmark(group="E5-semantics")
def test_e05_table(benchmark):
    table = benchmark.pedantic(experiments.e05_semantics, rounds=1, iterations=1)
    write_table("e05", table)
    assert all(row[-1] for row in table.rows)  # monotone throughout
