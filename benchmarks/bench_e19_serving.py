"""E19 — prepared+cached serving vs compile-per-call.

The session front door now runs queries through ``compile_query`` and
the executor-backend registry behind a bounded LRU plan cache;
``Session.prepare`` compiles a constant-parameterized shape once and
rebinds constants per execution; ``Session.snapshot`` pins
version-stamped relation views for repeatable reads under writers.  The
acceptance bar — prepared+cached p50 latency >= 5x better than
compile-per-call on the 3-step join under mixed read/write client
threads — is asserted by the headline test (opt-in on quiet boxes; CI's
perf gate is the bench-gate baseline comparison of
``prepared_p50_speedup``).  The sweep also regenerates the E19 table.

Interpreted-evaluator comparisons run on a small instance: the reference
evaluator is tuple-at-a-time nested loops, and the serving case's 3-step
join is exactly the shape it is worst at.
"""

import os

import pytest

from benchtable import write_table
from repro.bench import experiments
from repro.bench.experiments import E19_JOIN, e19_serving_case


@pytest.fixture(scope="module")
def small_session():
    return e19_serving_case(facts=120, dims=20, anns=6)


def test_e19_prepared_matches_interpreted(small_session):
    s = small_session
    for bound in ((5, 4), (10, 8), (2, 15)):
        prepared = s.prepare(E19_JOIN % bound)
        assert prepared.execute() == s.query(E19_JOIN % bound, mode="interpreted")


def test_e19_cache_hit_counter():
    s = e19_serving_case()
    assert s.plan_cache.misses == 0
    s.query(E19_JOIN % (45, 10))
    s.query(E19_JOIN % (50, 8))  # same shape, different constants
    s.prepare(E19_JOIN % (55, 12))  # still the same shape
    assert s.plan_cache.misses == 1
    assert s.plan_cache.hits == 2
    assert len(s.plan_cache) == 1


def test_e19_snapshot_repeatable_read():
    s = e19_serving_case()
    prepared = s.prepare(E19_JOIN % (50, 8))
    snap = s.snapshot()
    pinned = prepared.execute(snapshot=snap)
    s.insert("Fact", [(999_999, "k1", "t0")])
    assert prepared.execute(snapshot=snap) == pinned


@pytest.mark.benchmark(group="E19-serving")
def test_e19_compile_per_call(benchmark):
    s = e19_serving_case(plan_cache_size=0)
    rows = benchmark(lambda: s.query(E19_JOIN % (50, 8)))
    # A twin session holds identical seeded data: compiled answers agree.
    assert rows == e19_serving_case().query(E19_JOIN % (50, 8))


@pytest.mark.benchmark(group="E19-serving")
def test_e19_prepared_execution(benchmark):
    s = e19_serving_case()
    prepared = s.prepare(E19_JOIN % (50, 8))
    rows = benchmark(lambda: prepared.execute())
    assert rows == s.query(E19_JOIN % (50, 8))


@pytest.mark.skipif(
    not os.environ.get("E19_HEADLINE"),
    reason="latency percentiles need a quiet box; opt in with "
    "E19_HEADLINE=1 — CI's perf gate is the bench-gate job's "
    "prepared_p50_speedup baseline comparison, not this smoke-step "
    "assertion",
)
def test_e19_headline_speedup():
    """The acceptance bar: prepared+cached p50 >= 5x better than
    compile-per-call on the 3-step join workload.  Run it explicitly::

        E19_HEADLINE=1 PYTHONPATH=src python -m pytest \\
            benchmarks/bench_e19_serving.py -k headline -q
    """
    table = experiments.e19_serving()
    assert table.metrics["prepared_p50_speedup"] >= 5.0, table.render()


@pytest.mark.benchmark(group="E19-table")
def test_e19_table(benchmark):
    table = benchmark.pedantic(experiments.e19_serving, rounds=1, iterations=1)
    write_table("e19", table)
    assert all(row[-1] for row in table.rows)  # both modes answered right
    assert table.metrics["prepared_p50_speedup"] > 0
    assert table.metrics["cache_hit_rate"] > 0
