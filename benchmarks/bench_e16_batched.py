"""E16 — batched physical-operator executor vs tuple-at-a-time loops.

The same priced plans run through two executors: the lowered operator
pipeline (Scan/IndexLookup/HashJoin/Filter/Project passing row batches,
generated inner loops) and the original tuple-at-a-time interpreter it
replaced.  The headline is an E14-style selective multi-way join at
~19k rows, where set-at-a-time execution must be at least 5x faster
with byte-identical result sets; the fixpoint rows show the same
executor running the semi-naive differentials.
"""

import pytest

from benchtable import write_table
from repro.bench import experiments
from repro.bench.experiments import e15_range_case, e16_bom_paths_case
from repro.compiler import ExecutionContext, PlanStats, compile_query


@pytest.fixture(scope="module")
def bom_paths():
    return e16_bom_paths_case()


def _execute(db, plan, executor):
    stats = PlanStats()
    rows = plan.execute(ExecutionContext(db, stats=stats), executor=executor)
    return rows, stats


@pytest.mark.benchmark(group="E16-executor")
def test_e16_tuple_executor(benchmark, bom_paths):
    db, query = bom_paths
    plan = compile_query(db, query)
    benchmark(lambda: _execute(db, plan, "tuple")[0])


@pytest.mark.benchmark(group="E16-executor")
def test_e16_batched_executor(benchmark, bom_paths):
    db, query = bom_paths
    plan = compile_query(db, query)
    rows_batch = benchmark(lambda: _execute(db, plan, "batch")[0])
    rows_tuple, _ = _execute(db, plan, "tuple")
    assert rows_batch == rows_tuple and len(rows_batch) > 10_000


def test_e16_headline_speedup(bom_paths):
    """The acceptance bar: >=5x wall-clock at >=10k rows, identical
    answers (measured directly, independent of pytest-benchmark)."""
    import time

    db, query = bom_paths
    assert len(db["Contains"]) >= 10_000
    plan = compile_query(db, query)

    def best_of(executor, reps=3):
        best, rows = float("inf"), None
        for _ in range(reps):
            start = time.perf_counter()
            rows = plan.execute(ExecutionContext(db), executor=executor)
            best = min(best, time.perf_counter() - start)
        return rows, best

    rows_batch, t_batch = best_of("batch")
    rows_tuple, t_tuple = best_of("tuple")
    assert rows_batch == rows_tuple
    assert t_tuple >= 5.0 * t_batch, (
        f"expected >=5x, got {t_tuple / t_batch:.2f}x "
        f"(tuple {t_tuple:.4f}s vs batch {t_batch:.4f}s)"
    )


def test_e16_per_operator_actuals(bom_paths):
    """explain() must report per-operator actual row counts from the
    batched path next to the optimizer's estimates."""
    db, query = e15_range_case()
    plan = compile_query(db, query)
    plan.execute(ExecutionContext(db))
    text = plan.explain()
    assert "operators:" in text and "HASHJOIN" in text
    assert "act=" in text and "est=" in text and "DEDUP" in text


@pytest.mark.benchmark(group="E16-table")
def test_e16_table(benchmark):
    table = benchmark.pedantic(experiments.e16_batched, rounds=1, iterations=1)
    write_table("e16", table)
    assert all(row[-1] for row in table.rows)  # every comparison agreed
