"""E15 — histogram range selectivities and mid-fixpoint re-optimization.

Shows (a) that equi-depth histograms let the planner drive a skewed
range join from the restricted side — far fewer rows scanned than with
the uniform-constant range selectivity — and (b) that re-enumerating the
differential join orders when observed deltas drift from the priced
estimates reduces total scanned rows on an exploding-delta fixpoint,
with identical answers throughout.
"""

import pytest

from benchtable import write_table
from repro.bench import experiments
from repro.bench.experiments import e15_drift_edges, e15_range_case, _tc_db
from repro.calculus import dsl as d
from repro.compiler import (
    CostModel,
    ExecutionContext,
    PlanStats,
    compile_fixpoint,
    compile_query,
)
from repro.constructors import instantiate


@pytest.fixture(scope="module")
def range_case():
    return e15_range_case()


def _execute(db, plan):
    stats = PlanStats()
    rows = plan.execute(ExecutionContext(db, stats=stats))
    return rows, stats


@pytest.mark.benchmark(group="E15-histograms")
def test_e15_constant_range_pricing(benchmark, range_case):
    db, query = range_case
    plan = compile_query(db, query, cost_model=CostModel(db, use_histograms=False))
    benchmark(lambda: _execute(db, plan)[0])


@pytest.mark.benchmark(group="E15-histograms")
def test_e15_histogram_range_pricing(benchmark, range_case):
    db, query = range_case
    plan_hist = compile_query(db, query, cost_model=CostModel(db))
    plan_const = compile_query(
        db, query, cost_model=CostModel(db, use_histograms=False)
    )
    rows = benchmark(lambda: _execute(db, plan_hist)[0])
    rows_const, stats_const = _execute(db, plan_const)
    _, stats_hist = _execute(db, plan_hist)
    # identical answers, measurably fewer rows touched
    assert rows == rows_const and len(rows) > 0
    assert stats_hist.rows_scanned * 2 < stats_const.rows_scanned


@pytest.mark.benchmark(group="E15-reopt")
def test_e15_reoptimization_reduces_scans(benchmark):
    edges = e15_drift_edges()

    def run_adaptive():
        db = _tc_db(edges)
        system = instantiate(db, d.constructed("Infront", "ahead"))
        program = compile_fixpoint(db, system)
        return program, program.run(), system

    frozen_db = _tc_db(edges)
    frozen_sys = instantiate(frozen_db, d.constructed("Infront", "ahead"))
    frozen = compile_fixpoint(frozen_db, frozen_sys, replan_drift=None)
    frozen_vals = frozen.run()

    program, values, system = benchmark.pedantic(run_adaptive, rounds=1, iterations=1)
    assert values[system.root] == frozen_vals[frozen_sys.root]
    assert program.replans >= 1
    assert program.plan_stats.rows_scanned < frozen.plan_stats.rows_scanned


@pytest.mark.benchmark(group="E15-reopt")
def test_e15_table(benchmark):
    table = benchmark.pedantic(experiments.e15_reopt, rounds=1, iterations=1)
    write_table("e15", table)
    assert all(row[-1] for row in table.rows)  # every comparison agreed
