"""Shared helpers for the benchmark suite.

Every experiment file benchmarks representative operations with
pytest-benchmark *and* regenerates its EXPERIMENTS.md table (written to
``benchmarks/out/``).  Table tests use the benchmark fixture so they run
under ``--benchmark-only`` as well.
"""

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def write_table(name: str, table) -> None:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(table.render() + "\n")
