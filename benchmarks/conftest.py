"""Shared helpers for the benchmark suite.

The actual table writer lives in :mod:`benchtable`; bench modules import
it directly (``from benchtable import write_table``).
"""

from benchtable import OUT_DIR, write_table  # noqa: F401  (re-export)
