"""E22 — out-of-core columnar storage: pushdown vs materialize.

``Database.spill`` writes each relation as self-describing columnar
partitions (dictionary pages plus int64 id pages, per-column min/max in
the manifest, ``TableStats`` persisted alongside); ``open_database``
reopens them cold, and compiled scans push projection and restrictions
into the partition readers.  The acceptance bar — a selective projected
scan decodes >= 5x fewer rows/cells/bytes than full materialization,
and a freshly reopened database plans like the warm one without a
single scan — is deterministic (decode counters, not wall-clocks), so
the headline test runs everywhere and CI's bench-gate compares the
``storage_*_scan_ratio`` metrics exactly.  The sweep also regenerates
the E22 table.
"""

import pytest

from benchtable import write_table
from repro.bench import experiments
from repro.bench.experiments import e22_storage_db
from repro.dbpl import Session
from repro.relational import open_database

ROWS = 20_000
PER_PART = 1_000
SELECTIVE = f'{{<p.city> OF EACH p IN People: p.name >= "p{ROWS - PER_PART:06d}"}}'


@pytest.fixture(scope="module")
def spilled(tmp_path_factory):
    db = e22_storage_db(rows=ROWS)
    path = str(tmp_path_factory.mktemp("e22") / "db")
    db.spill(path, rows_per_partition=PER_PART)
    return db, path


def test_e22_cold_answers_match_warm(spilled):
    db, path = spilled
    cold = open_database(path)
    assert Session(cold).query(SELECTIVE) == Session(db).query(SELECTIVE)
    assert cold.relation("People").is_cold  # pruned scan, no materialize


def test_e22_pushdown_decodes_5x_less(spilled):
    _db, path = spilled
    cold = open_database(path)
    store = cold.relation("People").cold_store
    store.counters.reset()
    Session(cold).query(SELECTIVE)
    pushdown = store.counters.snapshot()
    store.counters.reset()
    cold.relation("People").rows()  # full materialization, same store
    full = store.counters.snapshot()
    for key in ("rows_decoded", "cells_decoded", "bytes_read"):
        assert full[key] >= 5 * pushdown[key], key


def test_e22_reopened_database_plans_without_scanning(spilled):
    table = experiments.e22_storage(rows=4_000, rows_per_partition=500)
    assert table.metrics["storage_plans_match"] == 1.0


@pytest.mark.benchmark(group="E22-storage")
def test_e22_pushdown_scan(benchmark, spilled):
    _db, path = spilled
    cold = open_database(path)
    Session(cold).query(SELECTIVE)  # prime the plan cache
    benchmark.pedantic(
        lambda: Session(open_database(path)).query(SELECTIVE),
        rounds=1, iterations=1,
    )


@pytest.mark.benchmark(group="E22-storage")
def test_e22_full_materialize(benchmark, spilled):
    _db, path = spilled
    rows = benchmark.pedantic(
        lambda: open_database(path).relation("People").rows(),
        rounds=1, iterations=1,
    )
    assert len(rows) == ROWS


def test_e22_headline_scan_ratios():
    """The acceptance bar, on decode counters (machine-independent)::

        PYTHONPATH=src python -m pytest \\
            benchmarks/bench_e22_storage.py -k headline -q
    """
    table = experiments.e22_storage()
    assert table.metrics["storage_rows_scan_ratio"] >= 5.0, table.render()
    assert table.metrics["storage_cells_scan_ratio"] >= 5.0, table.render()
    assert table.metrics["storage_bytes_scan_ratio"] >= 5.0, table.render()


@pytest.mark.benchmark(group="E22-table")
def test_e22_table(benchmark):
    table = benchmark.pedantic(
        lambda: experiments.e22_storage(), rounds=1, iterations=1
    )
    write_table("e22", table)
    assert table.metrics["storage_plans_match"] == 1.0
    assert table.metrics["storage_cells_scan_ratio"] >= 5.0
