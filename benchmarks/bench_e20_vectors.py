"""E20 — typed column vectors vs the object-row executors.

The same compiled plan (skewed equality join + range filter + distinct
projection, fully inside the vector lowering's coverage) runs through
the executor registry under ``rowbatch``, ``batch``, and ``vector`` —
the last twice, with the numpy fast path forced on and off.  The
acceptance bar — >=3x wall-clock over ``executor="batch"`` at >=100k
rows with identical answers — is asserted by the opt-in headline test;
CI's perf gate is the bench-gate job's ``vector_speedup_100k`` baseline
comparison.  The sweep also regenerates the E20 table.
"""

import pytest

from benchtable import write_table
from repro.bench import experiments
from repro.bench.experiments import e20_vectors_case
from repro.compiler import ExecutionContext, compile_query
from repro.relational import set_numpy_enabled


@pytest.fixture(scope="module")
def small_case():
    return e20_vectors_case(rows=10_000, dim=1_000)


@pytest.fixture(autouse=True)
def restore_numpy_gate():
    yield
    set_numpy_enabled(None)


def test_e20_equivalence_all_backends(small_case):
    db, query = small_case
    plan = compile_query(db, query)
    batch_rows = plan.execute(ExecutionContext(db), executor="batch")
    for executor in ("rowbatch", "tuple", "vector"):
        assert plan.execute(ExecutionContext(db), executor=executor) == batch_rows
    set_numpy_enabled(False)
    assert plan.execute(ExecutionContext(db), executor="vector") == batch_rows


def test_e20_branch_is_vector_covered(small_case):
    """The benchmark must measure the vector kernels, not a fallback."""
    db, query = small_case
    plan = compile_query(db, query)
    pipeline = plan.branches[0].ensure_vector_pipeline()
    assert pipeline is not None and pipeline.columnar
    assert pipeline.shippable  # no residuals, no whole-row targets


@pytest.mark.benchmark(group="E20-executor")
def test_e20_batch_executor(benchmark, small_case):
    db, query = small_case
    plan = compile_query(db, query)
    benchmark.pedantic(
        lambda: plan.execute(ExecutionContext(db), executor="batch"),
        rounds=1, iterations=1,
    )


@pytest.mark.benchmark(group="E20-executor")
def test_e20_vector_executor(benchmark, small_case):
    db, query = small_case
    plan = compile_query(db, query)
    rows_vector = benchmark(
        lambda: plan.execute(ExecutionContext(db), executor="vector")
    )
    assert rows_vector == plan.execute(ExecutionContext(db), executor="batch")


@pytest.mark.benchmark(group="E20-executor")
def test_e20_vector_executor_no_numpy(benchmark, small_case):
    db, query = small_case
    plan = compile_query(db, query)
    set_numpy_enabled(False)
    rows_plain = benchmark(
        lambda: plan.execute(ExecutionContext(db), executor="vector")
    )
    set_numpy_enabled(None)
    assert rows_plain == plan.execute(ExecutionContext(db), executor="batch")


@pytest.mark.skipif(
    not __import__("os").environ.get("E20_HEADLINE"),
    reason="the >=3x headline is a quiet-box number; opt in with "
    "E20_HEADLINE=1 — CI's perf gate is the bench-gate job's "
    "vector_speedup_100k baseline comparison, not this smoke-step "
    "assertion",
)
def test_e20_headline_speedup():
    """The acceptance bar: >=3x over the columnar object-row executor at
    >=100k rows, identical answers (measured directly, independent of
    pytest-benchmark).  Run it explicitly on a quiet box::

        E20_HEADLINE=1 PYTHONPATH=src python -m pytest \\
            benchmarks/bench_e20_vectors.py -k headline -q
    """
    import time

    db, query = e20_vectors_case(rows=100_000)
    assert sum(len(r) for r in db.relations.values()) >= 100_000
    plan = compile_query(db, query)

    def best_of(executor, reps=3):
        best, rows = float("inf"), None
        for _ in range(reps):
            start = time.perf_counter()
            rows = plan.execute(ExecutionContext(db), executor=executor)
            best = min(best, time.perf_counter() - start)
        return rows, best

    rows_batch, t_batch = best_of("batch")
    rows_vector, t_vector = best_of("vector")
    assert rows_vector == rows_batch
    assert t_batch >= 3.0 * t_vector, (
        f"expected >=3x, got {t_batch / t_vector:.2f}x "
        f"(batch {t_batch:.4f}s vs vector {t_vector:.4f}s)"
    )


@pytest.mark.benchmark(group="E20-table")
def test_e20_table(benchmark):
    table = benchmark.pedantic(
        lambda: experiments.e20_vectors(sizes=(10_000, 100_000)),
        rounds=1, iterations=1,
    )
    write_table("e20", table)
    assert all(row[-1] for row in table.rows)  # every comparison agreed
    assert table.metrics["vector_speedup_100k"] > 0
