"""Table output for the benchmark suite (importable without packaging).

Every experiment file benchmarks representative operations with
pytest-benchmark *and* regenerates its EXPERIMENTS.md table (written to
``benchmarks/out/``).  Lives outside ``conftest.py`` so bench modules can
use a plain ``from benchtable import write_table``.
"""

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def write_table(name: str, table) -> None:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(table.render() + "\n")
