"""Table output for the benchmark suite (importable without packaging).

Every experiment file benchmarks representative operations with
pytest-benchmark *and* regenerates its EXPERIMENTS.md table (written to
``benchmarks/out/``).  Tables that recorded machine-readable metrics
(``Table.metric`` — e.g. E16/E17 speedup factors, scanned-row counters)
also get a ``<name>.metrics.json`` next to the text rendering, the same
scalars ``repro.bench.run_all`` folds into the CI bench-gate's
``BENCH_<id>.json`` records.  Lives outside ``conftest.py`` so bench
modules can use a plain ``from benchtable import write_table``.
"""

import json
import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def write_table(name: str, table) -> None:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(table.render() + "\n")
    metrics = getattr(table, "metrics", None)
    if metrics:
        (OUT_DIR / f"{name}.metrics.json").write_text(
            json.dumps(dict(sorted(metrics.items())), indent=2) + "\n"
        )
