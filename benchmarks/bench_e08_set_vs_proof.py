"""E8 — THE HEADLINE CLAIM: set-oriented fixpoints vs proof-oriented search.

"Many recursive queries can be evaluated more efficiently within the
set-construction framework of database systems than with proof-oriented
methods typical for a rule-based approach."
"""

import pytest

from repro import paper
from repro.bench import experiments
from repro.calculus import dsl as d
from repro.compiler import construct_compiled
from repro.constructors import apply_constructor
from repro.datalog import parse_atom, parse_program
from repro.prolog import KnowledgeBase, SLDEngine, TabledEngine
from repro.workloads import chain

from benchtable import write_table

TC = parse_program(
    "ahead(X, Y) :- infront(X, Y).\n"
    "ahead(X, Y) :- infront(X, Z), ahead(Z, Y).\n"
)
EDGES = chain(64)


@pytest.fixture(scope="module")
def chain_db():
    return paper.cad_database(infront=EDGES, mutual=False)


@pytest.mark.benchmark(group="E8-allpairs")
def test_e08_seminaive(benchmark, chain_db):
    result = benchmark(
        lambda: apply_constructor(chain_db, "Infront", "ahead", mode="seminaive")
    )
    assert len(result.rows) == 64 * 65 // 2


@pytest.mark.benchmark(group="E8-allpairs")
def test_e08_compiled(benchmark, chain_db):
    result = benchmark(
        lambda: construct_compiled(chain_db, d.constructed("Infront", "ahead"))
    )
    assert len(result.rows) == 64 * 65 // 2


@pytest.mark.benchmark(group="E8-allpairs")
def test_e08_sld_all_answers(benchmark):
    kb = KnowledgeBase.from_program(TC, {"infront": EDGES})
    rows = benchmark(lambda: SLDEngine(kb).all_answers(parse_atom("ahead(X, Y)")))
    assert len(rows) == 64 * 65 // 2


@pytest.mark.benchmark(group="E8-allpairs")
def test_e08_tabled_all_answers(benchmark):
    kb = KnowledgeBase.from_program(TC, {"infront": EDGES})
    rows = benchmark(lambda: TabledEngine(kb).all_answers(parse_atom("ahead(X, Y)")))
    assert len(rows) == 64 * 65 // 2


@pytest.mark.benchmark(group="E8-allpairs")
def test_e08_table(benchmark):
    table = benchmark.pedantic(
        experiments.e08_set_vs_proof, kwargs={"quick": True}, rounds=1, iterations=1
    )
    write_table("e08", table)
    # the cycle row must show SLD looping while the fixpoint engines finish
    cycle_row = [r for r in table.rows if "cycle" in str(r[0])][0]
    assert cycle_row[6] == "loops"


@pytest.mark.benchmark(group="E8-pointquery")
def test_e08b_table(benchmark):
    table = benchmark.pedantic(
        experiments.e08b_point_query, kwargs={"quick": True}, rounds=1, iterations=1
    )
    write_table("e08b", table)
    assert table.rows
