"""E9 — constraint propagation into constructor bodies (Cases 1-3)."""

import pytest

from repro.bench import experiments
from repro.calculus import dsl as d
from repro.compiler import inline_nonrecursive, run_query
from repro.constructors import apply_constructor
from repro.workloads import generate_scene

from benchtable import write_table


@pytest.fixture(scope="module")
def scene_db():
    return generate_scene(rooms=32, row_length=8).database(mutual=False)


def _restricted_query(db):
    target = db["Infront"].sorted_rows()[0][0]
    return target, d.query(
        d.branch(
            d.each("r", d.constructed("Infront", "ahead2")),
            pred=d.eq(d.a("r", "head"), target),
            targets=[d.a("r", "tail")],
        )
    )


@pytest.mark.benchmark(group="E9-pushdown")
def test_e09_materialize_then_filter(benchmark, scene_db):
    target, _ = _restricted_query(scene_db)

    def slow():
        full = apply_constructor(scene_db, "Infront", "ahead2").rows
        return {(r[1],) for r in full if r[0] == target}

    benchmark(slow)


@pytest.mark.benchmark(group="E9-pushdown")
def test_e09_inlined_compiled(benchmark, scene_db):
    target, query = _restricted_query(scene_db)
    inlined = inline_nonrecursive(scene_db, query)
    rows = benchmark(lambda: run_query(scene_db, inlined))
    full = apply_constructor(scene_db, "Infront", "ahead2").rows
    assert rows == {(r[1],) for r in full if r[0] == target}


@pytest.mark.benchmark(group="E9-pushdown")
def test_e09_table(benchmark):
    table = benchmark.pedantic(experiments.e09_pushdown, rounds=1, iterations=1)
    write_table("e09", table)
    assert all(row[-1] for row in table.rows)
