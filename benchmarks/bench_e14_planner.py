"""E14 — cost-based query planning with table statistics.

Compares the statistics-driven join ordering against the syntactic
(written-order) loop nest on skewed BOM/CAD/genealogy workloads, and
checks that plans report estimated vs actual cardinalities.
"""

import pytest

from benchtable import write_table
from repro.bench import experiments
from repro.compiler import ExecutionContext, PlanStats, compile_query

from repro.bench.experiments import e14_planner_cases


@pytest.fixture(scope="module")
def cases():
    return e14_planner_cases()


def _execute(db, plan):
    stats = PlanStats()
    rows = plan.execute(ExecutionContext(db, stats=stats))
    return rows, stats


@pytest.mark.benchmark(group="E14-planner")
def test_e14_syntactic_order(benchmark, cases):
    name, db, query = cases[0]  # BOM grandparents — the most skewed case
    plan = compile_query(db, query, optimizer="syntactic")
    benchmark(lambda: _execute(db, plan)[0])


@pytest.mark.benchmark(group="E14-planner")
def test_e14_cost_based_order(benchmark, cases):
    name, db, query = cases[0]
    plan_cost = compile_query(db, query, optimizer="cost")
    plan_syn = compile_query(db, query, optimizer="syntactic")
    rows = benchmark(lambda: _execute(db, plan_cost)[0])
    # identical answers, far less work
    rows_syn, stats_syn = _execute(db, plan_syn)
    _, stats_cost = _execute(db, plan_cost)
    assert rows == rows_syn
    assert stats_cost.rows_scanned < stats_syn.rows_scanned


def test_e14_cost_beats_syntactic_everywhere(cases):
    """The planner's whole point: never worse, much better under skew."""
    best_speedup = 0.0
    for name, db, query in cases:
        rows_syn, stats_syn = _execute(db, compile_query(db, query, optimizer="syntactic"))
        rows_cost, stats_cost = _execute(db, compile_query(db, query, optimizer="cost"))
        assert rows_syn == rows_cost, name
        assert stats_cost.rows_scanned <= stats_syn.rows_scanned, name
        best_speedup = max(best_speedup, stats_syn.rows_scanned / max(1, stats_cost.rows_scanned))
    assert best_speedup > 5.0  # at least one skewed workload is a blowout


def test_e14_explain_reports_estimates(cases):
    name, db, query = cases[0]
    plan = compile_query(db, query, optimizer="cost")
    _execute(db, plan)
    text = plan.explain()
    assert "optimizer=cost" in text
    assert "est=" in text and "act=" in text


@pytest.mark.benchmark(group="E14-planner")
def test_e14_table(benchmark):
    table = benchmark.pedantic(experiments.e14_planner, rounds=1, iterations=1)
    write_table("e14", table)
    assert all(row[-1] for row in table.rows)  # every comparison agreed
