"""E4 — mutually recursive ahead/above (section 3.1)."""

import pytest

from repro.bench import experiments
from repro.constructors import apply_constructor
from repro.workloads import generate_scene

from benchtable import write_table


@pytest.fixture(scope="module")
def stacked_db():
    return generate_scene(rooms=8, row_length=5, stack_height=3).database(mutual=True)


@pytest.mark.benchmark(group="E4-mutual")
def test_e04_mutual_seminaive(benchmark, stacked_db):
    result = benchmark(
        lambda: apply_constructor(
            stacked_db, "Infront", "ahead", "Ontop", mode="seminaive"
        )
    )
    assert len(result.values) == 2  # one shared system of two equations


@pytest.mark.benchmark(group="E4-mutual")
def test_e04_mutual_naive(benchmark, stacked_db):
    benchmark(
        lambda: apply_constructor(stacked_db, "Infront", "ahead", "Ontop", mode="naive")
    )


@pytest.mark.benchmark(group="E4-mutual")
def test_e04_table(benchmark):
    table = benchmark.pedantic(experiments.e04_mutual_recursion, rounds=1, iterations=1)
    write_table("e04", table)
    assert all(row[-1] for row in table.rows)
