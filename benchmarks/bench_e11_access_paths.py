"""E11 — logical vs physical access paths under repeated queries."""

import pytest

from repro import paper
from repro.bench import experiments
from repro.calculus import dsl as d
from repro.compiler import LogicalAccessPath, PhysicalAccessPath
from repro.workloads import chain

from benchtable import write_table


@pytest.fixture(scope="module")
def chain_db():
    return paper.cad_database(infront=chain(128), mutual=False)


NODE = d.constructed("Infront", "ahead")


@pytest.mark.benchmark(group="E11-accesspaths")
def test_e11_physical_materialization(benchmark, chain_db):
    def materialize():
        path = PhysicalAccessPath(chain_db, NODE, "head")
        path.materialize()
        return path

    path = benchmark(materialize)
    assert path.lookup("n0")


@pytest.mark.benchmark(group="E11-accesspaths")
def test_e11_physical_lookup(benchmark, chain_db):
    path = PhysicalAccessPath(chain_db, NODE, "head")
    path.materialize()
    rows = benchmark(lambda: path.lookup("n64"))
    assert len(rows) == 64


@pytest.mark.benchmark(group="E11-accesspaths")
def test_e11_logical_seeded_lookup(benchmark, chain_db):
    path = LogicalAccessPath(chain_db, NODE, "head")
    rows = benchmark(lambda: path.lookup("n64"))
    assert len(rows) == 64


@pytest.mark.benchmark(group="E11-accesspaths")
def test_e11_table(benchmark):
    table = benchmark.pedantic(experiments.e11_access_paths, rounds=1, iterations=1)
    write_table("e11", table)
    assert table.rows
