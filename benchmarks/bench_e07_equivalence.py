"""E7 — the section 3.4 equivalence lemma, measured across four engines."""

import pytest

from repro import paper
from repro.bench import experiments
from repro.calculus import dsl as d
from repro.constructors import instantiate
from repro.datalog import DatalogEngine, datalog_to_database, parse_program, system_to_program
from repro.workloads import binary_tree

from benchtable import write_table

TC = parse_program(
    "ahead(X, Y) :- infront(X, Y).\n"
    "ahead(X, Y) :- infront(X, Z), ahead(Z, Y).\n"
)


@pytest.fixture(scope="module")
def tree_db():
    return paper.cad_database(infront=binary_tree(7), mutual=False)


@pytest.mark.benchmark(group="E7-equivalence")
def test_e07_constructor_to_datalog_translation(benchmark, tree_db):
    system = instantiate(tree_db, d.constructed("Infront", "ahead"))
    program, edb, root = benchmark(lambda: system_to_program(tree_db, system))
    assert root.startswith("app")


@pytest.mark.benchmark(group="E7-equivalence")
def test_e07_datalog_to_constructor_roundtrip(benchmark, tree_db):
    edges = set(tree_db["Infront"].rows())

    def roundtrip():
        db, apps = datalog_to_database(TC, {"infront": edges})
        from repro.constructors import construct

        return construct(db, apps["ahead"]).rows

    rows = benchmark(roundtrip)
    assert rows == DatalogEngine(TC, {"infront": edges}).solve()["ahead"]


@pytest.mark.benchmark(group="E7-equivalence")
def test_e07_table(benchmark):
    table = benchmark.pedantic(experiments.e07_equivalence, rounds=1, iterations=1)
    write_table("e07", table)
    assert all(row[-1] for row in table.rows)
