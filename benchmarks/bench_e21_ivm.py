"""E21 — standing queries: incremental maintenance vs re-execution.

``Session.subscribe`` keeps a query's answer materialized and maintains
it inside each commit: the relation write path hands the net delta to a
per-database registry, counting maintenance (or fixpoint resumption for
constructed ranges) folds it into every watcher's result, and one shared
``_DeltaState`` amortizes the per-commit setup across all watchers.  The
acceptance bar — maintaining 1k standing queries under a mixed
insert/delete stream >= 5x faster than re-executing each per batch, with
bit-identical answers — is asserted by the headline test (opt-in on
quiet boxes; CI's perf gate is the bench-gate baseline comparison of
``ivm_speedup``).  The sweep also regenerates the E21 table.
"""

import os

import pytest

from benchtable import write_table
from repro.bench import experiments
from repro.bench.experiments import e21_ivm_case, e21_sources, e21_stream


def _replay(session, stream):
    emp = session.db.relation("Emp")
    for inserted, deleted in stream:
        session.insert("Emp", inserted)
        emp.delete(deleted)


def test_e21_subscriptions_match_fresh_queries():
    s = e21_ivm_case(rows=300)
    sources = e21_sources(40)
    subs = [s.subscribe(source) for source in sources]
    for batch in e21_stream(rows=300, batches=4, k=5):
        _replay(s, [batch])
        for sub, source in zip(subs, sources):
            assert sub.rows() == s.query(source), source
    assert sum(sub.recomputes for sub in subs) == 0


def test_e21_unsubscribed_sessions_skip_the_write_hook():
    s = e21_ivm_case(rows=300)
    assert s.db.subscriptions is None  # no registry until first subscribe
    sub = s.subscribe(e21_sources(1)[0])
    assert s.db.subscriptions is not None
    sub.close()
    assert not s.db.subscriptions.subscriptions


@pytest.mark.benchmark(group="E21-ivm")
def test_e21_maintain_under_stream(benchmark):
    s = e21_ivm_case(rows=600)
    sources = e21_sources(100)
    subs = [s.subscribe(source) for source in sources]
    stream = e21_stream(rows=600, batches=3, k=6)
    _replay(s, stream[:1])  # price the delta handlers
    benchmark.pedantic(lambda: _replay(s, stream[1:]), rounds=1, iterations=1)
    for sub, source in zip(subs, sources):
        assert sub.rows() == s.query(source)


@pytest.mark.benchmark(group="E21-ivm")
def test_e21_reexecute_per_batch(benchmark):
    s = e21_ivm_case(rows=600)
    sources = e21_sources(100)
    stream = e21_stream(rows=600, batches=3, k=6)
    _replay(s, stream[:1])  # prime the plan cache

    def run():
        for batch in stream[1:]:
            _replay(s, [batch])
            answers = [s.query(source) for source in sources]
        return answers

    answers = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(answers)


@pytest.mark.skipif(
    not os.environ.get("E21_HEADLINE"),
    reason="the 1k-subscription sweep needs a quiet box; opt in with "
    "E21_HEADLINE=1 — CI's perf gate is the bench-gate job's "
    "ivm_speedup baseline comparison, not this smoke-step assertion",
)
def test_e21_headline_speedup():
    """The acceptance bar: maintaining 1k standing queries >= 5x faster
    than re-executing each per batch.  Run it explicitly::

        E21_HEADLINE=1 PYTHONPATH=src python -m pytest \\
            benchmarks/bench_e21_ivm.py -k headline -q
    """
    table = experiments.e21_ivm()
    assert table.metrics["ivm_speedup"] >= 5.0, table.render()


@pytest.mark.benchmark(group="E21-table")
def test_e21_table(benchmark):
    table = benchmark.pedantic(
        lambda: experiments.e21_ivm(sub_counts=(100, 400), rows=1_200),
        rounds=1,
        iterations=1,
    )
    write_table("e21", table)
    assert all(row[-1] for row in table.rows)  # answers bit-identical
    assert table.metrics["ivm_speedup"] > 0
