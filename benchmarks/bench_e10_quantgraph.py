"""E10 — augmented quant graph construction and partitioning (Fig. 3)."""

import pytest

from repro import paper
from repro.bench import experiments
from repro.compiler import build_constructor_graph, type_check_level

from benchtable import write_table


@pytest.fixture(scope="module")
def cad_db():
    return paper.cad_database(mutual=True)


@pytest.mark.benchmark(group="E10-quantgraph")
def test_e10_build_fig3_graph(benchmark, cad_db):
    graph = benchmark(
        lambda: build_constructor_graph(cad_db, cad_db.constructor("ahead"))
    )
    assert graph.recursive_heads()


@pytest.mark.benchmark(group="E10-quantgraph")
def test_e10_type_check_level(benchmark, cad_db):
    report = benchmark(lambda: type_check_level(cad_db))
    assert "ahead" in report.recursive_constructors


@pytest.mark.benchmark(group="E10-quantgraph")
def test_e10_table(benchmark):
    table = benchmark.pedantic(experiments.e10_quantgraph, rounds=1, iterations=1)
    write_table("e10", table)
    # a ring of m constructors: one component, m recursive heads
    last = table.rows[-1]
    assert last[3] == 1 and last[4] == 24
