"""Transcriptions of every definition appearing in the paper.

This module is the executable form of the paper's running examples, used
by the tests (which assert the paper's claimed values), the examples, and
the benchmark harness:

* the CAD schema — ``objectrel``, ``infrontrel``, ``ontoprel``,
  ``aheadrel``, ``aboverel`` (sections 2.3 and 3.1);
* the ``refint`` referential-integrity selector and the parameterized
  ``hidden_by`` selector (section 2.3 / 3.1);
* the ``ahead_2`` constructor (section 2.3);
* the simply recursive ``ahead`` constructor and its bounded ``ahead_n``
  family (section 3.1);
* the mutually recursive ``ahead``/``above`` pair (section 3.1);
* the ``nonsense`` and ``strange`` constructors (section 3.3).

Each ``define_*`` function registers the relevant definitions with a
database and returns them; ``cad_schema()`` declares the base relations.
"""

from __future__ import annotations

from .calculus import dsl as d
from .constructors import Constructor, Parameter, define_constructor
from .relational import Database
from .selectors import define_selector
from .types import CARDINAL, STRING, record, relation_type

# ---------------------------------------------------------------------------
# Schema (sections 2.3, 3.1)
# ---------------------------------------------------------------------------

OBJECTREC = record("objectrec", part=STRING, kind=STRING)
OBJECTREL = relation_type("objectrel", OBJECTREC, key=("part",))

INFRONTREC = record("infrontrec", front=STRING, back=STRING)
INFRONTREL = relation_type("infrontrel", INFRONTREC)

ONTOPREC = record("ontoprec", top=STRING, base=STRING)
ONTOPREL = relation_type("ontoprel", ONTOPREC)

AHEADREC = record("aheadrec", head=STRING, tail=STRING)
AHEADREL = relation_type("aheadrel", AHEADREC)

ABOVEREC = record("aboverec", high=STRING, low=STRING)
ABOVEREL = relation_type("aboverel", ABOVEREC)

CARDREC = record("cardrec", number=CARDINAL)
CARDREL = relation_type("cardrel", CARDREC)


def cad_schema(db: Database) -> None:
    """Declare the paper's CAD relation variables (empty)."""
    db.declare("Objects", OBJECTREL)
    db.declare("Infront", INFRONTREL)
    db.declare("Ontop", ONTOPREL)


# ---------------------------------------------------------------------------
# Selectors (section 2.3 / 3.1)
# ---------------------------------------------------------------------------


def define_refint(db: Database):
    """SELECTOR refint FOR Rel: infrontrel();
    BEGIN EACH r IN Rel: SOME r1, r2 IN Objects
          (r.front = r1.part AND r.back = r2.part)
    END refint
    """
    return define_selector(
        db,
        name="refint",
        formal_rel="Rel",
        rel_type=INFRONTREL,
        var="r",
        pred=d.some(
            ("r1", "r2"),
            "Objects",
            d.and_(
                d.eq(d.a("r", "front"), d.a("r1", "part")),
                d.eq(d.a("r", "back"), d.a("r2", "part")),
            ),
        ),
    )


def define_hidden_by(db: Database):
    """SELECTOR hidden_by (Obj: parttype) FOR Rel: infrontrel;
    BEGIN EACH r IN Rel: r.front = Obj END hidden_by
    """
    return define_selector(
        db,
        name="hidden_by",
        formal_rel="Rel",
        rel_type=INFRONTREL,
        var="r",
        pred=d.eq(d.a("r", "front"), d.param("Obj")),
        params=(Parameter("Obj", STRING),),
    )


# ---------------------------------------------------------------------------
# Constructors (sections 2.3, 3.1)
# ---------------------------------------------------------------------------


def define_ahead_2(db: Database) -> Constructor:
    """CONSTRUCTOR ahead2 FOR Rel: infrontrel(): aheadrel;
    BEGIN EACH r IN Rel: TRUE,
          <f.front, b.back> OF EACH f, b IN Rel: f.back = b.front
    END ahead2
    """
    body = d.query(
        d.branch(d.each("r", "Rel")),
        d.branch(
            d.each("f", "Rel"),
            d.each("b", "Rel"),
            pred=d.eq(d.a("f", "back"), d.a("b", "front")),
            targets=[d.a("f", "front"), d.a("b", "back")],
        ),
    )
    return define_constructor(
        db,
        name="ahead2",
        formal_rel="Rel",
        rel_type=INFRONTREL,
        result_type=AHEADREL,
        body=body,
    )


def define_simple_ahead(db: Database) -> Constructor:
    """CONSTRUCTOR ahead FOR Rel: infrontrel(): aheadrel;
    BEGIN EACH r IN Rel: TRUE,
          <f.front, b.tail> OF EACH f IN Rel,
                               EACH b IN Rel{ahead}: f.back = b.head
    END ahead
    """
    body = d.query(
        d.branch(d.each("r", "Rel")),
        d.branch(
            d.each("f", "Rel"),
            d.each("b", d.constructed("Rel", "ahead")),
            pred=d.eq(d.a("f", "back"), d.a("b", "head")),
            targets=[d.a("f", "front"), d.a("b", "tail")],
        ),
    )
    return define_constructor(
        db,
        name="ahead",
        formal_rel="Rel",
        rel_type=INFRONTREL,
        result_type=AHEADREL,
        body=body,
    )


def define_mutual_ahead_above(db: Database) -> tuple[Constructor, Constructor]:
    """The mutually recursive pair of section 3.1.

    CONSTRUCTOR ahead FOR Rel: infrontrel (Ontop: ontoprel): aheadrel;
    BEGIN EACH r IN Rel: TRUE,
          <r.front, ah.tail> OF EACH r IN Rel,
                                EACH ah IN Rel{ahead(Ontop)}: r.back = ah.head,
          <r.front, ab.low>  OF EACH r IN Rel,
                                EACH ab IN Ontop{above(Rel)}: r.back = ab.high
    END ahead

    CONSTRUCTOR above FOR Rel: ontoprel (Infront: infrontrel): aboverel;
    BEGIN EACH r IN Rel: TRUE,
          <r.top, ab.low>  OF EACH r IN Rel,
                              EACH ab IN Rel{above(Infront)}: r.base = ab.high,
          <r.top, ah.tail> OF EACH r IN Rel,
                              EACH ah IN Infront{ahead(Rel)}: r.base = ah.head
    END above
    """
    ahead_body = d.query(
        d.branch(d.each("r", "Rel")),
        d.branch(
            d.each("r", "Rel"),
            d.each("ah", d.constructed("Rel", "ahead", d.rel("Ontop"))),
            pred=d.eq(d.a("r", "back"), d.a("ah", "head")),
            targets=[d.a("r", "front"), d.a("ah", "tail")],
        ),
        d.branch(
            d.each("r", "Rel"),
            d.each("ab", d.constructed("Ontop", "above", d.rel("Rel"))),
            pred=d.eq(d.a("r", "back"), d.a("ab", "high")),
            targets=[d.a("r", "front"), d.a("ab", "low")],
        ),
    )
    ahead = define_constructor(
        db,
        name="ahead",
        formal_rel="Rel",
        rel_type=INFRONTREL,
        result_type=AHEADREL,
        body=ahead_body,
        params=(Parameter("Ontop", ONTOPREL),),
    )
    above_body = d.query(
        d.branch(d.each("r", "Rel")),
        d.branch(
            d.each("r", "Rel"),
            d.each("ab", d.constructed("Rel", "above", d.rel("Infront"))),
            pred=d.eq(d.a("r", "base"), d.a("ab", "high")),
            targets=[d.a("r", "top"), d.a("ab", "low")],
        ),
        d.branch(
            d.each("r", "Rel"),
            d.each("ah", d.constructed("Infront", "ahead", d.rel("Rel"))),
            pred=d.eq(d.a("r", "base"), d.a("ah", "head")),
            targets=[d.a("r", "top"), d.a("ah", "tail")],
        ),
    )
    above = define_constructor(
        db,
        name="above",
        formal_rel="Rel",
        rel_type=ONTOPREL,
        result_type=ABOVEREL,
        body=above_body,
        params=(Parameter("Infront", INFRONTREL),),
    )
    return ahead, above


# ---------------------------------------------------------------------------
# Negative examples (section 3.3)
# ---------------------------------------------------------------------------


def define_nonsense(db: Database, check_positivity: bool = False) -> Constructor:
    """CONSTRUCTOR nonsense FOR Rel: anytype(): anyothertype;
    BEGIN EACH r IN Rel: NOT (r IN Rel{nonsense}) END nonsense

    With positivity checking on, the definition is rejected; with it off,
    the iteration provably oscillates and the engine raises
    :class:`~repro.errors.ConvergenceError`.
    """
    body = d.query(
        d.branch(
            d.each("r", "Rel"),
            pred=d.not_(d.in_(d.v("r"), d.constructed("Rel", "nonsense"))),
        )
    )
    return define_constructor(
        db,
        name="nonsense",
        formal_rel="Rel",
        rel_type=CARDREL,
        result_type=CARDREL,
        body=body,
        check_positivity=check_positivity,
    )


def define_strange(db: Database, check_positivity: bool = False) -> Constructor:
    """CONSTRUCTOR strange FOR Baserel: cardrel(): cardrel;
    BEGIN EACH r IN Baserel:
          NOT SOME s IN Baserel{strange} (r.number = s.number + 1)
    END strange

    Non-monotone but convergent ([Hehn 84]): on {0..6} the limit is
    {0, 2, 4, 6}.  Rejected by the compiler's positivity check; the
    engine finds the limit when the check is explicitly overridden.
    """
    body = d.query(
        d.branch(
            d.each("r", "Baserel"),
            pred=d.not_(
                d.some(
                    "s",
                    d.constructed("Baserel", "strange"),
                    d.eq(d.a("r", "number"), d.plus(d.a("s", "number"), 1)),
                )
            ),
        )
    )
    return define_constructor(
        db,
        name="strange",
        formal_rel="Baserel",
        rel_type=CARDREL,
        result_type=CARDREL,
        body=body,
        check_positivity=check_positivity,
    )


# ---------------------------------------------------------------------------
# Ready-made databases
# ---------------------------------------------------------------------------


def cad_database(
    objects=(), infront=(), ontop=(), mutual: bool = True
) -> Database:
    """A CAD database with the paper's schema, data, and definitions."""
    db = Database("cad")
    db.declare("Objects", OBJECTREL, objects)
    db.declare("Infront", INFRONTREL, infront)
    db.declare("Ontop", ONTOPREL, ontop)
    define_refint(db)
    define_hidden_by(db)
    define_ahead_2(db)
    if mutual:
        define_mutual_ahead_above(db)
    else:
        define_simple_ahead(db)
    return db
