"""Same-generation workload: the other canonical recursive query.

``parent(child, parent)`` facts over a forest; two people are of the same
generation when they are siblings/cousins at equal depth.  The standard
non-linear Datalog program is

    sg(X, Y) :- sibling(X, Y).
    sg(X, Y) :- parent(X, XP), sg(XP, YP), parent(Y, YP).

which exercises *two* recursive joins per step (the non-linear
differential of the semi-naive engines).
"""

from __future__ import annotations

import random

from ..calculus import dsl as d
from ..constructors import define_constructor
from ..relational import Database
from ..types import STRING, record, relation_type

PARENTREC = record("parentrec", child=STRING, parent=STRING)
PARENTREL = relation_type("parentrel", PARENTREC)

SGREC = record("sgrec", left=STRING, right=STRING)
SGREL = relation_type("sgrel", SGREC)


def generate_family(
    roots: int = 2, depth: int = 4, children: int = 2, seed: int = 3
) -> list[tuple[str, str]]:
    """(child, parent) pairs for a forest of family trees."""
    rng = random.Random(seed)
    edges: list[tuple[str, str]] = []
    counter = 0

    def expand(person: str, level: int) -> None:
        nonlocal counter
        if level >= depth:
            return
        for _ in range(rng.randint(1, children)):
            counter += 1
            child = f"c{counter}"
            edges.append((child, person))
            expand(child, level + 1)

    for r in range(roots):
        expand(f"root{r}", 0)
    return edges


def sg_database(parent_edges) -> Database:
    """Database with Parent, Sibling, and the same-generation constructor."""
    db = Database("genealogy")
    # Bulk loads: batched key checks and statistics absorption.
    db.declare("Parent", PARENTREL).insert_many(parent_edges)
    siblings = {
        (a, b)
        for (a, pa) in parent_edges
        for (b, pb) in parent_edges
        if pa == pb and a != b
    }
    db.declare("Sibling", SGREL).insert_many(siblings)
    body = d.query(
        d.branch(d.each("s", "Sibling")),
        d.branch(
            d.each("px", "Parent"),
            d.each("g", d.constructed("Rel", "samegen", d.rel("Parent"))),
            d.each("py", "Parent"),
            pred=d.and_(
                d.eq(d.a("px", "parent"), d.a("g", "left")),
                d.eq(d.a("py", "parent"), d.a("g", "right")),
            ),
            targets=[d.a("px", "child"), d.a("py", "child")],
        ),
    )
    from ..selectors.selector import Parameter

    define_constructor(
        db, "samegen", "Rel", SGREL, SGREL, body,
        params=(Parameter("Parent", PARENTREL),),
    )
    return db
