"""CAD scene generator: scaled versions of the paper's running example.

A scene consists of rooms arranged in a row; each room holds a row of
furniture pieces (``Infront`` chains) and stacks of objects on some of
them (``Ontop`` chains).  This reproduces, at scale, exactly the two
relations of sections 2.3/3.1, with the vase-on-table-in-front-of-chair
pattern appearing throughout.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..relational import Database
from .. import paper


@dataclass
class Scene:
    objects: list[tuple[str, str]]
    infront: list[tuple[str, str]]
    ontop: list[tuple[str, str]]

    def database(self, mutual: bool = True) -> Database:
        """A CAD database with the paper's definitions over this scene."""
        return paper.cad_database(self.objects, self.infront, self.ontop, mutual=mutual)


KINDS = ["table", "chair", "desk", "shelf", "cabinet"]
TOPPERS = ["vase", "lamp", "book", "plant", "clock"]


def generate_scene(
    rooms: int = 2,
    row_length: int = 5,
    stack_height: int = 2,
    stacks_per_room: int = 2,
    seed: int = 11,
) -> Scene:
    """A deterministic scene with ``rooms * row_length`` furniture pieces.

    * furniture within a room forms an Infront chain;
    * the last piece of each room is in front of the first piece of the
      next room (one long gallery);
    * ``stacks_per_room`` stacks of ``stack_height`` objects stand on
      randomly chosen furniture pieces (Ontop chains).
    """
    rng = random.Random(seed)
    objects: list[tuple[str, str]] = []
    infront: list[tuple[str, str]] = []
    ontop: list[tuple[str, str]] = []

    furniture: list[list[str]] = []
    for room in range(rooms):
        row: list[str] = []
        for i in range(row_length):
            kind = KINDS[(room + i) % len(KINDS)]
            name = f"{kind}_{room}_{i}"
            objects.append((name, kind))
            row.append(name)
        furniture.append(row)
        for a, b in zip(row, row[1:]):
            infront.append((a, b))
    for prev, nxt in zip(furniture, furniture[1:]):
        infront.append((prev[-1], nxt[0]))

    for room in range(rooms):
        for s in range(stacks_per_room):
            base = rng.choice(furniture[room])
            below = base
            for level in range(stack_height):
                kind = TOPPERS[(s + level) % len(TOPPERS)]
                name = f"{kind}_{room}_{s}_{level}"
                objects.append((name, kind))
                ontop.append((name, below))
                below = name
    return Scene(objects, infront, ontop)
