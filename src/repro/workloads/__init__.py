"""Workload generators: graphs, CAD scenes, bill of materials, genealogy."""

from .bom import bom_database, generate_bom
from .cad import Scene, generate_scene
from .genealogy import generate_family, sg_database
from .graphs import (
    binary_tree,
    chain,
    cycle,
    grid,
    layered_dag,
    random_dag,
    random_digraph,
)

__all__ = [
    "Scene",
    "binary_tree",
    "bom_database",
    "chain",
    "cycle",
    "generate_bom",
    "generate_family",
    "generate_scene",
    "grid",
    "layered_dag",
    "random_dag",
    "random_digraph",
    "sg_database",
]
