"""Bill-of-materials (parts explosion) workload.

The classic recursive database query of the era: ``contains(part, sub)``
pairs forming a forest of assemblies; the constructed relation is the
parts explosion (all direct and indirect subparts).
"""

from __future__ import annotations

import random

from ..calculus import dsl as d
from ..constructors import define_constructor
from ..relational import Database
from ..types import STRING, record, relation_type

CONTAINSREC = record("containsrec", part=STRING, sub=STRING)
CONTAINSREL = relation_type("containsrel", CONTAINSREC)

EXPLODEREC = record("exploderec", part=STRING, sub=STRING)
EXPLODEREL = relation_type("exploderel", EXPLODEREC)


def generate_bom(
    assemblies: int = 4, depth: int = 4, fanout: int = 3, seed: int = 5
) -> list[tuple[str, str]]:
    """A forest of ``assemblies`` part trees of the given depth/fan-out."""
    rng = random.Random(seed)
    edges: list[tuple[str, str]] = []
    counter = 0

    def expand(part: str, level: int) -> None:
        nonlocal counter
        if level >= depth:
            return
        for _ in range(rng.randint(1, fanout)):
            counter += 1
            sub = f"p{counter}"
            edges.append((part, sub))
            expand(sub, level + 1)

    for a in range(assemblies):
        expand(f"assembly{a}", 0)
    return edges


def bom_database(edges) -> Database:
    """A database with the Contains relation and the explode constructor:

    CONSTRUCTOR explode FOR Rel: containsrel (): exploderel;
    BEGIN EACH r IN Rel: TRUE,
          <c.part, e.sub> OF EACH c IN Rel,
               EACH e IN Rel{explode}: c.sub = e.part
    END explode
    """
    db = Database("bom")
    # Bulk load: one key check and one batched statistics absorption for
    # the whole edge set, instead of per-row maintenance.
    db.declare("Contains", CONTAINSREL).insert_many(edges)
    body = d.query(
        d.branch(d.each("r", "Rel")),
        d.branch(
            d.each("c", "Rel"),
            d.each("e", d.constructed("Rel", "explode")),
            pred=d.eq(d.a("c", "sub"), d.a("e", "part")),
            targets=[d.a("c", "part"), d.a("e", "sub")],
        ),
    )
    define_constructor(db, "explode", "Rel", CONTAINSREL, EXPLODEREL, body)
    return db
