"""Graph workload generators for the recursive-query experiments.

All generators return lists of ``(src, dst)`` string pairs, deterministic
for a given seed, with node labels ``n0, n1, ...`` so results are easy to
eyeball.  The shapes are the standard early-deductive-database workloads:
chains and cycles (worst-case recursion depth), balanced trees (fan-out),
grids (quadratic path multiplicity), layered and random DAGs, and general
random digraphs (cycles allowed).
"""

from __future__ import annotations

import random


def _n(i: int) -> str:
    return f"n{i}"


def chain(length: int) -> list[tuple[str, str]]:
    """n0 -> n1 -> ... -> n(length)."""
    return [(_n(i), _n(i + 1)) for i in range(length)]


def cycle(length: int) -> list[tuple[str, str]]:
    """A directed cycle of ``length`` nodes (SLD's nemesis)."""
    edges = chain(length - 1)
    edges.append((_n(length - 1), _n(0)))
    return edges


def binary_tree(depth: int) -> list[tuple[str, str]]:
    """Balanced binary tree edges, parent -> child, 2^depth - 1 nodes."""
    edges: list[tuple[str, str]] = []
    total = 2 ** depth - 1
    for i in range(total):
        for child in (2 * i + 1, 2 * i + 2):
            if child < total:
                edges.append((_n(i), _n(child)))
    return edges


def grid(width: int, height: int) -> list[tuple[str, str]]:
    """Directed grid: edges right and down; many distinct paths per pair."""

    def node(x: int, y: int) -> str:
        return f"g{x}_{y}"

    edges: list[tuple[str, str]] = []
    for x in range(width):
        for y in range(height):
            if x + 1 < width:
                edges.append((node(x, y), node(x + 1, y)))
            if y + 1 < height:
                edges.append((node(x, y), node(x, y + 1)))
    return edges


def layered_dag(layers: int, width: int, fanout: int = 2, seed: int = 7) -> list[tuple[str, str]]:
    """A DAG of ``layers`` layers, each node feeding ``fanout`` successors."""
    rng = random.Random(seed)
    edges: list[tuple[str, str]] = []
    for layer in range(layers - 1):
        for i in range(width):
            src = f"l{layer}_{i}"
            for dst_i in rng.sample(range(width), min(fanout, width)):
                edges.append((src, f"l{layer + 1}_{dst_i}"))
    return sorted(set(edges))


def random_dag(nodes: int, edges: int, seed: int = 7) -> list[tuple[str, str]]:
    """A random DAG: edges always point from lower to higher node index."""
    rng = random.Random(seed)
    out: set[tuple[str, str]] = set()
    attempts = 0
    while len(out) < edges and attempts < edges * 20:
        attempts += 1
        a, b = rng.sample(range(nodes), 2)
        if a > b:
            a, b = b, a
        out.add((_n(a), _n(b)))
    return sorted(out)


def random_digraph(nodes: int, edges: int, seed: int = 7) -> list[tuple[str, str]]:
    """A random digraph; cycles allowed (terminates fixpoints, loops SLD)."""
    rng = random.Random(seed)
    out: set[tuple[str, str]] = set()
    attempts = 0
    while len(out) < edges and attempts < edges * 20:
        attempts += 1
        a = rng.randrange(nodes)
        b = rng.randrange(nodes)
        if a != b:
            out.add((_n(a), _n(b)))
    return sorted(out)
