"""The diagnostics engine: rule-coded findings with source spans.

Every verdict the static analyzer produces is a :class:`Diagnostic` — a
stable rule code (``DBPL010``-style, see the README catalog), a severity
(``error`` / ``warning`` / ``hint``), a human message, and the
:class:`Span` of the offending source text.  A :class:`Diagnostics`
collector accumulates them during a pass and provides the render /
filter / assert helpers the front door (``Session.check``,
``Session.query``) and the test suite build on.

Spans are attached to AST nodes by the parsers as a *non-field*
attribute (``_span``): the calculus and Datalog ASTs are frozen,
hashable dataclasses whose equality the compiler exploits for
canonicalization, so location data must stay out of ``__eq__`` /
``__hash__`` — two occurrences of the same subexpression are still the
same plan shape.  :func:`set_span` / :func:`span_of` are the one
sanctioned way to touch that attribute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AnalysisError

#: Severity levels, most severe first.
SEVERITIES = ("error", "warning", "hint")

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


# ---------------------------------------------------------------------------
# Source spans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Span:
    """A half-open region of source text, 1-based lines and columns."""

    line: int
    column: int
    end_line: int = 0
    end_column: int = 0

    def __post_init__(self) -> None:
        if not self.end_line:
            object.__setattr__(self, "end_line", self.line)
        if not self.end_column:
            object.__setattr__(self, "end_column", self.column)

    @property
    def is_zero(self) -> bool:
        """True for the placeholder span of location-free nodes."""
        return self.line <= 0

    def shifted(self, line_offset: int, column_offset: int = 0) -> "Span":
        """The same region relative to an enclosing document.

        ``column_offset`` applies to first-line positions only — lines
        after the first keep their own columns (the embedded source is
        shifted down, not right).
        """
        first_col = self.column + (column_offset if self.line == 1 else 0)
        end_col = self.end_column + (column_offset if self.end_line == 1 else 0)
        return Span(
            self.line + line_offset, first_col, self.end_line + line_offset, end_col
        )

    def __str__(self) -> str:
        if self.end_line != self.line:
            return f"{self.line}:{self.column}-{self.end_line}:{self.end_column}"
        if self.end_column > self.column:
            return f"{self.line}:{self.column}-{self.end_column}"
        return f"{self.line}:{self.column}"


#: Span attribute name on AST nodes (kept out of dataclass fields — see
#: the module docstring).
_SPAN_ATTR = "_span"


def set_span(node: object, span: Span | None) -> object:
    """Attach ``span`` to an AST node (frozen dataclasses included)."""
    if span is not None:
        object.__setattr__(node, _SPAN_ATTR, span)
    return node


def span_of(node: object) -> Span | None:
    """The span a parser attached to ``node``, or None for built nodes."""
    return getattr(node, _SPAN_ATTR, None)


def copy_span(dst: object, src: object) -> object:
    """Propagate ``src``'s span onto a node derived from it."""
    return set_span(dst, span_of(src))


# ---------------------------------------------------------------------------
# Diagnostics
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str
    severity: str
    message: str
    span: Span | None = None
    #: Optional machine-readable payload (e.g. the dead branch index).
    data: object = field(default=None, compare=False, repr=False)

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def render(self) -> str:
        where = f" at {self.span}" if self.span and not self.span.is_zero else ""
        return f"{self.code} {self.severity}{where}: {self.message}"

    def __str__(self) -> str:
        return self.render()


class Diagnostics:
    """An ordered collector of :class:`Diagnostic` records."""

    def __init__(self, items: list[Diagnostic] | None = None) -> None:
        self._items: list[Diagnostic] = list(items or ())

    # -- collection ---------------------------------------------------------

    def add(
        self,
        code: str,
        severity: str,
        message: str,
        span: Span | None = None,
        node: object = None,
        data: object = None,
    ) -> Diagnostic:
        """Record a finding; ``node`` supplies the span when given."""
        if severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {severity!r}")
        if span is None and node is not None:
            span = span_of(node)
        diag = Diagnostic(code, severity, message, span, data)
        self._items.append(diag)
        return diag

    def error(self, code: str, message: str, **kwargs) -> Diagnostic:
        return self.add(code, "error", message, **kwargs)

    def warning(self, code: str, message: str, **kwargs) -> Diagnostic:
        return self.add(code, "warning", message, **kwargs)

    def hint(self, code: str, message: str, **kwargs) -> Diagnostic:
        return self.add(code, "hint", message, **kwargs)

    def extend(self, other: "Diagnostics") -> None:
        self._items.extend(other._items)

    # -- access -------------------------------------------------------------

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __getitem__(self, index: int) -> Diagnostic:
        return self._items[index]

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self._items if d.severity == "error"]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self._items if d.severity == "warning"]

    @property
    def hints(self) -> list[Diagnostic]:
        return [d for d in self._items if d.severity == "hint"]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == "error" for d in self._items)

    def codes(self) -> list[str]:
        return [d.code for d in self._items]

    def filter(
        self, code: str | None = None, severity: str | None = None
    ) -> "Diagnostics":
        """A new collector restricted to one code and/or severity."""
        return Diagnostics(
            [
                d
                for d in self._items
                if (code is None or d.code == code)
                and (severity is None or d.severity == severity)
            ]
        )

    def sorted(self) -> "Diagnostics":
        """Most severe first, then document order (stable)."""
        return Diagnostics(
            sorted(self._items, key=lambda d: _SEVERITY_RANK[d.severity])
        )

    # -- rendering and gating -----------------------------------------------

    def render(self) -> str:
        if not self._items:
            return "no diagnostics"
        return "\n".join(d.render() for d in self._items)

    def raise_if_errors(self, context: str = "", cls: type = AnalysisError) -> None:
        """Raise ``cls`` (default :class:`AnalysisError`) when any finding
        is error-severity; the exception carries the full collection."""
        errors = self.errors
        if not errors:
            return
        head = errors[0]
        prefix = f"{context}: " if context else ""
        suffix = f" (+{len(errors) - 1} more)" if len(errors) > 1 else ""
        raise cls(f"{prefix}{head.render()}{suffix}", diagnostics=self, span=head.span)

    def assert_clean(self, max_severity: str = "error") -> None:
        """Assert no finding at or above ``max_severity`` (for tests/CI)."""
        limit = _SEVERITY_RANK[max_severity]
        bad = [d for d in self._items if _SEVERITY_RANK[d.severity] <= limit]
        assert not bad, "unexpected diagnostics:\n" + "\n".join(
            d.render() for d in bad
        )
