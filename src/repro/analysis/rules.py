"""Static analysis of Datalog programs: safety, stratification, negation.

The bottom-up engines evaluate the *positive* fragment of section 3.4;
this module is their front gate, and the analyzer's second surface.  It
runs over a parsed :class:`~repro.datalog.ast.Program` (spans attached
by the parser) and reports:

=========  ========  ====================================================
code       severity  meaning
=========  ========  ====================================================
DBPL101    error     rule is not range-restricted (unsafe head variable)
DBPL102    warning   comparison variable not bound by a positive atom
DBPL103    warning   body predicate never defined (IDB/EDB/facts unknown)
DBPL104    warning   predicate used with inconsistent arities
DBPL105    error     negation outside the positive fragment (engine gate)
DBPL106    error     program is not stratifiable (negation in a cycle)
DBPL107    error     unsafe negation: negated atom has unbound variables
DBPL108    hint      singleton variable (likely a typo)
=========  ========  ====================================================

``DBPL102`` is warning-severity deliberately: the engines bind
comparison variables from whatever atoms *have* matched by evaluation
time, and raise their own runtime error otherwise — a static "possibly
unbound" verdict must not reject programs the engine accepts.
"""

from __future__ import annotations

from collections import Counter

from ..datalog.ast import Atom, Comparison, Program, Rule
from .diagnostics import Diagnostics


def analyze_datalog(
    program: Program,
    edb_predicates: set[str] | None = None,
    positive_only: bool = False,
) -> Diagnostics:
    """Analyze a Datalog program; see the module table for rule codes.

    ``edb_predicates`` — extensional predicates known to the caller
    (engine EDB keys); without it the undefined-predicate check
    (DBPL103) is skipped, since any body predicate might be extensional.
    ``positive_only`` — the engine gate: negated atoms become DBPL105
    errors (the bottom-up engines implement the positive fragment).
    """
    diags = Diagnostics()
    arities: dict[str, int] = {}
    for rule in program.rules:
        _check_rule(rule, diags, positive_only)
        for atom in _atoms_of(rule):
            known = arities.setdefault(atom.pred, atom.arity)
            if known != atom.arity:
                diags.warning(
                    "DBPL104",
                    f"predicate {atom.pred}/{atom.arity} also used with "
                    f"arity {known}",
                    node=atom,
                )
    if edb_predicates is not None:
        defined = program.predicates() | set(edb_predicates)
        for rule in program.rules:
            for lit in rule.body:
                if isinstance(lit, Atom) and lit.pred not in defined:
                    diags.warning(
                        "DBPL103",
                        f"predicate {lit.pred!r} is never defined "
                        "(no rule, fact, or extensional relation)",
                        node=lit,
                    )
    _check_stratification(program, diags)
    return diags


def _atoms_of(rule: Rule):
    yield rule.head
    for lit in rule.body:
        if isinstance(lit, Atom):
            yield lit


def _check_rule(rule: Rule, diags: Diagnostics, positive_only: bool) -> None:
    bound = rule.positive_body_variables()
    if not rule.is_range_restricted():
        unsafe = sorted(
            rule.head.variables() - bound if not rule.is_fact
            else rule.head.variables()
        )
        diags.error(
            "DBPL101",
            f"rule is not range-restricted: {rule} "
            f"(variable(s) {', '.join(unsafe)} not bound by a positive body atom)",
            node=rule,
        )
    occurrences: Counter[str] = Counter()
    for lit in rule.body:
        if isinstance(lit, Comparison):
            for var in sorted(lit.variables() - bound):
                diags.warning(
                    "DBPL102",
                    f"comparison {lit} uses {var!r}, which no positive "
                    "body atom binds",
                    node=lit,
                )
        elif lit.negated:
            if positive_only:
                diags.error(
                    "DBPL105",
                    f"negated atom {lit} is outside the positive fragment "
                    "this engine implements (section 3.4)",
                    node=lit,
                )
            for var in sorted(lit.variables() - bound):
                diags.error(
                    "DBPL107",
                    f"unsafe negation: {lit} uses {var!r}, which no "
                    "positive body atom binds",
                    node=lit,
                )
        occurrences.update(lit.variables())
    occurrences.update(rule.head.variables())
    for var, count in sorted(occurrences.items()):
        if count == 1 and not var.startswith("_"):
            diags.hint(
                "DBPL108",
                f"variable {var!r} occurs only once in {rule.head.pred}/"
                f"{rule.head.arity} (use _{var} to silence)",
                node=rule,
            )


def _check_stratification(program: Program, diags: Diagnostics) -> None:
    """DBPL106: negation through a dependency cycle has no stratification."""
    neg_edges: list[tuple[str, str, Atom]] = []
    graph: dict[str, set[str]] = {}
    for rule in program.rules:
        deps = graph.setdefault(rule.head.pred, set())
        for lit in rule.body:
            if isinstance(lit, Atom):
                deps.add(lit.pred)
                if lit.negated:
                    neg_edges.append((rule.head.pred, lit.pred, lit))
    if not neg_edges:
        return
    component = _sccs(graph)
    for head, dep, atom in neg_edges:
        if component.get(head) is not None and component.get(head) == component.get(dep):
            diags.error(
                "DBPL106",
                f"{head!r} depends negatively on {dep!r} inside a recursive "
                "cycle; the program has no stratification",
                node=atom,
            )


def _sccs(graph: dict[str, set[str]]) -> dict[str, int]:
    """Map each node to its strongly-connected-component id (iterative
    Tarjan — no recursion limits on deep rule chains)."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    component: dict[str, int] = {}
    counter = [0]
    comp_id = [0]

    for root in graph:
        if root in index:
            continue
        work: list[tuple[str, list[str], int]] = [(root, sorted(graph.get(root, ())), 0)]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children, i = work.pop()
            advanced = False
            while i < len(children):
                child = children[i]
                i += 1
                if child not in graph:
                    continue  # pure-EDB dependency: no outgoing edges
                if child not in index:
                    work.append((node, children, i))
                    index[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, sorted(graph.get(child, ())), 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component[member] = comp_id[0]
                    if member == node:
                        break
                comp_id[0] += 1
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return component


__all__ = ["analyze_datalog"]
