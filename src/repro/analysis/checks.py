"""The DBPL-surface check registry.

:func:`analyze_query` runs every static check over one parsed query
expression; :func:`analyze_module` walks a parsed declaration module
(types, variables, selectors, constructors), accumulating the declared
names as it goes so later declarations resolve against earlier ones.
Both report through a :class:`~repro.analysis.diagnostics.Diagnostics`
collector and never raise for user errors — gating is the caller's
decision (``Session.query`` raises, ``Session.check`` returns).

Rule codes (surface language; ``DBPL1xx`` are the Datalog codes in
:mod:`repro.analysis.rules`):

=========  ========  ====================================================
code       severity  meaning
=========  ========  ====================================================
DBPL001    error     unknown relation name in range position
DBPL002    error     unknown selector
DBPL003    error     unknown constructor
DBPL004    error     wrong selector/constructor argument count
DBPL005    error     unknown attribute of a tuple variable / key field
DBPL006    error     unbound variable or unknown identifier
DBPL007    error     incomparable operand types (type-flow)
DBPL008    error     membership element arity mismatch
DBPL009    error     duplicate binding variable in a branch
DBPL010    warning   contradictory predicate (provably false)
DBPL011    hint      tautological comparison (provably true)
DBPL012    warning   provably-empty branch (pruned before planning)
DBPL013    warning   cartesian product: bindings never connected
DBPL014    warning   quantifier variable shadows an outer variable
DBPL015    error     unknown type name in a declaration
DBPL016    error     provably-empty RANGE type
DBPL017    error     target list arity differs from result type
DBPL018    error     malformed identity branch in a constructor
DBPL019    error     duplicate declaration
DBPL020    error     positivity violation (section 3.3)
DBPL021    error     declaration requires a relation type
DBPL022    error     duplicate record field / enumeration label
=========  ========  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..calculus import ast
from ..calculus.analysis import positivity_violations
from ..dbpl import astnodes
from ..types import RecordType, RelationType, Type
from .diagnostics import Diagnostics, span_of
from .typeflow import (
    TypeEnv,
    comparable,
    conjunction_contradictions,
    fold_pred,
    term_type,
)

#: Parameterize() slot prefix (see repro.dbpl.serving); slot ParamRefs are
#: always bound by the serving layer, never an unknown identifier.
_SLOT_PREFIX = "__bind_"


# ---------------------------------------------------------------------------
# Scope: the name environment checks resolve against
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectorSig:
    name: str
    arity: int


@dataclass(frozen=True)
class ConstructorSig:
    name: str
    arity: int
    result_schema: RecordType | None = None


class Scope:
    """Declared names visible to a program under analysis."""

    def __init__(
        self,
        relations: dict[str, RelationType] | None = None,
        selectors: dict[str, SelectorSig] | None = None,
        constructors: dict[str, ConstructorSig] | None = None,
        types: dict[str, Type] | None = None,
        params: dict[str, Type] | None = None,
    ) -> None:
        self.relations = dict(relations or {})
        self.selectors = dict(selectors or {})
        self.constructors = dict(constructors or {})
        self.types = dict(types or {})
        self.params = dict(params or {})

    @classmethod
    def from_db(cls, db, types: dict[str, Type] | None = None) -> "Scope":
        return cls(
            relations={name: rel.rtype for name, rel in db.relations.items()},
            selectors={
                name: SelectorSig(name, len(sel.params))
                for name, sel in db.selectors.items()
            },
            constructors={
                name: ConstructorSig(name, len(con.params), con.result_type.element)
                for name, con in db.constructors.items()
            },
            types=types,
        )

    @classmethod
    def from_session(cls, session) -> "Scope":
        return cls.from_db(session.db, types=session.types)

    def copy(self) -> "Scope":
        return Scope(
            self.relations, self.selectors, self.constructors, self.types, self.params
        )

    def stamp(self) -> tuple:
        """A monotonic token: declarations only accumulate, so counts
        identify the scope for analysis-result caching."""
        return (
            len(self.relations),
            len(self.selectors),
            len(self.constructors),
            len(self.types),
        )


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


class AnalysisResult:
    """Diagnostics plus the planner-facing facts the analyzer proved."""

    def __init__(
        self, diagnostics: Diagnostics, dead_branches: frozenset[int] = frozenset()
    ) -> None:
        self.diagnostics = diagnostics
        #: Indexes of top-level query branches that provably emit no rows.
        self.dead_branches = dead_branches

    @property
    def has_errors(self) -> bool:
        return self.diagnostics.has_errors

    def prune(self, query: ast.Query) -> ast.Query:
        """Drop statically-dead branches before the planner prices them.

        Pruning is sound only for a fully-constant query text (constants
        not yet parameterized); callers on the prepared path must not
        prune, since rebound constants can revive a branch.  A query
        whose every branch is dead is left intact — the executors expect
        at least one branch and an all-dead query is already cheap.
        """
        if not self.dead_branches or len(self.dead_branches) >= len(query.branches):
            return query
        kept = tuple(
            b for i, b in enumerate(query.branches) if i not in self.dead_branches
        )
        return ast.Query(kept)


# ---------------------------------------------------------------------------
# Query analysis
# ---------------------------------------------------------------------------


class _QueryAnalyzer:
    def __init__(self, scope: Scope, diags: Diagnostics) -> None:
        self.scope = scope
        self.diags = diags
        self._schema_memo: dict[int, RecordType | None] = {}

    # -- range resolution ---------------------------------------------------

    def range_schema(self, rng: ast.RangeExpr, env: TypeEnv) -> RecordType | None:
        """Resolve ``rng`` against the scope, reporting name/arity errors
        once per node, and return its element schema when known."""
        memo_key = id(rng)
        if memo_key in self._schema_memo:
            return self._schema_memo[memo_key]
        schema = self._resolve_range(rng, env)
        self._schema_memo[memo_key] = schema
        return schema

    def _resolve_range(self, rng: ast.RangeExpr, env: TypeEnv) -> RecordType | None:
        scope = self.scope
        if isinstance(rng, ast.RelRef):
            rtype = scope.relations.get(rng.name)
            if rtype is not None:
                return rtype.element
            ptype = scope.params.get(rng.name)
            if ptype is not None:
                if isinstance(ptype, RelationType):
                    return ptype.element
                return None  # scalar formal; the binder rewrites these
            self.diags.error(
                "DBPL001", f"unknown relation {rng.name!r}", node=rng
            )
            return None
        if isinstance(rng, ast.Selected):
            base = self.range_schema(rng.base, env)
            sig = scope.selectors.get(rng.selector)
            if sig is None:
                self.diags.error(
                    "DBPL002", f"unknown selector {rng.selector!r}", node=rng
                )
            elif len(rng.args) != sig.arity:
                self.diags.error(
                    "DBPL004",
                    f"selector {rng.selector!r} expects {sig.arity} "
                    f"argument(s), got {len(rng.args)}",
                    node=rng,
                )
            self._visit_args(rng.args, env)
            return base
        if isinstance(rng, ast.Constructed):
            self.range_schema(rng.base, env)
            sig = scope.constructors.get(rng.constructor)
            result: RecordType | None = None
            if sig is None:
                self.diags.error(
                    "DBPL003", f"unknown constructor {rng.constructor!r}", node=rng
                )
            else:
                result = sig.result_schema
                if len(rng.args) != sig.arity:
                    self.diags.error(
                        "DBPL004",
                        f"constructor {rng.constructor!r} expects {sig.arity} "
                        f"argument(s), got {len(rng.args)}",
                        node=rng,
                    )
            self._visit_args(rng.args, env)
            return result
        if isinstance(rng, ast.QueryRange):
            self.visit_query(rng.query, env)
            return self._query_schema(rng.query, env)
        if isinstance(rng, ast.ApplyVar):
            return rng.schema
        return None

    def _visit_args(self, args: tuple[ast.Argument, ...], env: TypeEnv) -> None:
        for arg in args:
            if isinstance(
                arg, (ast.RelRef, ast.Selected, ast.Constructed, ast.QueryRange)
            ):
                self.range_schema(arg, env)
            else:
                self.visit_term(arg, env)

    def _query_schema(self, query: ast.Query, env: TypeEnv) -> RecordType | None:
        """Best-effort element schema of an inline set expression."""
        if not query.branches:
            return None
        branch = query.branches[0]
        inner = env.child(
            {
                b.var: self._schema_memo.get(id(b.range))
                for b in branch.bindings
            }
        )
        if branch.targets is None:
            if not branch.bindings:
                return None
            return self._schema_memo.get(id(branch.bindings[0].range))
        fields = []
        names: set[str] = set()
        for i, target in enumerate(branch.targets):
            ttype = term_type(target, inner)
            if ttype is None:
                return None
            name = target.attr if isinstance(target, ast.AttrRef) else f"f{i}"
            if name in names:
                name = f"{name}_{i}"
            names.add(name)
            fields.append((name, ttype))
        from ..types import Field

        return RecordType("inline", tuple(Field(n, t) for n, t in fields))

    # -- queries and branches ----------------------------------------------

    def visit_query(
        self, query: ast.Query, env: TypeEnv, collect_dead: bool = False
    ) -> frozenset[int]:
        dead: set[int] = set()
        for i, branch in enumerate(query.branches):
            if self.visit_branch(branch, env):
                dead.add(i)
        return frozenset(dead) if collect_dead else frozenset()

    def visit_branch(self, branch: ast.Branch, env: TypeEnv) -> bool:
        """Analyze one branch; True when it provably emits no rows."""
        seen: set[str] = set()
        schemas: dict[str, RecordType | None] = {}
        for binding in branch.bindings:
            if binding.var in seen:
                self.diags.error(
                    "DBPL009",
                    f"duplicate binding variable {binding.var!r} in branch",
                    node=binding,
                )
            seen.add(binding.var)
            schemas[binding.var] = self.range_schema(binding.range, env)
        inner = env.child(schemas)
        self.visit_pred(branch.pred, inner)
        if branch.targets is not None:
            for target in branch.targets:
                self.visit_term(target, inner)
        dead = False
        if fold_pred(branch.pred, inner) is False:
            self.diags.warning(
                "DBPL012",
                "branch predicate is provably false; the branch emits no rows",
                node=branch,
            )
            dead = True
        else:
            parts = (
                branch.pred.parts
                if isinstance(branch.pred, ast.And)
                else (branch.pred,)
            )
            contradictions = conjunction_contradictions(parts, inner)
            for node, message in contradictions:
                self.diags.warning(
                    "DBPL010", f"contradictory constraints: {message}", node=node
                )
            if contradictions:
                dead = True
        if len(branch.bindings) > 1:
            self._check_connectivity(branch, inner)
        return dead

    def _check_connectivity(self, branch: ast.Branch, env: TypeEnv) -> None:
        """DBPL013: warn when some bindings are never related by the
        predicate — the join degenerates to a cartesian product."""
        binding_vars = [b.var for b in branch.bindings]
        var_set = set(binding_vars)
        parent = {v: v for v in var_set}

        def find(v: str) -> str:
            while parent[v] != v:
                parent[v] = parent[parent[v]]
                v = parent[v]
            return v

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        parts = (
            branch.pred.parts if isinstance(branch.pred, ast.And) else (branch.pred,)
        )
        for part in parts:
            mentioned = {
                n.var
                for n in ast.walk(part)
                if isinstance(n, (ast.AttrRef, ast.VarRef)) and n.var in var_set
            }
            mentioned = sorted(mentioned)
            for other in mentioned[1:]:
                union(mentioned[0], other)
        components = {find(v) for v in var_set}
        if len(components) > 1:
            self.diags.warning(
                "DBPL013",
                f"bindings {', '.join(sorted(var_set))} form {len(components)} "
                "unconnected group(s); the join is a cartesian product",
                node=branch,
            )

    # -- predicates ---------------------------------------------------------

    def visit_pred(self, pred: ast.Pred, env: TypeEnv) -> None:
        if isinstance(pred, ast.Cmp):
            self.visit_term(pred.left, env)
            self.visit_term(pred.right, env)
            lt = term_type(pred.left, env)
            rt = term_type(pred.right, env)
            if not comparable(lt, rt):
                self.diags.error(
                    "DBPL007",
                    f"cannot compare {lt.name} with {rt.name} "
                    f"(families {lt.family()!r} vs {rt.family()!r})",
                    node=pred,
                )
                return
            folded = fold_pred(pred, env)
            if folded is True:
                self.diags.hint(
                    "DBPL011", "comparison is always true", node=pred
                )
            elif folded is False:
                self.diags.warning(
                    "DBPL010", "comparison is always false", node=pred
                )
            return
        if isinstance(pred, ast.Not):
            self.visit_pred(pred.pred, env)
            return
        if isinstance(pred, (ast.And, ast.Or)):
            for part in pred.parts:
                self.visit_pred(part, env)
            return
        if isinstance(pred, (ast.Some, ast.All)):
            schema = self.range_schema(pred.range, env)
            for var in pred.vars:
                if var in env.var_schemas:
                    self.diags.warning(
                        "DBPL014",
                        f"quantifier variable {var!r} shadows an outer "
                        "binding of the same name",
                        node=pred,
                    )
            inner = env.child({var: schema for var in pred.vars})
            self.visit_pred(pred.pred, inner)
            return
        if isinstance(pred, ast.InRel):
            self.visit_term(pred.element, env)
            schema = self.range_schema(pred.range, env)
            if schema is not None:
                arity = self._element_arity(pred.element, env)
                if arity is not None and arity != schema.arity:
                    self.diags.error(
                        "DBPL008",
                        f"membership element has arity {arity}, range "
                        f"elements have arity {schema.arity}",
                        node=pred,
                    )
            return
        # TruePred: nothing to check.

    def _element_arity(self, element: ast.Term, env: TypeEnv) -> int | None:
        if isinstance(element, ast.TupleCons):
            return len(element.items)
        if isinstance(element, ast.VarRef):
            schema = env.schema_of(element.var)
            return schema.arity if schema is not None else None
        return None

    # -- terms --------------------------------------------------------------

    def visit_term(self, term: ast.Term, env: TypeEnv) -> None:
        if isinstance(term, ast.AttrRef):
            schema = env.var_schemas.get(term.var, _UNBOUND)
            if schema is _UNBOUND:
                self.diags.error(
                    "DBPL006", f"unbound variable {term.var!r}", node=term
                )
            elif schema is not None and not schema.has_attribute(term.attr):
                self.diags.error(
                    "DBPL005",
                    f"{schema.name} has no attribute {term.attr!r}; "
                    f"attributes are {', '.join(schema.attribute_names)}",
                    node=term,
                )
            return
        if isinstance(term, ast.VarRef):
            if term.var not in env.var_schemas:
                self.diags.error(
                    "DBPL006", f"unbound variable {term.var!r}", node=term
                )
            return
        if isinstance(term, ast.ParamRef):
            if term.name.startswith(_SLOT_PREFIX):
                return
            if term.name not in self.scope.params:
                self.diags.error(
                    "DBPL006", f"unknown identifier {term.name!r}", node=term
                )
            return
        if isinstance(term, ast.Arith):
            self.visit_term(term.left, env)
            self.visit_term(term.right, env)
            for operand in (term.left, term.right):
                otype = term_type(operand, env)
                if otype is not None and otype.family() not in ("numeric", "any"):
                    self.diags.error(
                        "DBPL007",
                        f"arithmetic operand has non-numeric type {otype.name}",
                        node=operand,
                    )
            return
        if isinstance(term, ast.TupleCons):
            for item in term.items:
                self.visit_term(item, env)
            return
        # Const: always fine.


_UNBOUND = object()


def analyze_query(node, scope: Scope) -> AnalysisResult:
    """Analyze one parsed query expression (set former or range)."""
    diags = Diagnostics()
    analyzer = _QueryAnalyzer(scope, diags)
    env = TypeEnv(param_types=scope.params)
    dead: frozenset[int] = frozenset()
    if isinstance(node, ast.Query):
        dead = analyzer.visit_query(node, env, collect_dead=True)
    elif isinstance(
        node, (ast.RelRef, ast.Selected, ast.Constructed, ast.QueryRange, ast.ApplyVar)
    ):
        analyzer.range_schema(node, env)
    elif isinstance(node, (ast.Branch,)):
        analyzer.visit_branch(node, env)
    else:
        analyzer.visit_pred(node, env)
    return AnalysisResult(diags, dead)


# ---------------------------------------------------------------------------
# Module (declaration) analysis
# ---------------------------------------------------------------------------


def analyze_module(module: astnodes.Module, scope: Scope) -> AnalysisResult:
    """Analyze a parsed declaration module against (a copy of) ``scope``.

    Declarations accumulate into the working scope as they are checked,
    so later declarations see earlier ones — mirroring ``Session.execute``.
    """
    diags = Diagnostics()
    work = scope.copy()
    # Constructors may be mutually recursive (ahead/above in the paper's
    # CAD module), so every signature is visible to every body.  Forward
    # signatures carry no result schema — the full one replaces them when
    # the declaration itself is checked.
    predeclared: set[str] = set()
    for decl in module.declarations:
        if (
            isinstance(decl, astnodes.ConstructorDecl)
            and decl.name not in work.constructors
            and decl.name not in predeclared
        ):
            work.constructors[decl.name] = ConstructorSig(
                decl.name, len(decl.params), None
            )
            predeclared.add(decl.name)
    for decl in module.declarations:
        if isinstance(decl, astnodes.TypeDecl):
            _check_type_decl(decl, work, diags)
        elif isinstance(decl, astnodes.VarDecl):
            _check_var_decl(decl, work, diags)
        elif isinstance(decl, astnodes.SelectorDecl):
            _check_selector_decl(decl, work, diags)
        elif isinstance(decl, astnodes.ConstructorDecl):
            _check_constructor_decl(decl, work, diags, predeclared)
    return AnalysisResult(diags)


#: Sentinel for declared-but-unresolvable types: suppresses cascades.
_UNKNOWN_TYPE = object()


def _named_type(name: str, scope: Scope, diags: Diagnostics, node) -> Type | None:
    """Resolve a type name; reports DBPL015 for undeclared names and
    returns None both for unknown and for declared-but-broken types."""
    found = scope.types.get(name)
    if found is None and name not in scope.types:
        diags.error("DBPL015", f"unknown type {name!r}", node=node)
    return found if isinstance(found, Type) else None


def _resolve_type_expr(texpr, name: str, scope: Scope, diags: Diagnostics):
    from ..types import EnumType, Field, RangeType

    if isinstance(texpr, astnodes.TypeName):
        return _named_type(texpr.name, scope, diags, texpr)
    if isinstance(texpr, astnodes.RangeTypeExpr):
        if texpr.lo > texpr.hi:
            diags.error(
                "DBPL016",
                f"RANGE {texpr.lo}..{texpr.hi} is empty (lower bound exceeds upper)",
                node=texpr,
            )
            return None
        return RangeType(name, texpr.lo, texpr.hi)
    if isinstance(texpr, astnodes.EnumTypeExpr):
        dup = _first_duplicate(texpr.labels)
        if dup is not None:
            diags.error(
                "DBPL022", f"enumeration label {dup!r} declared twice", node=texpr
            )
            return None
        return EnumType(name, texpr.labels)
    if isinstance(texpr, astnodes.RecordTypeExpr):
        fields: list[Field] = []
        seen: set[str] = set()
        ok = True
        for group in texpr.fields:
            ftype = _resolve_type_expr(group.type, f"{name}_field", scope, diags)
            for fname in group.names:
                if fname in seen:
                    diags.error(
                        "DBPL022",
                        f"record field {fname!r} declared twice",
                        node=group,
                    )
                    ok = False
                seen.add(fname)
                if ftype is None:
                    ok = False
                else:
                    fields.append(Field(fname, ftype))
        return RecordType(name, tuple(fields)) if ok and fields else None
    if isinstance(texpr, astnodes.RelationTypeExpr):
        element = _resolve_type_expr(texpr.element, f"{name}_rec", scope, diags)
        if element is None:
            return None
        if not isinstance(element, RecordType):
            diags.error(
                "DBPL021",
                f"relation type {name!r}: element must be a record type",
                node=texpr,
            )
            return None
        for attr in texpr.key:
            if not element.has_attribute(attr):
                diags.error(
                    "DBPL005",
                    f"key attribute {attr!r} is not a field of the element type",
                    node=texpr,
                )
                return None
        dup = _first_duplicate(texpr.key)
        if dup is not None:
            diags.error(
                "DBPL022", f"key attribute {dup!r} listed twice", node=texpr
            )
            return None
        return RelationType(name, element, texpr.key)
    return None


def _first_duplicate(items) -> str | None:
    seen: set[str] = set()
    for item in items:
        if item in seen:
            return item
        seen.add(item)
    return None


def _check_type_decl(decl: astnodes.TypeDecl, scope: Scope, diags: Diagnostics) -> None:
    resolved = _resolve_type_expr(decl.type, decl.name, scope, diags)
    # Register even failed resolutions so later references don't cascade.
    scope.types[decl.name] = resolved if resolved is not None else _UNKNOWN_TYPE


def _check_var_decl(decl: astnodes.VarDecl, scope: Scope, diags: Diagnostics) -> None:
    rtype = _named_type(decl.type.name, scope, diags, decl.type)
    if rtype is not None and not isinstance(rtype, RelationType):
        diags.error(
            "DBPL021",
            f"VAR {', '.join(decl.names)}: only relation-typed variables are "
            f"supported, got {rtype.name}",
            node=decl,
        )
        rtype = None
    for name in decl.names:
        if name in scope.relations:
            diags.error(
                "DBPL019", f"relation variable {name!r} is already declared", node=decl
            )
        elif isinstance(rtype, RelationType):
            scope.relations[name] = rtype


def _check_selector_decl(
    decl: astnodes.SelectorDecl, scope: Scope, diags: Diagnostics
) -> None:
    if decl.name in scope.selectors:
        diags.error(
            "DBPL019", f"selector {decl.name!r} is already defined", node=decl
        )
    rel_type = _named_type(decl.rel_type.name, scope, diags, decl.rel_type)
    if rel_type is not None and not isinstance(rel_type, RelationType):
        diags.error(
            "DBPL021",
            f"selector {decl.name}: FOR type must be a relation, got {rel_type.name}",
            node=decl.rel_type,
        )
        rel_type = None
    body = scope.copy()
    if isinstance(rel_type, RelationType):
        body.relations[decl.formal_rel] = rel_type
    for p in decl.params:
        ptype = _named_type(p.type.name, scope, diags, p.type)
        if isinstance(ptype, RelationType):
            body.relations[p.name] = ptype
        body.params[p.name] = ptype
    analyzer = _QueryAnalyzer(body, diags)
    element = rel_type.element if isinstance(rel_type, RelationType) else None
    env = TypeEnv({decl.var: element}, body.params)
    analyzer.visit_pred(decl.pred, env)
    scope.selectors[decl.name] = SelectorSig(decl.name, len(decl.params))


def _check_constructor_decl(
    decl: astnodes.ConstructorDecl,
    scope: Scope,
    diags: Diagnostics,
    predeclared: set[str] | None = None,
) -> None:
    predeclared = predeclared if predeclared is not None else set()
    if decl.name in scope.constructors and decl.name not in predeclared:
        diags.error(
            "DBPL019", f"constructor {decl.name!r} is already defined", node=decl
        )
    # The first full check consumes the forward signature: a second
    # declaration of the same name is a genuine duplicate.
    predeclared.discard(decl.name)
    rel_type = _named_type(decl.rel_type.name, scope, diags, decl.rel_type)
    result_type = _named_type(decl.result_type.name, scope, diags, decl.result_type)
    for label, found, node in (
        ("FOR", rel_type, decl.rel_type),
        ("result", result_type, decl.result_type),
    ):
        if found is not None and not isinstance(found, RelationType):
            diags.error(
                "DBPL021",
                f"constructor {decl.name}: {label} type must be a relation, "
                f"got {found.name}",
                node=node,
            )
    rel_type = rel_type if isinstance(rel_type, RelationType) else None
    result_type = result_type if isinstance(result_type, RelationType) else None

    body = scope.copy()
    if rel_type is not None:
        body.relations[decl.formal_rel] = rel_type
    relation_params: set[str] = set()
    for p in decl.params:
        ptype = _named_type(p.type.name, scope, diags, p.type)
        if isinstance(ptype, RelationType):
            body.relations[p.name] = ptype
            relation_params.add(p.name)
        body.params[p.name] = ptype
    # Register the signature before the body so recursion resolves.
    sig = ConstructorSig(
        decl.name,
        len(decl.params),
        result_type.element if result_type is not None else None,
    )
    body.constructors[decl.name] = sig
    scope.constructors[decl.name] = sig

    _check_constructor_shape(decl, rel_type, result_type, diags)
    _check_positivity(decl, relation_params, diags)

    analyzer = _QueryAnalyzer(body, diags)
    analyzer.visit_query(decl.body, TypeEnv(param_types=body.params))


def _check_constructor_shape(
    decl: astnodes.ConstructorDecl,
    rel_type: RelationType | None,
    result_type: RelationType | None,
    diags: Diagnostics,
) -> None:
    result = result_type.element if result_type is not None else None
    for branch in decl.body.branches:
        if branch.targets is None:
            if len(branch.bindings) != 1:
                diags.error(
                    "DBPL018",
                    "identity branches must bind exactly one variable",
                    node=branch,
                )
                continue
            rng = branch.bindings[0].range
            if (
                result is not None
                and rel_type is not None
                and isinstance(rng, ast.RelRef)
                and rng.name == decl.formal_rel
                and not rel_type.element.positionally_compatible(result)
            ):
                diags.error(
                    "DBPL018",
                    f"base element type {rel_type.element.name} is not "
                    f"positionally compatible with result {result.name}",
                    node=branch,
                )
        elif result is not None and len(branch.targets) != result.arity:
            diags.error(
                "DBPL017",
                f"target list has {len(branch.targets)} item(s), result type "
                f"{result.name} has arity {result.arity}",
                node=branch,
            )


def _check_positivity(
    decl: astnodes.ConstructorDecl, relation_params: set[str], diags: Diagnostics
) -> None:
    """DBPL020: the section 3.3 compile-time rejection, as a diagnostic."""
    from ..constructors.positivity import _constructed_occurrences

    names: set[object] = {decl.formal_rel} | relation_params
    violations = list(positivity_violations(decl.body, names))
    violations.extend(
        occ for occ in _constructed_occurrences(decl.body) if not occ.positive
    )
    for occ in violations:
        span = span_of(occ.node) if occ.node is not None else span_of(decl)
        self_name = occ.name if isinstance(occ.name, str) else str(occ.name)
        diags.error(
            "DBPL020",
            f"constructor {decl.name}: {self_name!r} occurs under "
            f"{occ.nots} NOT(s) and {occ.alls} ALL(s) — an odd total "
            "violates the positivity constraint (section 3.3)",
            span=span if span is not None else span_of(decl),
        )
