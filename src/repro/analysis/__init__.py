"""Static semantic analysis for DBPL / Datalog / constructor programs.

Layout:

* :mod:`.diagnostics` — ``Span`` / ``Diagnostic`` / ``Diagnostics``, the
  engine every check reports through (imported eagerly; the DBPL parser
  depends on it for span attachment).
* :mod:`.typeflow` — term typing and tri-state predicate folding over
  the calculus AST.
* :mod:`.checks` — the DBPL-surface check registry (``analyze_query``,
  ``analyze_module``) plus the structured positivity pass.
* :mod:`.rules` — Datalog program analysis: range-restriction safety,
  stratification, unsafe negation, arity consistency.

``checks``/``typeflow``/``rules`` are loaded lazily (PEP 562): the DBPL
parser imports this package while those modules import the parser's AST,
and laziness breaks the cycle.
"""

from __future__ import annotations

from ..errors import AnalysisError, DatalogAnalysisError
from .diagnostics import (
    SEVERITIES,
    Diagnostic,
    Diagnostics,
    Span,
    copy_span,
    set_span,
    span_of,
)

__all__ = [
    "SEVERITIES",
    "AnalysisError",
    "AnalysisResult",
    "DatalogAnalysisError",
    "Diagnostic",
    "Diagnostics",
    "Scope",
    "Span",
    "analyze_datalog",
    "analyze_module",
    "analyze_query",
    "copy_span",
    "set_span",
    "span_of",
]

_LAZY = {
    "AnalysisResult": ".checks",
    "Scope": ".checks",
    "analyze_module": ".checks",
    "analyze_query": ".checks",
    "analyze_datalog": ".rules",
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target, __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
