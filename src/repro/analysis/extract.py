"""Extract embedded DBPL/Datalog source from Python files and analyze it.

Example scripts and test modules embed DBPL programs as string literals
passed to ``session.execute(...)`` / ``session.query(...)`` /
``session.prepare(...)`` / ``session.check(...)`` and Datalog programs
passed to ``parse_program(...)`` / ``parse_atom(...)``.  This module
walks a Python file with the stdlib ``ast`` module, pulls those literals
out together with their position, runs the static analyzer over each in
declaration order (so later queries see relations declared by earlier
``execute`` snippets), and re-anchors every diagnostic span to the
*host* file — which is what lets CI point at ``examples/dbpl_tour.py:40``
rather than "line 3 of some string".

Only plain string literals are extracted; formatted or concatenated
sources are skipped (their text is not statically known).
"""

from __future__ import annotations

import ast as pyast
from dataclasses import dataclass, field

from ..errors import DBPLError, DBPLSyntaxError
from .diagnostics import Diagnostic, Diagnostics, Span

#: Method names whose first string argument is DBPL source.
_DBPL_METHODS = {"execute", "query", "prepare", "check"}
#: Function names whose first string argument is Datalog source.
_DATALOG_FUNCS = {"parse_program", "parse_atom"}


@dataclass(frozen=True)
class Snippet:
    """One embedded program: its text and where it sits in the host file."""

    kind: str  # "dbpl" | "datalog"
    call: str  # the call that received it (execute, query, parse_program, ...)
    source: str
    line: int  # host-file line of the literal's first content character
    column: int  # host-file column of same (1-based)

    def shift(self, span: Span | None) -> Span | None:
        """Re-anchor a snippet-relative span into host-file coordinates."""
        if span is None or span.is_zero:
            return span
        return span.shifted(self.line - 1, self.column - 1)


def _content_offset(segment: str | None) -> int:
    """Columns past the literal's start where the content begins.

    ``segment`` is the literal as written: prefix letters plus the
    opening quote run (1 or 3 quote characters).  A triple-quoted
    literal opening with a newline needs no line adjustment — the
    snippet's own line counter already ticks past it.
    """
    if not segment:
        return 0
    i = 0
    while i < len(segment) and segment[i] not in "\"'":
        i += 1  # string prefix letters (r, b, f, u)
    run = 3 if segment[i : i + 3] in ('"""', "'''") else 1
    return i + run


def extract_snippets(text: str, filename: str = "<string>") -> list[Snippet]:
    """All embedded DBPL/Datalog literals in ``text``, in source order."""
    tree = pyast.parse(text, filename=filename)
    out: list[Snippet] = []
    for node in pyast.walk(tree):
        if not isinstance(node, pyast.Call) or not node.args:
            continue
        func = node.func
        if isinstance(func, pyast.Attribute) and func.attr in _DBPL_METHODS:
            kind, call = "dbpl", func.attr
        else:
            name = func.attr if isinstance(func, pyast.Attribute) else (
                func.id if isinstance(func, pyast.Name) else None
            )
            if name not in _DATALOG_FUNCS:
                continue
            kind, call = "datalog", name
        arg = node.args[0]
        if not isinstance(arg, pyast.Constant) or not isinstance(arg.value, str):
            continue
        segment = pyast.get_source_segment(text, arg)
        col0 = _content_offset(segment)
        out.append(
            Snippet(kind, call, arg.value, arg.lineno, arg.col_offset + col0 + 1)
        )
    out.sort(key=lambda s: (s.line, s.column))
    return out


@dataclass
class FileReport:
    """Analyzer verdict for one host file."""

    path: str
    diagnostics: list[tuple[Snippet, Diagnostic]] = field(default_factory=list)

    @property
    def has_errors(self) -> bool:
        return any(d.severity == "error" for _, d in self.diagnostics)

    def render(self) -> list[str]:
        lines = []
        for snippet, diag in self.diagnostics:
            span = snippet.shift(diag.span)
            where = f"{self.path}:{span}" if span else self.path
            lines.append(f"{where}: {diag.code} {diag.severity}: {diag.message}")
        return lines


def analyze_file(path: str, text: str | None = None) -> FileReport:
    """Extract and analyze every embedded program in one Python file.

    DBPL snippets run through a throwaway :class:`~repro.dbpl.session.Session`
    in lint mode, in order — ``execute`` snippets are also *bound* so the
    relations, selectors, and constructors they declare are in scope for
    the queries that follow, exactly as they are when the file runs.
    """
    from ..datalog.parser import parse_atom, parse_program
    from ..dbpl.session import Session
    from .rules import analyze_datalog

    if text is None:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    report = FileReport(path)
    session = Session(analysis="lint")
    for snippet in extract_snippets(text, filename=path):
        if snippet.kind == "dbpl":
            diags = session.check(snippet.source)
            if snippet.call == "execute" and not diags.has_errors:
                try:
                    session.execute(snippet.source)
                except DBPLError:
                    pass  # binder-only failure; analysis already reported
        else:
            diags = Diagnostics()
            try:
                if snippet.call == "parse_atom":
                    parse_atom(snippet.source)
                else:
                    diags = analyze_datalog(parse_program(snippet.source))
            except DBPLSyntaxError as exc:
                diags.error(
                    "DBPL000",
                    f"syntax error: {exc}",
                    span=Span(exc.line, exc.column),
                )
        report.diagnostics.extend((snippet, diag) for diag in diags)
    return report


__all__ = ["Snippet", "FileReport", "extract_snippets", "analyze_file"]
