"""Command-line analyzer: ``python -m repro.analysis FILE [FILE ...]``.

Each argument is either a Python file with embedded DBPL/Datalog
literals (``.py`` — extracted via :mod:`repro.analysis.extract`), a
``.dbpl`` file of declarations, or a ``.dl`` Datalog program.  Prints
one line per diagnostic, anchored to the host file, and exits non-zero
iff any error-severity diagnostic was reported — warnings and hints are
informational, so a clean corpus stays clean under new lint rules.

    $ PYTHONPATH=src python -m repro.analysis examples/*.py
"""

from __future__ import annotations

import sys

from .extract import FileReport, Snippet, analyze_file


def _analyze_plain(path: str, kind: str) -> FileReport:
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    from ..errors import DBPLSyntaxError
    from .diagnostics import Diagnostics, Span

    report = FileReport(path)
    snippet = Snippet(kind, "file", text, 1, 1)
    diags = Diagnostics()
    if kind == "datalog":
        from ..datalog.parser import parse_program
        from .rules import analyze_datalog

        try:
            diags = analyze_datalog(parse_program(text))
        except DBPLSyntaxError as exc:
            diags.error(
                "DBPL000", f"syntax error: {exc}", span=Span(exc.line, exc.column)
            )
    else:
        from ..dbpl.session import Session

        diags = Session(analysis="lint").check(text)
    report.diagnostics.extend((snippet, diag) for diag in diags)
    return report


def main(argv: list[str] | None = None) -> int:
    paths = sys.argv[1:] if argv is None else argv
    if not paths:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        return 2
    failed = False
    total = 0
    for path in paths:
        if path.endswith(".py"):
            report = analyze_file(path)
        elif path.endswith(".dl"):
            report = _analyze_plain(path, "datalog")
        else:
            report = _analyze_plain(path, "dbpl")
        for line in report.render():
            print(line)
        total += len(report.diagnostics)
        failed = failed or report.has_errors
    status = "FAIL" if failed else "OK"
    print(f"{status}: {len(paths)} file(s), {total} diagnostic(s)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
