"""Predicate type-flow and constant-folding analysis.

The calculus shares one logic between the type level and the expression
level (paper, section 2): every comparison ``r.back = b.front`` is also a
typing judgment — its operands must come from comparable scalar families.
This module computes that judgment statically, plus the constant facts
that fall out of it:

* :func:`term_type` — the scalar :class:`~repro.types.Type` of a term
  under a variable/parameter typing environment (None when unknown);
* :func:`comparable` — whether two inferred types may meet in one
  comparison (unknowns and the ``ANY`` bridge domain compare with all);
* :func:`fold_pred` — tri-state evaluation (True / False / None) of a
  predicate: const⊗const comparisons, syntactically-identical operands
  (``t = t``), domain membership of constants against enum/subrange
  attribute types, and the And/Or/Not lattice over those;
* :func:`conjunction_contradictions` — interval analysis over the
  constant bounds a conjunction puts on each attribute (``x > 5 AND
  x < 3`` is provably empty even though no single conjunct folds).

Everything here is pure: no database access, no exceptions for user
errors — callers turn the returned facts into diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..calculus import ast
from ..types import BOOLEAN, INTEGER, REAL, STRING, EnumType, RangeType, RecordType, Type

# ---------------------------------------------------------------------------
# Typing environment
# ---------------------------------------------------------------------------


class TypeEnv:
    """Maps tuple variables to their element record types and scalar
    parameters to their declared types (both optionally unknown)."""

    def __init__(
        self,
        var_schemas: dict[str, RecordType] | None = None,
        param_types: dict[str, Type] | None = None,
    ) -> None:
        self.var_schemas = dict(var_schemas or {})
        self.param_types = dict(param_types or {})

    def child(self, more_vars: dict[str, RecordType]) -> "TypeEnv":
        merged = dict(self.var_schemas)
        merged.update(more_vars)
        return TypeEnv(merged, self.param_types)

    def schema_of(self, var: str) -> RecordType | None:
        return self.var_schemas.get(var)


# ---------------------------------------------------------------------------
# Term typing
# ---------------------------------------------------------------------------


def const_type(value: object) -> Type:
    """The atomic type of a Python literal (bool before int!)."""
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, float):
        return REAL
    return STRING


def term_type(term: ast.Term, env: TypeEnv) -> Type | None:
    """The scalar type of ``term``, or None when it cannot be inferred."""
    if isinstance(term, ast.Const):
        return const_type(term.value)
    if isinstance(term, ast.AttrRef):
        schema = env.schema_of(term.var)
        if schema is not None and schema.has_attribute(term.attr):
            return schema.field_type(term.attr)
        return None
    if isinstance(term, ast.ParamRef):
        return env.param_types.get(term.name)
    if isinstance(term, ast.Arith):
        # Arithmetic is numeric-in / numeric-out; operand families are
        # checked where the comparison diagnostics run.
        return INTEGER
    # VarRef (whole tuples) and TupleCons have record-like values.
    return None


def comparable(a: Type | None, b: Type | None) -> bool:
    """May values of ``a`` and ``b`` meet in one comparison?

    Unknown types and the universal ``ANY`` domain (Datalog bridge)
    compare with everything — the analyzer only reports what it can
    prove wrong.
    """
    if a is None or b is None:
        return True
    fa, fb = a.family(), b.family()
    if fa == "any" or fb == "any":
        return True
    return fa == fb


# ---------------------------------------------------------------------------
# Constant folding
# ---------------------------------------------------------------------------

_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "DIV": lambda a, b: a // b,
    "MOD": lambda a, b: a % b,
}

_CMP = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def const_value(term: ast.Term) -> tuple[bool, object]:
    """``(True, value)`` when ``term`` folds to a constant, else ``(False, None)``."""
    if isinstance(term, ast.Const):
        return True, term.value
    if isinstance(term, ast.Arith):
        lk, lv = const_value(term.left)
        rk, rv = const_value(term.right)
        if lk and rk and isinstance(lv, (int, float)) and isinstance(rv, (int, float)):
            try:
                return True, _ARITH[term.op](lv, rv)
            except (ZeroDivisionError, KeyError):
                return False, None
    return False, None


def _fold_cmp(op: str, left: object, right: object) -> bool | None:
    if type(left) is bool or type(right) is bool:
        if type(left) is not type(right) and op in ("<", "<=", ">", ">="):
            return None
    try:
        return bool(_CMP[op](left, right))
    except TypeError:
        return None


#: Reflexive comparisons: ``t op t`` for deterministic terms.
_REFLEXIVE = {"=": True, "<=": True, ">=": True, "<>": False, "<": False, ">": False}


def fold_pred(pred: ast.Pred, env: TypeEnv) -> bool | None:
    """Tri-state static value of ``pred``: True, False, or None (unknown)."""
    if isinstance(pred, ast.TruePred):
        return True
    if isinstance(pred, ast.Cmp):
        lk, lv = const_value(pred.left)
        rk, rv = const_value(pred.right)
        if lk and rk:
            return _fold_cmp(pred.op, lv, rv)
        if pred.left == pred.right:
            return _REFLEXIVE.get(pred.op)
        # constant vs enum/subrange attribute: domain membership
        folded = _fold_domain(pred, env)
        if folded is not None:
            return folded
        return None
    if isinstance(pred, ast.Not):
        inner = fold_pred(pred.pred, env)
        return None if inner is None else not inner
    if isinstance(pred, ast.And):
        values = [fold_pred(p, env) for p in pred.parts]
        if any(v is False for v in values):
            return False
        if all(v is True for v in values):
            return True
        return None
    if isinstance(pred, ast.Or):
        values = [fold_pred(p, env) for p in pred.parts]
        if any(v is True for v in values):
            return True
        if all(v is False for v in values):
            return False
        return None
    return None  # Some/All/InRel need data


def _fold_domain(cmp: ast.Cmp, env: TypeEnv) -> bool | None:
    """Fold ``attr = const`` / ``attr <> const`` when the constant lies
    outside the attribute's declared enum/subrange domain."""
    for attr_side, const_side in ((cmp.left, cmp.right), (cmp.right, cmp.left)):
        known, value = const_value(const_side)
        if not known:
            continue
        atype = term_type(attr_side, env)
        if isinstance(atype, (EnumType, RangeType)) and not atype.contains(value):
            if cmp.op == "=":
                return False
            if cmp.op == "<>":
                return True
    return None


# ---------------------------------------------------------------------------
# Interval analysis over conjunctions
# ---------------------------------------------------------------------------


@dataclass
class _Bounds:
    """Accumulated constant constraints on one term."""

    lo: object = None
    lo_strict: bool = False
    hi: object = None
    hi_strict: bool = False
    eq: object = None
    has_eq: bool = False
    first_node: ast.Cmp | None = None
    nodes: list = field(default_factory=list)

    def _tighten_lo(self, value, strict: bool) -> None:
        if self.lo is None or value > self.lo or (value == self.lo and strict):
            self.lo, self.lo_strict = value, strict

    def _tighten_hi(self, value, strict: bool) -> None:
        if self.hi is None or value < self.hi or (value == self.hi and strict):
            self.hi, self.hi_strict = value, strict

    def add(self, op: str, value, node: ast.Cmp) -> str | None:
        """Fold one ``term op value`` constraint in; returns a
        contradiction message when the accumulated set became empty."""
        self.nodes.append(node)
        if self.first_node is None:
            self.first_node = node
        try:
            if op == "=":
                if self.has_eq and self.eq != value:
                    return f"equals both {self.eq!r} and {value!r}"
                self.eq, self.has_eq = value, True
                self._tighten_lo(value, False)
                self._tighten_hi(value, False)
            elif op in (">", ">="):
                self._tighten_lo(value, op == ">")
            elif op in ("<", "<="):
                self._tighten_hi(value, op == "<")
            else:
                return None  # '<>' never empties an interval on its own
            if self.lo is not None and self.hi is not None:
                if self.lo > self.hi or (
                    self.lo == self.hi and (self.lo_strict or self.hi_strict)
                ):
                    lo_op = ">" if self.lo_strict else ">="
                    hi_op = "<" if self.hi_strict else "<="
                    return f"requires {lo_op} {self.lo!r} and {hi_op} {self.hi!r}"
        except TypeError:
            return None  # mixed-type bounds: type-flow check reports those
        return None


def _bound_key(term: ast.Term):
    if isinstance(term, ast.AttrRef):
        return ("attr", term.var, term.attr)
    if isinstance(term, ast.ParamRef):
        return ("param", term.name)
    return None


def conjunction_contradictions(
    parts: tuple[ast.Pred, ...], env: TypeEnv
) -> list[tuple[ast.Cmp, str]]:
    """Provably-empty constant intervals implied by a conjunction.

    Returns ``(witness_node, message)`` pairs — one per contradicted
    term, anchored at the comparison that closed the interval.
    """
    bounds: dict[tuple, _Bounds] = {}
    findings: list[tuple[ast.Cmp, str]] = []
    dead: set[tuple] = set()
    for part in parts:
        if not isinstance(part, ast.Cmp):
            continue
        for term_side, const_side, op in (
            (part.left, part.right, part.op),
            (part.right, part.left, _FLIP.get(part.op, part.op)),
        ):
            key = _bound_key(term_side)
            if key is None or key in dead:
                continue
            known, value = const_value(const_side)
            if not known or isinstance(value, bool):
                continue
            message = bounds.setdefault(key, _Bounds()).add(op, value, part)
            if message is not None:
                findings.append((part, f"{_key_text(key)} {message}"))
                dead.add(key)
            break  # a Cmp constrains through one orientation only
    return findings


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _key_text(key: tuple) -> str:
    if key[0] == "attr":
        return f"{key[1]}.{key[2]}"
    return key[1]
