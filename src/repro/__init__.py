"""repro — Data Constructors: rules integrated with typed relations.

A from-scratch reproduction of Jarke, Linnemann & Schmidt,
"Data Constructors: On the Integration of Rules and Relations"
(VLDB 1985).  See DESIGN.md for the system inventory and EXPERIMENTS.md
for the experiment index.

The curated public API is re-exported here; subpackages remain importable
for power users.
"""

from .errors import (
    ArityError,
    BindingError,
    ConvergenceError,
    DBPLError,
    DBPLSyntaxError,
    EvaluationError,
    IntegrityError,
    KeyConstraintError,
    NameResolutionError,
    PositivityError,
    SchemaError,
    TranslationError,
    TypeMismatchError,
)
from .constructors import (
    ConstructionResult,
    Constructor,
    apply_constructor,
    construct,
    construct_bounded,
    define_constructor,
)
from .compiler.options import ExecOptions
from .relational import Database, Relation, Row
from .selectors import Parameter, SelectedRelation, Selector, define_selector, selected
from .types import (
    ANY,
    BOOLEAN,
    CARDINAL,
    INTEGER,
    REAL,
    STRING,
    EnumType,
    Field,
    RangeType,
    RecordType,
    RelationType,
    record,
    relation_type,
)

__version__ = "1.0.0"

__all__ = [
    "ANY",
    "ArityError",
    "BOOLEAN",
    "BindingError",
    "CARDINAL",
    "ConstructionResult",
    "Constructor",
    "Parameter",
    "SelectedRelation",
    "Selector",
    "apply_constructor",
    "construct",
    "construct_bounded",
    "define_constructor",
    "define_selector",
    "selected",
    "ConvergenceError",
    "DBPLError",
    "DBPLSyntaxError",
    "Database",
    "EnumType",
    "EvaluationError",
    "ExecOptions",
    "Field",
    "INTEGER",
    "IntegrityError",
    "KeyConstraintError",
    "NameResolutionError",
    "PositivityError",
    "REAL",
    "RangeType",
    "RecordType",
    "Relation",
    "RelationType",
    "Row",
    "STRING",
    "SchemaError",
    "TranslationError",
    "TypeMismatchError",
    "record",
    "relation_type",
]
