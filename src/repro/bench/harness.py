"""Experiment harness: timed sweeps rendered as aligned text tables.

The paper reports no numbers, so EXPERIMENTS.md reports *shapes*: who
wins, by what factor, where the crossovers fall.  Every benchmark file in
``benchmarks/`` builds its sweep through this harness, and
``python -m repro.bench.run_all`` regenerates every table for the
documentation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


def measure(fn, repeat: int = 1):
    """Run ``fn`` ``repeat`` times; return (last result, best seconds)."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return result, best


@dataclass
class Table:
    """An aligned text table with a title and typed-ish columns.

    ``metrics`` holds machine-readable scalars (wall-clocks, scanned-row
    counters, speedup factors) that ``repro.bench.run_all`` serializes
    into the per-experiment ``BENCH_<id>.json`` artifacts the CI
    bench-gate compares against committed baselines.
    """

    title: str
    columns: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    metrics: dict[str, float] = field(default_factory=dict)

    def add(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def metric(self, name: str, value: float) -> None:
        """Record one machine-readable scalar for the bench-gate."""
        self.metrics[name] = float(value)

    @staticmethod
    def _fmt(value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 100:
                return f"{value:.0f}"
            if abs(value) >= 1:
                return f"{value:.2f}"
            return f"{value:.4f}"
        return str(value)

    def render(self) -> str:
        cells = [[self._fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(col), *(len(row[i]) for row in cells)) if cells else len(col)
            for i, col in enumerate(self.columns)
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - display
        return self.render()


def ratio(slow: float, fast: float) -> float:
    """A speedup factor that tolerates zero denominators."""
    if fast <= 0:
        return float("inf")
    return slow / fast
