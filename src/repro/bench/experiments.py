"""The thirteen reproduction experiments (see DESIGN.md section 4).

Each ``eNN_*`` function runs one experiment sweep and returns a
:class:`~repro.bench.harness.Table`.  The benchmark files under
``benchmarks/`` wrap representative points with pytest-benchmark and
regenerate these tables; ``python -m repro.bench.run_all`` renders all of
them for EXPERIMENTS.md.

The paper reports no absolute numbers, so each table is designed to make
a *shape* visible — who wins, by what factor, where crossovers fall —
and the accompanying assertion-style checks (result equality across
engines) run inside the sweeps themselves.
"""

from __future__ import annotations

from .. import paper
from ..calculus import Evaluator, dsl as d
from ..compiler import (
    ExecutionContext,
    LogicalAccessPath,
    PhysicalAccessPath,
    PlanStats,
    ShardConfig,
    SpecializedStats,
    bound_query,
    build_interconnectivity_graph,
    compile_fixpoint,
    compile_query,
    construct_compiled,
    detect_linear_tc,
    inline_nonrecursive,
    run_query,
)
from ..constructors import (
    apply_constructor,
    construct_bounded,
    define_constructor,
    instantiate,
)
from ..datalog import DatalogEngine, parse_atom, parse_program, system_to_program
from ..dbpl import Session
from ..errors import ConvergenceError, DBPLError, IntegrityError, PositivityError
from ..prolog import DepthLimitExceeded, KnowledgeBase, SLDEngine, TabledEngine
from ..relational import Database
from ..selectors import selected
from ..workloads import (
    binary_tree,
    bom_database,
    chain,
    cycle,
    generate_bom,
    generate_scene,
    grid,
    random_digraph,
    sg_database,
    generate_family,
)
from .harness import Table, measure, ratio

TC_PROGRAM = parse_program(
    """
    ahead(X, Y) :- infront(X, Y).
    ahead(X, Y) :- infront(X, Z), ahead(Z, Y).
    """
)


def _tc_db(edges) -> Database:
    return paper.cad_database(infront=edges, mutual=False)


# ---------------------------------------------------------------------------
# E1 — selectors (Fig. 1)
# ---------------------------------------------------------------------------


def e01_selectors(sizes=(2, 8, 16)) -> Table:
    table = Table(
        "E1  Selector semantics and checked assignment (Fig. 1)",
        ["rooms", "|Infront|", "read sel (s)", "checked ok (s)", "checked reject (s)",
         "equiv"],
    )
    for rooms in sizes:
        scene = generate_scene(rooms=rooms, row_length=6)
        db = scene.database(mutual=False)
        target = scene.infront[0][0]
        view = selected(db, "Infront", "hidden_by", target)
        read_rows, t_read = measure(view.value, repeat=3)

        # equivalence with the expansion {EACH r IN Infront: r.front = obj}
        q = d.query(
            d.branch(d.each("r", "Infront"), pred=d.eq(d.a("r", "front"), target))
        )
        equiv = Evaluator(db).eval_query(q) == read_rows

        refint = selected(db, "Infront", "refint")
        good = list(db["Infront"].rows())
        _, t_ok = measure(lambda: refint.assign(good))
        bad = good + [("ghost", good[0][0])]

        def rejected():
            try:
                refint.assign(bad)
            except IntegrityError:
                return True
            return False

        ok, t_reject = measure(rejected)
        table.add(rooms, len(scene.infront), t_read, t_ok, t_reject, equiv and ok)
    table.note("equiv: Rel[sel] equals its conditional-assignment expansion")
    return table


# ---------------------------------------------------------------------------
# E2 — constructor basics (Fig. 2, ahead_2)
# ---------------------------------------------------------------------------


def e02_constructor_basics(sizes=(2, 8, 32)) -> Table:
    table = Table(
        "E2  ahead_2 constructor vs explicit union expression (Fig. 2)",
        ["rooms", "|Infront|", "|ahead2|", "constructor (s)", "expression (s)", "equal"],
    )
    for rooms in sizes:
        db = generate_scene(rooms=rooms, row_length=6).database(mutual=False)
        res, t_con = measure(lambda: apply_constructor(db, "Infront", "ahead2"), repeat=3)
        q = d.query(
            d.branch(d.each("r", "Infront")),
            d.branch(
                d.each("f", "Infront"), d.each("b", "Infront"),
                pred=d.eq(d.a("f", "back"), d.a("b", "front")),
                targets=[d.a("f", "front"), d.a("b", "back")],
            ),
        )
        rows, t_expr = measure(lambda: Evaluator(db).eval_query(q), repeat=3)
        table.add(rooms, len(db["Infront"]), len(res.rows), t_con, t_expr,
                  res.rows == rows)
    return table


# ---------------------------------------------------------------------------
# E3 — LFP convergence: ahead = lim ahead_n (section 3.1)
# ---------------------------------------------------------------------------


def e03_lfp_convergence() -> Table:
    table = Table(
        "E3  Infront{ahead} = lim ahead_n: convergence of the bounded sequence",
        ["workload", "edges", "|closure|", "iters naive", "iters semi", "loop=engine"],
    )
    workloads = [
        ("chain(32)", chain(32)),
        ("chain(64)", chain(64)),
        ("tree(d=7)", binary_tree(7)),
        ("grid(6x6)", grid(6, 6)),
        ("cycle(48)", cycle(48)),
    ]
    for name, edges in workloads:
        db = _tc_db(edges)
        naive = apply_constructor(db, "Infront", "ahead", mode="naive")
        semi = apply_constructor(db, "Infront", "ahead", mode="seminaive")
        # the paper's REPEAT/UNTIL program
        base = db["Infront"].rows()
        ahead: set = set()
        while True:
            old = set(ahead)
            ahead = set(base) | {(f, t) for (f, b) in base for (h, t) in old if b == h}
            if ahead == old:
                break
        table.add(name, len(edges), len(naive.rows), naive.stats.iterations,
                  semi.stats.iterations, ahead == set(naive.rows) == set(semi.rows))
    table.note("bounded prefixes are monotone; limit reached after finitely many steps")
    return table


# ---------------------------------------------------------------------------
# E4 — mutual recursion (section 3.1)
# ---------------------------------------------------------------------------


def e04_mutual_recursion(sizes=(2, 5, 8)) -> Table:
    table = Table(
        "E4  Mutually recursive ahead/above: simultaneous fixpoint",
        ["rooms", "|Infront|", "|Ontop|", "|ahead|", "|above|",
         "naive (s)", "semi (s)", "agree"],
    )
    for rooms in sizes:
        scene = generate_scene(rooms=rooms, row_length=5, stack_height=3)
        db = scene.database(mutual=True)
        res_n, t_n = measure(
            lambda: apply_constructor(db, "Infront", "ahead", "Ontop", mode="naive")
        )
        res_s, t_s = measure(
            lambda: apply_constructor(db, "Infront", "ahead", "Ontop", mode="seminaive")
        )
        above = apply_constructor(db, "Ontop", "above", "Infront")
        table.add(rooms, len(scene.infront), len(scene.ontop), len(res_n.rows),
                  len(above.rows), t_n, t_s, res_n.rows == res_s.rows)
    return table


# ---------------------------------------------------------------------------
# E5 — formal semantics (section 3.2)
# ---------------------------------------------------------------------------


def e05_semantics() -> Table:
    table = Table(
        "E5  The bounded sequence apply^k is monotone and reaches the LFP",
        ["k", "|apply^k| chain(12)", "|apply^k| grid(4x4)", "monotone so far"],
    )
    db1 = _tc_db(chain(12))
    db2 = _tc_db(grid(4, 4))
    node = d.constructed("Infront", "ahead")
    prev1 = prev2 = -1
    monotone = True
    for k in range(0, 14, 2):
        n1 = len(construct_bounded(db1, node, k).rows)
        n2 = len(construct_bounded(db2, node, k).rows)
        monotone = monotone and n1 >= prev1 and n2 >= prev2
        prev1, prev2 = n1, n2
        table.add(k, n1, n2, monotone)
    full = len(apply_constructor(db1, "Infront", "ahead").rows)
    table.note(f"limit on chain(12): {full} tuples; fixpoint f(lfp)=lfp verified in tests")
    return table


# ---------------------------------------------------------------------------
# E6 — positivity and convergence (section 3.3)
# ---------------------------------------------------------------------------


def e06_positivity() -> Table:
    table = Table(
        "E6  Positivity: compiler verdicts and iteration behaviour",
        ["constructor", "positivity check", "override iteration", "result"],
    )
    # ahead: accepted
    db = paper.cad_database(infront=chain(8), mutual=False)
    table.add("ahead", "accepted", "converges",
              f"{len(apply_constructor(db, 'Infront', 'ahead').rows)} tuples")
    # nonsense: rejected; oscillates under override
    db2 = Database()
    db2.declare("Base", paper.CARDREL, [(i,) for i in range(3)])
    try:
        paper.define_nonsense(db2, check_positivity=True)
        verdict = "accepted (BUG)"
    except PositivityError:
        verdict = "rejected"
    paper.define_nonsense(db2, check_positivity=False)
    try:
        apply_constructor(db2, "Base", "nonsense", allow_nonmonotonic=True)
        behaviour, outcome = "converges (BUG)", "?"
    except ConvergenceError:
        behaviour, outcome = "oscillation detected", "no limit"
    table.add("nonsense", verdict, behaviour, outcome)
    # strange: rejected; converges to {0,2,4,6} under override
    db3 = Database()
    db3.declare("Base", paper.CARDREL, [(i,) for i in range(7)])
    try:
        paper.define_strange(db3, check_positivity=True)
        verdict = "accepted (BUG)"
    except PositivityError:
        verdict = "rejected"
    paper.define_strange(db3, check_positivity=False)
    res = apply_constructor(db3, "Base", "strange", allow_nonmonotonic=True)
    values = sorted(v for (v,) in res.rows)
    table.add("strange", verdict, f"converges in {res.stats.iterations} iters",
              f"limit {values}")
    table.note("paper's worked limit for strange on {0..6} is [0, 2, 4, 6]")
    return table


# ---------------------------------------------------------------------------
# E7 — equivalence lemma (section 3.4)
# ---------------------------------------------------------------------------


def e07_equivalence() -> Table:
    table = Table(
        "E7  Constructors = function-free PROLOG: four engines, same answers",
        ["workload", "constructor", "datalog", "SLD", "tabled", "all equal"],
    )
    cases = [
        ("chain(24)", chain(24)),
        ("tree(d=5)", binary_tree(5)),
        ("random dag", [e for e in random_digraph(20, 40, seed=5)
                        if e[0] < e[1]]),
    ]
    for name, edges in cases:
        db = _tc_db(edges)
        system = instantiate(db, d.constructed("Infront", "ahead"))
        con = set(apply_constructor(db, "Infront", "ahead").rows)
        program, edb, root = system_to_program(db, system)
        dlg = set(DatalogEngine(program, edb).solve()[root])
        kb = KnowledgeBase.from_program(TC_PROGRAM, {"infront": edges})
        sld = SLDEngine(kb).all_answers(parse_atom("ahead(X, Y)"))
        tab = TabledEngine(kb).all_answers(parse_atom("ahead(X, Y)"))
        table.add(name, len(con), len(dlg), len(sld), len(tab),
                  con == dlg == sld == tab)
    # same-generation through the datalog->constructor direction
    family = generate_family(roots=2, depth=4, children=2)
    db_sg = sg_database(family)
    sg = apply_constructor(db_sg, "Sibling", "samegen", "Parent")
    table.note(f"same-generation via constructors: {len(sg.rows)} tuples "
               f"(non-linear recursion)")
    return table


# ---------------------------------------------------------------------------
# E8 — HEADLINE: set-oriented vs proof-oriented (sections 3.4, 4, 5)
# ---------------------------------------------------------------------------


def e08_set_vs_proof(quick: bool = False) -> Table:
    table = Table(
        "E8  All-pairs recursive query: set-construction vs proof-oriented",
        ["workload", "edges", "|closure|", "naive (s)", "semi (s)", "compiled (s)",
         "SLD (s)", "tabled (s)", "semi/SLD speedup"],
    )
    workloads = [
        ("chain(32)", chain(32)),
        ("chain(64)", chain(64)),
        ("tree(d=6)", binary_tree(6)),
        ("grid(4x4)", grid(4, 4)),
        ("cycle(32)", cycle(32)),
    ]
    if not quick:
        workloads.insert(2, ("chain(128)", chain(128)))
    goal = parse_atom("ahead(X, Y)")
    for name, edges in workloads:
        db = _tc_db(edges)
        if len(edges) <= 96:
            res_n, t_naive = measure(
                lambda: apply_constructor(db, "Infront", "ahead", mode="naive")
            )
            naive_cell: object = t_naive
        else:
            res_n, naive_cell = None, "-"  # interpreted naive is quadratic+
        res_s, t_semi = measure(
            lambda: apply_constructor(db, "Infront", "ahead", mode="seminaive")
        )
        res_c, t_comp = measure(
            lambda: construct_compiled(db, d.constructed("Infront", "ahead"))
        )
        kb = KnowledgeBase.from_program(TC_PROGRAM, {"infront": edges})

        def run_sld():
            try:
                return SLDEngine(kb, max_depth=2000).all_answers(goal)
            except DepthLimitExceeded:
                return None

        sld_rows, t_sld = measure(run_sld)
        tab_rows, t_tab = measure(lambda: TabledEngine(kb).all_answers(goal))
        agree = set(res_s.rows) == set(res_c.rows) == tab_rows
        if res_n is not None:
            agree = agree and set(res_n.rows) == set(res_s.rows)
        assert agree, f"engines disagree on {name}"
        sld_cell = f"{t_sld:.4f}" if sld_rows is not None else "loops"
        speedup = f"{ratio(t_sld, t_semi):.1f}x" if sld_rows is not None else "inf"
        table.add(name, len(edges), len(res_s.rows), naive_cell, t_semi, t_comp,
                  sld_cell, t_tab, speedup)
    table.note("SLD on cycles exceeds any depth budget: 'endless loops eliminated'")
    table.note("all engines verified to produce identical closures")
    return table


def e08b_point_query(quick: bool = False) -> Table:
    table = Table(
        "E8b Single-source point query: where proof-orientation pays off",
        ["workload", "full LFP (s)", "LFP+filter rows", "SLD point (s)",
         "tabled point (s)", "seeded BFS (s)"],
    )
    workloads = [("chain(64)", chain(64)), ("tree(d=7)", binary_tree(7))]
    if not quick:
        workloads.append(("chain(256)", chain(256)))
    for name, edges in workloads:
        db = _tc_db(edges)
        source = edges[0][0]
        res, t_full = measure(
            lambda: construct_compiled(db, d.constructed("Infront", "ahead"))
        )
        filtered = {r for r in res.rows if r[0] == source}
        kb = KnowledgeBase.from_program(TC_PROGRAM, {"infront": edges})
        goal = parse_atom(f"ahead({source}, Y)")
        sld_rows, t_sld = measure(lambda: SLDEngine(kb).all_answers(goal))
        tab_rows, t_tab = measure(lambda: TabledEngine(kb).all_answers(goal))
        system = instantiate(db, d.constructed("Infront", "ahead"))
        shape = detect_linear_tc(db, system)
        seed_rows, t_seed = measure(lambda: bound_query(db, shape, "head", source))
        assert filtered == sld_rows == tab_rows == seed_rows
        table.add(name, t_full, len(filtered), t_sld, t_tab, t_seed)
    table.note("goal-directed strategies beat the full LFP on selective queries —")
    table.note("the motivation for constraint propagation (E9) and capture rules (E13)")
    return table


# ---------------------------------------------------------------------------
# E9 — constraint propagation, Cases 1-3 (section 4)
# ---------------------------------------------------------------------------


def e09_pushdown(sizes=(4, 16, 48)) -> Table:
    table = Table(
        "E9  Cases 1-3: propagating restrictions into non-recursive bodies",
        ["rooms", "|Infront|", "materialize+filter (s)", "inlined compiled (s)",
         "speedup", "equal"],
    )
    for rooms in sizes:
        db = generate_scene(rooms=rooms, row_length=8).database(mutual=False)
        target = db["Infront"].sorted_rows()[0][0]
        query = d.query(
            d.branch(
                d.each("r", d.constructed("Infront", "ahead2")),
                pred=d.eq(d.a("r", "head"), target),
                targets=[d.a("r", "tail")],
            )
        )

        def materialize_then_filter():
            full = apply_constructor(db, "Infront", "ahead2").rows
            result_schema = paper.AHEADREC
            return {(r[1],) for r in full if r[0] == target}

        rows_slow, t_slow = measure(materialize_then_filter, repeat=3)

        def inlined():
            return run_query(db, inline_nonrecursive(db, query))

        rows_fast, t_fast = measure(inlined, repeat=3)
        table.add(rooms, len(db["Infront"]), t_slow, t_fast,
                  f"{ratio(t_slow, t_fast):.1f}x", rows_slow == rows_fast)
    table.note("Case 1 applies N1-N3, Case 2 substitutes target terms, Case 3 unions")
    return table


# ---------------------------------------------------------------------------
# E10 — augmented quant graphs (section 4, Fig. 3)
# ---------------------------------------------------------------------------


def e10_quantgraph(family_sizes=(2, 8, 24)) -> Table:
    table = Table(
        "E10 Augmented quant graphs: structure and compile-time cost",
        ["constructors", "nodes", "arcs", "components", "recursive heads",
         "build (s)"],
    )
    # Fig. 3 itself first
    db = paper.cad_database(mutual=False)
    from ..compiler import build_constructor_graph

    graph = build_constructor_graph(db, db.constructor("ahead"))
    table.add("Fig.3 ahead", len(graph.nodes), len(graph.arcs),
              len(graph.components()), len(graph.recursive_heads()), 0.0)

    for m in family_sizes:
        fam_db = Database("family")
        fam_db.declare("Base", paper.INFRONTREL, chain(4))
        # m constructors in a ring: c_i's recursive branch applies c_{i+1}
        for i in range(m):
            nxt = (i + 1) % m
            body = d.query(
                d.branch(d.each("r", "Rel")),
                d.branch(
                    d.each("f", "Rel"),
                    d.each("b", d.constructed("Rel", f"c{nxt}")),
                    pred=d.eq(d.a("f", "back"), d.a("b", "head")),
                    targets=[d.a("f", "front"), d.a("b", "tail")],
                ),
            )
            define_constructor(
                fam_db, f"c{i}", "Rel", paper.INFRONTREL, paper.AHEADREL, body
            )
        constructors = list(fam_db.constructors.values())
        graph, t_build = measure(
            lambda: build_interconnectivity_graph(fam_db, constructors)
        )
        table.add(f"ring of {m}", len(graph.nodes), len(graph.arcs),
                  len(graph.components()), len(graph.recursive_heads()), t_build)
    table.note("a ring of m constructors forms one component with m recursive heads")
    return table


# ---------------------------------------------------------------------------
# E11 — logical vs physical access paths (section 4, runtime level)
# ---------------------------------------------------------------------------


def e11_access_paths(query_counts=(1, 2, 8, 32)) -> Table:
    table = Table(
        "E11 Repeated parameterized queries: logical vs physical access paths",
        ["queries", "logical recompute (s)", "logical seeded (s)",
         "physical (s)", "winner"],
    )
    edges = chain(192)
    db = _tc_db(edges)
    constants = [f"n{i * 3}" for i in range(64)]
    node = d.constructed("Infront", "ahead")
    for count in query_counts:
        plain = LogicalAccessPath(db, node, "head", allow_specialization=False)
        _, t_plain = measure(
            lambda p=plain, n=count: [p.lookup(c) for c in constants[:n]]
        )
        seeded = LogicalAccessPath(db, node, "head")
        _, t_seeded = measure(
            lambda p=seeded, n=count: [p.lookup(c) for c in constants[:n]]
        )
        physical = PhysicalAccessPath(db, node, "head")
        _, t_physical = measure(
            lambda p=physical, n=count: [p.lookup(c) for c in constants[:n]]
        )
        best = min(
            ("logical recompute", t_plain),
            ("logical seeded", t_seeded),
            ("physical", t_physical),
            key=lambda kv: kv[1],
        )
        table.add(count, t_plain, t_seeded, t_physical, best[0])
    table.note("the plain logical path recomputes the LFP per call: physical wins")
    table.note("after one call; the seeded special case stays competitive throughout")
    return table


# ---------------------------------------------------------------------------
# E12 — range nesting and execution ablation (section 4, N1-N3)
# ---------------------------------------------------------------------------


def e12_range_nesting(sizes=(60, 240, 960)) -> Table:
    table = Table(
        "E12 Join execution: interpreted nested-loop vs compiled index plans",
        ["edges", "|join|", "reference (s)", "compiled (s)", "speedup", "equal"],
    )
    for n in sizes:
        edges = random_digraph(max(8, n // 8), n, seed=13)
        db = _tc_db(edges)
        q = d.query(
            d.branch(
                d.each("f", "Infront"), d.each("b", "Infront"),
                pred=d.eq(d.a("f", "back"), d.a("b", "front")),
                targets=[d.a("f", "front"), d.a("b", "back")],
            )
        )
        ref, t_ref = measure(lambda: Evaluator(db).eval_query(q))
        fast, t_fast = measure(lambda: run_query(db, q), repeat=3)
        table.add(len(edges), len(fast), t_ref, t_fast,
                  f"{ratio(t_ref, t_fast):.1f}x", ref == fast)
    table.note("N1-N3 rewrites are semantics-preserving (property-tested);")
    table.note("their payoff is early filtering, realized by the compiled plans")
    return table


# ---------------------------------------------------------------------------
# E13 — capture rules: bound-argument specialization (section 4)
# ---------------------------------------------------------------------------


def e13_specialization(sizes=(64, 256, 1024)) -> Table:
    table = Table(
        "E13 Bound-head recursive query: full LFP vs seeded traversal vs tabling",
        ["chain n", "full LFP (s)", "seeded (s)", "tabled (s)",
         "LFP/seeded", "edges touched"],
    )
    for n in sizes:
        edges = chain(n)
        db = _tc_db(edges)
        source = "n0"
        _, t_full = measure(
            lambda: construct_compiled(db, d.constructed("Infront", "ahead"))
        )
        system = instantiate(db, d.constructed("Infront", "ahead"))
        shape = detect_linear_tc(db, system)
        stats = SpecializedStats()
        seeded, t_seed = measure(lambda: bound_query(db, shape, "head", source, stats))
        kb = KnowledgeBase.from_program(TC_PROGRAM, {"infront": edges})
        goal = parse_atom(f"ahead({source}, Y)")
        tabled, t_tab = measure(lambda: TabledEngine(kb).all_answers(goal))
        assert seeded == tabled
        table.add(n, t_full, t_seed, t_tab, f"{ratio(t_full, t_seed):.0f}x",
                  stats.edges_touched)
    table.note("the detected shape is the paper's 'special case' capture rule;")
    table.note("seeded bottom-up matches goal-directed top-down on selectivity")
    return table


# ---------------------------------------------------------------------------
# E14 — cost-based query planning with table statistics
# ---------------------------------------------------------------------------


def e14_planner_cases():
    """The three skewed join workloads E14 compares optimizers on.

    Each query writes the *selective* relation last, so a syntactic
    (written-order) loop nest scans the large relation in full while the
    cost-based order starts from the restricted side.
    """
    cases = []

    bom_edges = generate_bom(assemblies=6, depth=5, fanout=3, seed=9)
    bom_db = bom_database(bom_edges)
    leaf = bom_edges[-1][1]
    cases.append((
        "BOM grandparents",
        bom_db,
        d.query(
            d.branch(
                d.each("c", "Contains"), d.each("p", "Contains"),
                pred=d.and_(
                    d.eq(d.a("c", "sub"), d.a("p", "part")),
                    d.eq(d.a("p", "sub"), leaf),
                ),
                targets=[d.a("c", "part"), d.a("p", "sub")],
            )
        ),
    ))

    scene = generate_scene(rooms=48, row_length=8)
    cases.append((
        "CAD gallery",
        scene.database(mutual=False),
        d.query(
            d.branch(
                d.each("f", "Infront"), d.each("b", "Infront"),
                d.each("o", "Objects"),
                pred=d.and_(
                    d.eq(d.a("f", "back"), d.a("b", "front")),
                    d.and_(
                        d.eq(d.a("o", "part"), d.a("b", "back")),
                        d.eq(d.a("o", "kind"), "cabinet"),
                    ),
                ),
                targets=[d.a("f", "front"), d.a("o", "part")],
            )
        ),
    ))

    family = generate_family(roots=3, depth=6, children=3, seed=4)
    person = family[0][0]
    cases.append((
        "genealogy siblings",
        sg_database(family),
        d.query(
            d.branch(
                d.each("px", "Parent"), d.each("py", "Parent"),
                pred=d.and_(
                    d.eq(d.a("px", "parent"), d.a("py", "parent")),
                    d.eq(d.a("py", "child"), person),
                ),
                targets=[d.a("px", "child"), d.a("py", "child")],
            )
        ),
    ))
    return cases


def e14_planner() -> Table:
    table = Table(
        "E14 Cost-based vs syntactic join ordering (statistics-driven planner)",
        ["workload", "|result|", "syntactic (s)", "cost (s)", "scan syn",
         "scan cost", "speedup", "equal"],
    )
    for name, db, query in e14_planner_cases():
        plan_syn = compile_query(db, query, optimizer="syntactic")
        plan_cost = compile_query(db, query, optimizer="cost")
        stats_syn, stats_cost = PlanStats(), PlanStats()
        rows_syn, t_syn = measure(
            lambda p=plan_syn, d_=db, s=stats_syn: p.execute(
                ExecutionContext(d_, stats=s)
            ),
            repeat=5,
        )
        rows_cost, t_cost = measure(
            lambda p=plan_cost, d_=db, s=stats_cost: p.execute(
                ExecutionContext(d_, stats=s)
            ),
            repeat=5,
        )
        table.add(name, len(rows_cost), t_syn, t_cost, stats_syn.rows_scanned // 5,
                  stats_cost.rows_scanned // 5, f"{ratio(t_syn, t_cost):.1f}x",
                  rows_syn == rows_cost)

    # The recursive variant: the same comparison inside the generated
    # differential fixpoint program (delta-driven vs written-order nests).
    bom_db = bom_database(generate_bom(assemblies=6, depth=5, fanout=3, seed=9))
    system = instantiate(bom_db, d.constructed("Contains", "explode"))
    prog_syn = compile_fixpoint(bom_db, system, optimizer="syntactic")
    prog_cost = compile_fixpoint(bom_db, system, optimizer="cost")
    vals_syn, t_syn = measure(prog_syn.run)
    vals_cost, t_cost = measure(prog_cost.run)
    table.add("BOM explode (fixpoint)", len(vals_cost[system.root]), t_syn, t_cost,
              prog_syn.plan_stats.rows_scanned, prog_cost.plan_stats.rows_scanned,
              f"{ratio(t_syn, t_cost):.1f}x",
              vals_syn[system.root] == vals_cost[system.root])
    table.metric("fixpoint_rows_scanned_cost", prog_cost.plan_stats.rows_scanned)
    table.metric(
        "fixpoint_scan_ratio",
        ratio(prog_syn.plan_stats.rows_scanned, prog_cost.plan_stats.rows_scanned),
    )

    # Estimation quality straight from the winning plan's explain().
    diff_branch = prog_cost.diff_plans[system.root].branches[0]
    last_step = diff_branch.steps[-1]
    actual = diff_branch.actual_rows[-1] / max(1, diff_branch.executions)
    table.note("plans carry estimates: explain() reports est vs act per step, e.g. "
               f"differential inner step est~{last_step.est_cumulative:.1f} "
               f"act~{actual:.1f} per iteration")
    table.note("the cost-based order starts from the restricted/delta side; the")
    table.note("syntactic order scans the first-written relation in full")
    return table


# ---------------------------------------------------------------------------
# E15 — histogram range pricing and mid-fixpoint re-optimization
# ---------------------------------------------------------------------------


def e15_range_case(rows=2000, partner_rows=10_000, keys=500, hot_keys=50, seed=11):
    """A skewed range workload: ``Readings`` carries an exponentially
    distributed measurement column, ``Samples`` is a large join partner
    over a hot subset of the keys.  The query keeps only the extreme
    tail of the measurements (far less than the uniform-constant guess),
    so the histogram-priced plan drives the join from the restricted
    side while constant pricing starts from the big partner."""
    import random as _random

    from ..types import INTEGER, STRING, record, relation_type

    rng = _random.Random(seed)
    reading = record("readingrec", sensor=STRING, value=INTEGER)
    sample = record("samplerec", sensor=STRING, label=STRING)
    db = Database("e15")
    db.declare(
        "Readings",
        relation_type("readingrel", reading),
        {
            (f"k{i % keys}", min(int(rng.expovariate(0.005)), 1200) + i % 3)
            for i in range(rows)
        },
    )
    db.declare(
        "Samples",
        relation_type("samplerel", sample),
        {(f"k{rng.randrange(hot_keys)}", f"w{i}") for i in range(partner_rows)},
    )
    query = d.query(
        d.branch(
            d.each("s", "Samples"),
            d.each("r", "Readings"),
            pred=d.and_(
                d.eq(d.a("r", "sensor"), d.a("s", "sensor")),
                d.gt(d.a("r", "value"), 990),
            ),
            targets=[d.a("r", "sensor"), d.a("s", "label")],
        )
    )
    return db, query


def e15_drift_edges(comps=6, sources=50, leaves=50):
    """Staggered dead-end fans for transitive closure: early deltas are
    tiny chain advances, then each component's source-by-leaf wave
    explodes far beyond the compile-time delta estimate — one component
    per iteration, so the drift keeps paying off."""
    edges = []
    for j in range(comps):
        edges += [(f"s{j}_{i}", f"c{j}_0") for i in range(sources)]
        edges += [(f"c{j}_{k}", f"c{j}_{k+1}") for k in range(j + 1)]
        edges += [(f"c{j}_{j+1}", f"b{j}_{n}") for n in range(leaves)]
    return edges


def e15_reopt() -> Table:
    from ..compiler import CostModel, compile_fixpoint

    table = Table(
        "E15 Histogram range pricing + mid-fixpoint re-optimization",
        ["workload", "|result|", "baseline (s)", "informed (s)", "scan base",
         "scan informed", "scan ratio", "equal"],
    )

    # (a) range pricing: equi-depth histograms vs the uniform constant.
    db, query = e15_range_case()
    plan_const = compile_query(
        db, query, cost_model=CostModel(db, use_histograms=False)
    )
    plan_hist = compile_query(db, query, cost_model=CostModel(db))
    stats_const, stats_hist = PlanStats(), PlanStats()
    rows_const, t_const = measure(
        lambda: plan_const.execute(ExecutionContext(db, stats=stats_const)), repeat=5
    )
    rows_hist, t_hist = measure(
        lambda: plan_hist.execute(ExecutionContext(db, stats=stats_hist)), repeat=5
    )
    table.add(
        "skewed range join", len(rows_hist), t_const, t_hist,
        stats_const.rows_scanned // 5, stats_hist.rows_scanned // 5,
        f"{ratio(stats_const.rows_scanned, stats_hist.rows_scanned):.1f}x",
        rows_const == rows_hist,
    )

    # (b) re-optimization: frozen differential plans vs drift-triggered
    # re-planning on TC over staggered exploding deltas.
    edges = e15_drift_edges()
    frozen_db = _tc_db(edges)
    frozen_sys = instantiate(frozen_db, d.constructed("Infront", "ahead"))
    frozen = compile_fixpoint(frozen_db, frozen_sys, replan_drift=None)
    frozen_vals, t_frozen = measure(frozen.run)
    adaptive_db = _tc_db(edges)
    adaptive_sys = instantiate(adaptive_db, d.constructed("Infront", "ahead"))
    adaptive = compile_fixpoint(adaptive_db, adaptive_sys)
    adaptive_vals, t_adaptive = measure(adaptive.run)
    table.add(
        "TC drifting deltas", len(adaptive_vals[adaptive_sys.root]),
        t_frozen, t_adaptive,
        frozen.plan_stats.rows_scanned, adaptive.plan_stats.rows_scanned,
        f"{ratio(frozen.plan_stats.rows_scanned, adaptive.plan_stats.rows_scanned):.1f}x",
        frozen_vals[frozen_sys.root] == adaptive_vals[adaptive_sys.root],
    )
    table.note("(a) equi-depth histograms price the range filter's true tail "
               "fraction; the constant 1/3 drives the join from the wrong side")
    table.note(f"(b) re-planning fired {adaptive.replans} time(s) when observed "
               "deltas drifted >4x from the priced estimates")
    table.metric(
        "range_scan_ratio",
        ratio(stats_const.rows_scanned, stats_hist.rows_scanned),
    )
    table.metric("reopt_rows_scanned", adaptive.plan_stats.rows_scanned)
    return table


# ---------------------------------------------------------------------------
# E16 — batched physical-operator executor vs tuple-at-a-time interpretation
# ---------------------------------------------------------------------------


def e16_bom_paths_case(assemblies=24, depth=7, fanout=4, seed=16):
    """The E14-style headline workload at ~19k rows: all four-level
    containment paths through a BOM forest — a selective multi-way
    self-join where per-tuple interpretation overhead dominates."""
    edges = generate_bom(assemblies=assemblies, depth=depth, fanout=fanout,
                         seed=seed)
    db = bom_database(edges)
    query = d.query(
        d.branch(
            d.each("c1", "Contains"), d.each("c2", "Contains"),
            d.each("c3", "Contains"), d.each("c4", "Contains"),
            pred=d.and_(
                d.eq(d.a("c1", "sub"), d.a("c2", "part")),
                d.and_(
                    d.eq(d.a("c2", "sub"), d.a("c3", "part")),
                    d.eq(d.a("c3", "sub"), d.a("c4", "part")),
                ),
            ),
            targets=[d.a("c1", "part"), d.a("c4", "sub")],
        )
    )
    return db, query


def e16_batched() -> Table:
    """Identical plans, two executors: the lowered operator pipeline
    (Scan/IndexLookup/HashJoin/Filter/Project over row batches) against
    the tuple-at-a-time interpreted loop nest it replaced."""
    table = Table(
        "E16 Batched operator pipeline vs tuple-at-a-time interpretation",
        ["workload", "rows in", "|result|", "tuple (s)", "batch (s)",
         "speedup", "equal"],
    )

    def compare(name, db, query, repeat=3):
        plan = compile_query(db, query)
        rows_in = sum(len(r) for r in db.relations.values())
        rows_tuple, t_tuple = measure(
            lambda: plan.execute(ExecutionContext(db), executor="tuple"),
            repeat=repeat,
        )
        rows_batch, t_batch = measure(
            lambda: plan.execute(ExecutionContext(db), executor="batch"),
            repeat=repeat,
        )
        table.add(name, rows_in, len(rows_batch), t_tuple, t_batch,
                  f"{ratio(t_tuple, t_batch):.1f}x", rows_tuple == rows_batch)
        return ratio(t_tuple, t_batch)

    # (a) the headline: E14-style selective multi-way join at ~19k rows.
    db, query = e16_bom_paths_case()
    headline = compare("BOM 4-level paths", db, query)

    # (b) the E15 histogram workload (10k-row join partner).
    db, query = e15_range_case()
    compare("E15 skewed range join", db, query)

    # (c) the same comparison inside the generated fixpoint program:
    # semi-naive differentials with deltas as pre-built hash-join sides.
    edges = e15_drift_edges()
    tuple_db = _tc_db(edges)
    tuple_sys = instantiate(tuple_db, d.constructed("Infront", "ahead"))
    tuple_prog = compile_fixpoint(tuple_db, tuple_sys, executor="tuple")
    tuple_vals, t_tuple = measure(tuple_prog.run)
    batch_db = _tc_db(edges)
    batch_sys = instantiate(batch_db, d.constructed("Infront", "ahead"))
    batch_prog = compile_fixpoint(batch_db, batch_sys, executor="batch")
    batch_vals, t_batch = measure(batch_prog.run)
    table.add(
        "TC fixpoint (drift edges)", len(edges),
        len(batch_vals[batch_sys.root]), t_tuple, t_batch,
        f"{ratio(t_tuple, t_batch):.1f}x",
        tuple_vals[tuple_sys.root] == batch_vals[batch_sys.root],
    )

    table.note("same optimizer, same plans — only the executor differs; "
               "answers byte-identical")
    table.note(f"headline speedup {headline:.1f}x (acceptance bar: 5x at "
               ">=10k rows)")
    table.note("explain() reports per-operator actual row counts "
               "(SCAN/INDEXLOOKUP/HASHJOIN/FILTER/PROJECT/DEDUP/DELTAAPPLY)")
    table.metric("headline_speedup", headline)
    return table


# ---------------------------------------------------------------------------
# E17 — columnar (struct-of-arrays) carries + operator fusion vs row-major
# ---------------------------------------------------------------------------


def e17_wide_case(rows=20_000, partners=9_000, fan_keys=300, part_keys=7_000,
                  seed=17):
    """A wide-carry 3-way join: 8-column relations, nine projected
    attributes, a mid-pipeline range filter — the shape where row-major
    batches rebuild wide carry tuples at every step while the columnar
    executor only expands row slots and materializes once, fused."""
    import random as _random

    from ..types import INTEGER, STRING, record, relation_type

    rng = _random.Random(seed)
    wide = record(
        "widerec", a0=STRING, a1=INTEGER, a2=INTEGER, a3=INTEGER,
        a4=INTEGER, a5=INTEGER, a6=INTEGER, a7=STRING,
    )

    def rel(n, keys, prefix):
        nxt = chr(ord(prefix) + 1)
        return {
            (f"{prefix}k{rng.randrange(keys)}", i, rng.randrange(1000),
             rng.randrange(1000), rng.randrange(1000), rng.randrange(1000),
             rng.randrange(1000), f"{nxt}k{rng.randrange(keys)}")
            for i in range(n)
        }

    db = Database("e17wide")
    db.declare("W1", relation_type("w1", wide), rel(rows, fan_keys, "a"))
    db.declare("W2", relation_type("w2", wide), rel(partners, part_keys, "b"))
    db.declare("W3", relation_type("w3", wide), rel(partners, part_keys, "c"))
    query = d.query(
        d.branch(
            d.each("x", "W1"), d.each("y", "W2"), d.each("z", "W3"),
            pred=d.and_(
                d.eq(d.a("x", "a7"), d.a("y", "a0")),
                d.and_(
                    d.eq(d.a("y", "a7"), d.a("z", "a0")),
                    d.gt(d.a("y", "a2"), 500),
                ),
            ),
            targets=[d.a("x", "a1"), d.a("x", "a2"), d.a("x", "a3"),
                     d.a("x", "a4"), d.a("y", "a1"), d.a("y", "a3"),
                     d.a("z", "a2"), d.a("z", "a4"), d.a("z", "a5")],
        )
    )
    return db, query


def e17_quantifier_case(links=24_000, parts=4_000, approved=300, seed=18):
    """The headline: a wide join whose predicate is quantifier-heavy —
    an existential over approvals plus a negated membership against a
    recall list.  Row-major batches check both through the reference
    evaluator once per joined row; the columnar executor groups rows by
    their bindings and answers each distinct group with one index probe
    per batch."""
    import random as _random

    from ..types import INTEGER, STRING, record, relation_type

    rng = _random.Random(seed)
    part = record("partrec", pid=STRING, kind=STRING, wt=INTEGER)
    link = record("linkrec", parent=STRING, child=STRING, qty=INTEGER)
    approval = record("apprec", pid=STRING, grade=INTEGER)
    recall = record("recrec", pid=STRING)

    db = Database("e17quant")
    db.declare("Parts", relation_type("partsrel", part),
               {(f"p{i}", f"k{i % 40}", i % 97) for i in range(parts)})
    db.declare("Links", relation_type("linksrel", link),
               {(f"p{rng.randrange(parts)}", f"p{rng.randrange(parts)}", i % 7)
                for i in range(links)})
    db.declare("Approved", relation_type("apprel", approval),
               {(f"p{rng.randrange(parts)}", i % 5) for i in range(approved)})
    db.declare("Recalled", relation_type("recrel", recall),
               {(f"p{rng.randrange(parts)}",) for i in range(parts // 20)})
    query = d.query(
        d.branch(
            d.each("l", "Links"), d.each("p", "Parts"),
            pred=d.and_(
                d.eq(d.a("l", "child"), d.a("p", "pid")),
                d.and_(
                    d.some("a", "Approved",
                           d.eq(d.a("a", "pid"), d.a("l", "parent"))),
                    d.not_(d.in_(d.tup(d.a("p", "pid")), "Recalled")),
                ),
            ),
            targets=[d.a("l", "parent"), d.a("p", "kind"), d.a("p", "wt")],
        )
    )
    return db, query


def e17_columnar() -> Table:
    """Columnar (struct-of-arrays) executor vs PR 3's row-major batches.

    Identical plans, two batched executors: ``executor="batch"`` (slot
    carries, C-level kernels, fused projection, grouped residual probes)
    against ``executor="rowbatch"`` (flat row-major carries).  The
    acceptance bar is >=2x on the quantifier-heavy workloads at 10k+
    rows with byte-identical answers.
    """
    table = Table(
        "E17 Columnar carries + operator fusion vs row-major batches",
        ["workload", "rows in", "|result|", "rowbatch (s)", "columnar (s)",
         "speedup", "equal"],
    )

    def compare(name, db, query, metric, repeat=3, repeat_slow=None):
        plan = compile_query(db, query)
        rows_in = sum(len(r) for r in db.relations.values())
        rows_col, t_col = measure(
            lambda: plan.execute(ExecutionContext(db), executor="batch"),
            repeat=repeat,
        )
        rows_row, t_row = measure(
            lambda: plan.execute(ExecutionContext(db), executor="rowbatch"),
            repeat=repeat_slow or repeat,
        )
        speedup = ratio(t_row, t_col)
        table.add(name, rows_in, len(rows_col), t_row, t_col,
                  f"{speedup:.1f}x", rows_col == rows_row)
        table.metric(metric, speedup)
        return speedup

    # (a) the wide-carry join chain (fused projection, compress filters).
    db, query = e17_wide_case()
    compare("wide-carry 3-way join", db, query, "wide_speedup", repeat=5)

    # (b) HEADLINE: the same join shape under quantifier-heavy predicates.
    db, query = e17_quantifier_case()
    headline = compare("quantifier-heavy join", db, query,
                       "headline_speedup", repeat_slow=1)

    # (c) the semi-naive fixpoint on both executors (delta hash sides).
    # Each repetition recompiles against a fresh database so mid-fixpoint
    # re-planning fires identically; best-of-3 drowns codegen noise.
    edges = e15_drift_edges()

    def run_fixpoint(executor):
        db = _tc_db(edges)
        system = instantiate(db, d.constructed("Infront", "ahead"))
        program = compile_fixpoint(db, system, executor=executor)
        return program, program.run()[system.root]

    (row_prog, row_rows), t_row = measure(lambda: run_fixpoint("rowbatch"), repeat=3)
    (col_prog, col_rows), t_col = measure(lambda: run_fixpoint("batch"), repeat=3)
    table.add("TC fixpoint (drift edges)", len(edges), len(col_rows),
              t_row, t_col, f"{ratio(t_row, t_col):.1f}x", row_rows == col_rows)
    table.metric("fixpoint_speedup", ratio(t_row, t_col))
    table.metric("fixpoint_rows_scanned", col_prog.plan_stats.rows_scanned)

    table.note("same cost-based plans; the executors differ only in carry "
               "layout (slots vs flat tuples) and fusion")
    table.note(f"headline speedup {headline:.1f}x on the quantifier-heavy "
               "join (acceptance bar: 2x at >=10k rows)")
    table.note("columnar residuals: grouped per distinct binding, one index "
               "probe per batch; row-major checks per joined row")
    return table


# ---------------------------------------------------------------------------
# E18 — sharded parallel executor vs single-worker columnar execution
# ---------------------------------------------------------------------------


def e18_sharded_case(rows=100_000, dim=5_000, aux=1_200, seed=21):
    """A 100k-row skewed fact/dimension join, the sharding headline.

    Fact keys are drawn with cubic skew over the dimension's key space —
    heavy head buckets, exactly where hash-partitioned build and probe
    sides pay off.  The cost-based order scans the dimension, checks a
    range filter plus a universal quantifier against a rule table (the
    memoized evaluator fallback: per-distinct-group compute, the
    CPU-bound part), and probes the 100k-row fact side — which the
    sharded backend partitions on the join key, so each worker builds an
    index over ``rows/k`` fact rows and evaluates ``1/k`` of the
    residual groups.  The result set stays small relative to the probe
    work (the parallel win is compute-bound, not merge-bound).
    """
    import random as _random

    from ..types import INTEGER, STRING, record, relation_type

    rng = _random.Random(seed)
    fact = record("factrec", fk=STRING, seq=INTEGER, v=INTEGER)
    dimension = record("dimrec", k=STRING, grp=STRING, w=INTEGER)
    rule = record("rulerec", grp=STRING, w=INTEGER)

    db = Database("e18shard")
    db.declare(
        "Fact",
        relation_type("factrel", fact),
        {
            (f"p{int(dim * rng.random() ** 3)}", i, rng.randrange(1000))
            for i in range(rows)
        },
    )
    db.declare(
        "Dim",
        relation_type("dimrel", dimension),
        {(f"p{i}", f"g{i % 50}", rng.randrange(1000)) for i in range(dim)},
    )
    db.declare(
        "Rules",
        relation_type("rulesrel", rule),
        {(f"g{rng.randrange(50)}", rng.randrange(1000)) for _ in range(aux)},
    )
    query = d.query(
        d.branch(
            d.each("f", "Fact"), d.each("g", "Dim"),
            pred=d.and_(
                d.eq(d.a("f", "fk"), d.a("g", "k")),
                d.and_(
                    d.ge(d.a("g", "w"), 450),
                    # "no rule for g's group demands more weight": a
                    # disjunction with a range arm, so the residual takes
                    # the memoized evaluator fallback — real per-group
                    # compute that the shards split.
                    d.all_("s", "Rules", d.or_(
                        d.ne(d.a("s", "grp"), d.a("g", "grp")),
                        d.le(d.a("s", "w"), d.a("g", "w")),
                    )),
                ),
            ),
            targets=[d.a("f", "seq"), d.a("g", "w"), d.a("f", "v")],
        )
    )
    return db, query


def e18_sharded() -> Table:
    """Sharded parallel executor vs the single-worker columnar default.

    The same plan runs three ways: ``executor="batch"`` (one worker),
    ``executor="sharded"`` on the default thread pool, and
    ``executor="sharded"`` on the opt-in fork-based process pool — the
    configuration that scales with cores (threads interleave under the
    GIL; the acceptance bar of >=2x at >=4 workers is a multi-core
    number, single-core boxes report parity).  A large-delta transitive
    closure measures the fixpoint path: each iteration's delta is
    partitioned once and the per-shard deltas merge through a
    dedup-aware union before DeltaApply.
    """
    import os as _os

    table = Table(
        "E18 Sharded parallel executor vs single-worker columnar",
        ["workload", "rows in", "|result|", "batch (s)", "sharded (s)",
         "pool", "workers", "speedup", "equal"],
    )
    cpu = _os.cpu_count() or 1

    db, query = e18_sharded_case()
    rows_in = sum(len(r) for r in db.relations.values())
    plan = compile_query(db, query)
    rows_batch, t_batch = measure(
        lambda: plan.execute(ExecutionContext(db), executor="batch"), repeat=3
    )

    def run_sharded(config):
        ctx = ExecutionContext(db)
        ctx.shard_config = config
        return plan.execute(ctx, executor="sharded")

    thread_workers = max(2, min(8, cpu))
    thread_config = ShardConfig(workers=thread_workers)
    rows_thr, t_thr = measure(lambda: run_sharded(thread_config), repeat=3)
    table.add("skewed join 100k", rows_in, len(rows_thr), t_batch, t_thr,
              "thread", thread_workers, f"{ratio(t_batch, t_thr):.1f}x",
              rows_thr == rows_batch)

    process_workers = max(4, cpu)
    process_config = ShardConfig(workers=process_workers, pool="process")
    rows_proc, t_proc = measure(lambda: run_sharded(process_config), repeat=3)
    table.add("skewed join 100k", rows_in, len(rows_proc), t_batch, t_proc,
              "process", process_workers, f"{ratio(t_batch, t_proc):.1f}x",
              rows_proc == rows_batch)

    headline = ratio(t_batch, min(t_thr, t_proc))
    table.metric("sharded_speedup", headline)

    # Large-delta fixpoint: the drift workload's waves keep deltas big.
    edges = e15_drift_edges(comps=5, sources=30, leaves=30)

    def run_fixpoint(executor, config=None):
        db2 = _tc_db(edges)
        system = instantiate(db2, d.constructed("Infront", "ahead"))
        program = compile_fixpoint(
            db2, system, executor=executor, shard_config=config
        )
        return program.run()[system.root]

    fp_batch, t_fp_batch = measure(lambda: run_fixpoint("batch"), repeat=3)
    fix_config = ShardConfig(workers=thread_workers, min_rows=256,
                             rows_per_shard=256)
    fp_sharded, t_fp_sharded = measure(
        lambda: run_fixpoint("sharded", fix_config), repeat=3
    )
    table.add("large-delta TC fixpoint", len(edges), len(fp_sharded),
              t_fp_batch, t_fp_sharded, "thread", thread_workers,
              f"{ratio(t_fp_batch, t_fp_sharded):.1f}x",
              fp_sharded == fp_batch)
    table.metric("sharded_fixpoint_speedup", ratio(t_fp_batch, t_fp_sharded))

    table.note(f"cpu_count={cpu}; the >=2x acceptance bar applies at >=4 "
               "workers on >=4 cores (process pool) — single-core boxes "
               "report parity")
    table.note("thread pool is the zero-setup default (GIL-interleaved); "
               "the fork-based process pool is the multi-core knob")
    table.note("fixpoint deltas are partitioned once per iteration; "
               "per-shard deltas merge dedup-aware before DeltaApply")
    return table


E19_SCHEMA = """
MODULE serving;

TYPE name    = STRING;
     factrec = RECORD seq: INTEGER; fk, tag: name END;
     factrel = RELATION seq OF factrec;
     dimrec  = RECORD k, grp: name; w: INTEGER END;
     dimrel  = RELATION k OF dimrec;
     annrec  = RECORD grp, note: name END;
     annrel  = RELATION grp, note OF annrec;

VAR Fact: factrel;
    Dim:  dimrel;
    Ann:  annrel;

END serving.
"""

#: The 3-step join the serving clients hammer (Fact–Dim–Ann–Dim, three
#: join edges); the two ``%d`` are the predicate constants — the
#: prepared path rebinds them as slots, the compile-per-call path
#: splices them into fresh query text.
E19_JOIN = (
    "{<f.seq, g.w, h.note, g2.k> OF "
    "EACH f IN Fact, EACH g IN Dim, EACH h IN Ann, EACH g2 IN Dim: "
    "f.fk = g.k AND g.grp = h.grp AND h.grp = g2.grp "
    "AND g.w >= %d AND g2.w < %d}"
)


def e19_serving_case(facts=1_500, dims=60, anns=9, seed=23, **session_kwargs):
    """A populated serving session: Fact (fat) joins Dim joins Ann."""
    import random as _random

    rng = _random.Random(seed)
    session = Session(name="e19", **session_kwargs)
    session.execute(E19_SCHEMA)
    session.assign(
        "Fact",
        [(i, f"k{rng.randrange(dims)}", f"t{rng.randrange(6)}")
         for i in range(facts)],
    )
    session.assign("Dim", [(f"k{j}", f"g{j % anns}", j) for j in range(dims)])
    session.assign("Ann", [(f"g{j}", f"note{j}") for j in range(anns)])
    return session


def _e19_percentile(values, q):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, round(q * (len(ordered) - 1)))]


def _e19_serve(session, clients, ops, prepared: bool,
               thresholds=((45, 10), (50, 8), (55, 12), (40, 6))):
    """Run the mixed workload; returns (read latencies, wall seconds).

    Each client thread performs ``ops`` operations: ~90% reads of the
    3-step join (rotating the threshold constant), ~10% single-row
    inserts.  ``prepared=True`` clients prepare once and rebind the
    constant per call; otherwise every read goes through
    ``session.query`` with fresh text (and the session's cache disabled,
    that is a full re-parse/re-compile per call).
    """
    import random as _random
    import threading as _threading
    import time as _time

    per_client: list[list[float]] = [[] for _ in range(clients)]
    errors: list[Exception] = []

    def worker(cid: int) -> None:
        rng = _random.Random(97 + cid)
        lats = per_client[cid]
        handle = session.prepare(E19_JOIN % thresholds[0]) if prepared else None
        seq = 1_000_000 * (cid + 1)
        try:
            for _ in range(ops):
                if rng.random() < 0.1:
                    seq += 1
                    session.insert(
                        "Fact",
                        [(seq, f"k{rng.randrange(60)}", f"t{rng.randrange(6)}")],
                    )
                    continue
                bound = thresholds[rng.randrange(len(thresholds))]
                start = _time.perf_counter()
                if prepared:
                    handle.execute(*bound)
                else:
                    session.query(E19_JOIN % bound)
                lats.append(_time.perf_counter() - start)
        except DBPLError as exc:  # pragma: no cover - surfaced by caller
            errors.append(exc)

    threads = [_threading.Thread(target=worker, args=(c,)) for c in range(clients)]
    wall = _time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = _time.perf_counter() - wall
    if errors:
        raise errors[0]
    return [lat for lats in per_client for lat in lats], wall


def e19_serving(clients=4, ops=150) -> Table:
    """Prepared+cached serving vs compile-per-call under client threads.

    N client threads hammer one session with a mixed workload (~90%
    3-step-join reads with a rotating predicate constant, ~10% inserts).
    The compile-per-call mode disables the plan cache, so every read
    pays parse + optimize + lower; the prepared mode compiles the shape
    once and rebinds the constant per call.  The acceptance bar is
    prepared p50 >= 5x better; the inserts stay under the stats-epoch
    staleness threshold, so the cache is never invalidated mid-run
    (that path is exercised separately by the tier-1 tests).
    """
    table = Table(
        "E19 Serving: prepared+cached vs compile-per-call "
        f"({clients} client threads, mixed read/write)",
        ["mode", "reads", "writes", "p50 (ms)", "p99 (ms)",
         "reads/s", "hit rate", "equal"],
    )

    # Correctness gate on a small instance (the interpreted evaluator is
    # tuple-at-a-time nested loops — running it on the full serving case
    # would dwarf the measurement): compile-per-call, prepared/rebound,
    # and the reference evaluator must all agree.
    check = e19_serving_case(facts=120, dims=20, anns=6)
    check_prepared = check.prepare(E19_JOIN % (5, 4))
    equal = all(
        check.query(E19_JOIN % pair, mode="interpreted")
        == check.query(E19_JOIN % pair)
        == check_prepared.execute(*pair)
        for pair in ((5, 4), (10, 8), (2, 15))
    )

    compile_session = e19_serving_case(plan_cache_size=0)
    lat_compile, wall_compile = _e19_serve(
        compile_session, clients, ops, prepared=False
    )
    equal_compile = equal
    p50_compile = _e19_percentile(lat_compile, 0.50)
    p99_compile = _e19_percentile(lat_compile, 0.99)
    writes_compile = clients * ops - len(lat_compile)
    table.add("compile-per-call", len(lat_compile), writes_compile,
              p50_compile * 1e3, p99_compile * 1e3,
              len(lat_compile) / wall_compile,
              f"{compile_session.plan_cache.hit_rate:.2f}", equal_compile)

    prepared_session = e19_serving_case()
    lat_prepared, wall_prepared = _e19_serve(
        prepared_session, clients, ops, prepared=True
    )
    equal_prepared = equal
    p50_prepared = _e19_percentile(lat_prepared, 0.50)
    p99_prepared = _e19_percentile(lat_prepared, 0.99)
    writes_prepared = clients * ops - len(lat_prepared)
    hit_rate = prepared_session.plan_cache.hit_rate
    table.add("prepared+cached", len(lat_prepared), writes_prepared,
              p50_prepared * 1e3, p99_prepared * 1e3,
              len(lat_prepared) / wall_prepared,
              f"{hit_rate:.2f}", equal_prepared)

    # p99 is displayed but deliberately not a gated metric: under the
    # GIL both modes' tails are contention-dominated and the quotient is
    # too noisy for even the gate's wide margin.
    table.metric("prepared_p50_speedup", ratio(p50_compile, p50_prepared))
    table.metric("cache_hit_rate", hit_rate)
    table.metric("p50_prepared_ms", p50_prepared * 1e3)
    table.metric("p50_compile_ms", p50_compile * 1e3)

    table.note("acceptance bar: prepared+cached p50 >= 5x better than "
               "compile-per-call on the 3-step join")
    table.note("the ~10% inserts stay below the stats-epoch staleness "
               "threshold, so plans are reused, not re-optimized; bulk "
               "drift invalidation is covered by tests/test_serving.py")
    table.note("`equal`: compile-per-call, prepared/rebound, and the "
               "interpreted reference evaluator agree on a small instance "
               "of the same shape")
    return table


def e20_vectors_case(rows=100_000, dim=4_000, seed=27):
    """A skewed equality join + range filter + dedup, vector-coverable.

    Every piece sits inside the vector lowering's coverage rules: both
    steps are stored relations, the join keys on one column each side,
    the filter compares one column against a constant, and the distinct
    projection reads plain attributes — so ``executor="vector"`` runs it
    end to end in id space (int-id hash probe, LUT filter, id-tuple
    dedup) while ``batch`` and ``rowbatch`` run the same plan over
    object rows.  Fact keys are cubically skewed and the projection is
    narrow, so dedup does real work.
    """
    import random as _random

    from ..types import INTEGER, STRING, record, relation_type

    rng = _random.Random(seed)
    fact = record("vfactrec", fk=STRING, seq=INTEGER, v=INTEGER)
    dimension = record("vdimrec", k=STRING, grp=STRING, w=INTEGER)

    db = Database("e20vec")
    db.declare(
        "Fact",
        relation_type("vfactrel", fact),
        {
            (f"p{int(dim * rng.random() ** 3)}", i, rng.randrange(200))
            for i in range(rows)
        },
    )
    db.declare(
        "Dim",
        relation_type("vdimrel", dimension),
        {(f"p{i}", f"g{i % 64}", rng.randrange(1000)) for i in range(dim)},
    )
    query = d.query(
        d.branch(
            d.each("f", "Fact"), d.each("g", "Dim"),
            pred=d.and_(
                d.eq(d.a("f", "fk"), d.a("g", "k")),
                d.ge(d.a("g", "w"), 500),
            ),
            targets=[d.a("g", "grp"), d.a("f", "v")],
        )
    )
    return db, query


def e20_vectors(sizes=(10_000, 100_000, 1_000_000)) -> Table:
    """Typed vectors vs the object-row executors on a join/filter grid.

    The same compiled plan runs per grid size under ``rowbatch``
    (row-major pipelines), ``batch`` (columnar object rows — the
    default), ``vector`` with the numpy fast path, and ``vector`` forced
    onto the pure-stdlib ``array`` kernels — identical answers required
    everywhere.  The acceptance bar is >=3x for the numpy vector path
    over ``batch`` at >=100k rows; the stdlib row shows what the feature
    gate degrades to when numpy is absent.
    """
    from ..relational import numpy_enabled, set_numpy_enabled

    table = Table(
        "E20 Typed vectors: dictionary-encoded kernels vs object rows",
        ["rows", "|result|", "rowbatch (s)", "batch (s)", "vector (s)",
         "vector-nonumpy (s)", "speedup vs batch", "equal"],
    )

    for rows in sizes:
        db, query = e20_vectors_case(rows=rows)
        plan = compile_query(db, query)
        repeat = 3 if rows <= 100_000 else 2

        def run(executor):
            return plan.execute(ExecutionContext(db), executor=executor)

        rows_rb, t_rb = measure(lambda: run("rowbatch"), repeat=repeat)
        rows_batch, t_batch = measure(lambda: run("batch"), repeat=repeat)
        rows_vec, t_vec = measure(lambda: run("vector"), repeat=repeat)
        set_numpy_enabled(False)
        try:
            rows_plain, t_plain = measure(lambda: run("vector"), repeat=repeat)
        finally:
            set_numpy_enabled(None)
        equal = rows_vec == rows_batch == rows_rb == rows_plain
        speedup = ratio(t_batch, t_vec)
        table.add(rows, len(rows_vec), t_rb, t_batch, t_vec, t_plain,
                  f"{speedup:.1f}x", equal)
        if rows == 100_000:
            table.metric("vector_speedup_100k", speedup)
            table.metric("vector_nonumpy_speedup_100k", ratio(t_batch, t_plain))
    table.metric("numpy_available", 1.0 if numpy_enabled() else 0.0)

    table.note("acceptance bar: vector >= 3x over batch at >= 100k rows "
               "with identical results across all four executors")
    table.note("vector-nonumpy forces the pure-stdlib array('q') kernels "
               "— the path a numpy-less install takes via the "
               "REPRO_VECTOR_NUMPY feature gate")
    table.note("per-size plans are compiled once and shared across "
               "executors; encoded tables and dictionaries are the "
               "relations' version-cached views, so vector timings "
               "include translation/LUT/probe-structure build")
    return table


E21_SCHEMA = """
TYPE erec = RECORD name, dept: STRING; sal: INTEGER END;
     erel = RELATION name OF erec;
     prec = RECORD parent, child: STRING END;
     prel = RELATION parent, child OF prec;
VAR Emp: erel; Par: prel;
"""

E21_SAL = "{EACH e IN Emp: e.sal > %d}"
E21_DEPT = '{EACH e IN Emp: e.dept = "d%d"}'
E21_JOIN = (
    "{<e.name, p.child> OF EACH e IN Emp, EACH p IN Par: "
    "e.dept = p.parent AND e.sal > %d}"
)


def _e21_emp_rows(rows: int, depts: int, seed: int = 31) -> list[tuple]:
    import random as _random

    rng = _random.Random(seed)
    return [
        (f"e{i:05d}", f"d{i % depts}", rng.randrange(200))
        for i in range(rows)
    ]


def e21_ivm_case(rows=3_000, depts=40, seed=31):
    """A session with an employee table sized for many standing filters.

    ``Emp`` carries ``rows`` employees over ``depts`` departments with
    salaries in [0, 200); ``Par`` maps each department to a small set of
    teams so join-shaped subscriptions have a second (unmutated) side.
    """
    session = Session()
    session.execute(E21_SCHEMA)
    session.insert("Emp", _e21_emp_rows(rows, depts, seed))
    session.insert(
        "Par", [(f"d{i}", f"t{i % 7}") for i in range(depts)]
    )
    return session


def e21_sources(count: int) -> list[str]:
    """``count`` distinct standing-query sources over the E21 schema.

    A 10-query cycle: six salary filters with rotating thresholds, three
    department filters, one department join with a salary bound — the
    shapes a serving tier would keep alive per dashboard panel.
    """
    sources = []
    for i in range(count):
        slot = i % 10
        if slot < 6:
            sources.append(E21_SAL % ((i * 7) % 200))
        elif slot < 9:
            sources.append(E21_DEPT % (i % 40))
        else:
            sources.append(E21_JOIN % ((i * 13) % 200))
    return sources


def e21_stream(rows=3_000, depts=40, batches=13, k=8, seed=87):
    """A deterministic mixed insert/delete stream over the E21 table.

    Each batch inserts ``k`` fresh employees and deletes ``k`` live ones
    (later batches may delete earlier batches' inserts).  The same list
    replays identically on twin sessions.
    """
    import random as _random

    rng = _random.Random(seed)
    live = _e21_emp_rows(rows, depts)
    stream = []
    next_id = rows
    for _ in range(batches):
        inserted = [
            (f"e{next_id + j:05d}", f"d{rng.randrange(depts)}",
             rng.randrange(200))
            for j in range(k)
        ]
        next_id += k
        deleted = rng.sample(live, k)
        for row in deleted:
            live.remove(row)
        live.extend(inserted)
        stream.append((inserted, deleted))
    return stream


def e21_ivm(sub_counts=(100, 1_000), rows=3_000, batches=13, k=8) -> Table:
    """Standing queries: incremental maintenance vs re-execute-per-batch.

    ``sub_counts`` standing queries subscribe against twin sessions; the
    same mixed insert/delete stream replays on both.  The maintained
    side pays only the write path (counting deltas inside the commit);
    the re-execute side re-runs every source through ``Session.query``
    after every batch — what a serving tier without subscriptions would
    do to keep the same panels fresh.  Batch 0 is an untimed warm-up on
    both sides (delta-handler compilation there, plan-cache priming
    here), so the quotient compares steady states.  The acceptance bar
    is >=5x at 1k standing queries with bit-identical final answers.
    """
    import time as _time

    table = Table(
        "E21 Standing queries: incremental maintenance vs re-execution "
        f"({batches - 1} timed batches of +{k}/-{k} rows)",
        ["standing queries", "|Emp|", "ivm (s)", "re-exec (s)",
         "ms/batch ivm", "ms/batch re-exec", "speedup", "recomputes",
         "equal"],
    )

    for count in sub_counts:
        sources = e21_sources(count)
        stream = e21_stream(rows=rows, batches=batches, k=k)
        warmup, timed = stream[0], stream[1:]

        ivm = e21_ivm_case(rows=rows)
        subs = [ivm.subscribe(source) for source in sources]
        ivm.insert("Emp", warmup[0])
        ivm.db.relation("Emp").delete(warmup[1])
        start = _time.perf_counter()
        for inserted, deleted in timed:
            ivm.insert("Emp", inserted)
            ivm.db.relation("Emp").delete(deleted)
        t_ivm = _time.perf_counter() - start

        reexec = e21_ivm_case(rows=rows)
        reexec.insert("Emp", warmup[0])
        reexec.db.relation("Emp").delete(warmup[1])
        answers = [reexec.query(source) for source in sources]
        start = _time.perf_counter()
        for inserted, deleted in timed:
            reexec.insert("Emp", inserted)
            reexec.db.relation("Emp").delete(deleted)
            answers = [reexec.query(source) for source in sources]
        t_reexec = _time.perf_counter() - start

        equal = all(
            sub.rows() == answer for sub, answer in zip(subs, answers)
        )
        recomputes = sum(sub.recomputes for sub in subs)
        speedup = ratio(t_reexec, t_ivm)
        table.add(count, rows, t_ivm, t_reexec,
                  t_ivm * 1e3 / len(timed), t_reexec * 1e3 / len(timed),
                  f"{speedup:.1f}x", recomputes, equal)
        if count == max(sub_counts):
            table.metric("ivm_speedup", speedup)
            table.metric("ivm_ms_per_batch", t_ivm * 1e3 / len(timed))
            table.metric("reexec_ms_per_batch",
                         t_reexec * 1e3 / len(timed))
        for sub in subs:
            sub.close()

    table.note("acceptance bar: maintaining 1k standing queries under "
               "the mixed stream >= 5x faster than re-executing each "
               "per batch, final answers bit-identical")
    table.note("one DeltaState per commit is shared by every watcher; "
               "per-subscription work is counting maintenance over the "
               "delta, so the maintained side scales with delta size, "
               "not |Emp|")
    table.note("`recomputes` stays 0: every source is delta-maintainable "
               "(binding ranges only), so no subscription fell back to "
               "full re-evaluation")
    return table


def e22_storage_db(rows=20_000, seed=43) -> Database:
    """The E22 on-disk table: ``People(name, age, city)``.

    Rows are generated sorted by name, so the spiller's partitioner
    produces clustered per-partition name ranges and min/max pruning
    has something to bite on — the layout a sorted bulk load leaves
    behind.
    """
    import random as _random

    from ..types import INTEGER, STRING, record, relation_type

    rng = _random.Random(seed)
    person = record("e22person", name=STRING, age=INTEGER, city=STRING)
    db = Database("e22")
    db.declare(
        "People",
        relation_type("e22people", person, key=("name",)),
        [
            (f"p{i:06d}", rng.randrange(90), f"c{rng.randrange(50)}")
            for i in range(rows)
        ],
    )
    return db


def e22_storage(rows=20_000, rows_per_partition=1_000) -> Table:
    """Out-of-core columnar storage: scan-time pushdown vs materialize.

    One table is spilled into ``rows // rows_per_partition`` columnar
    partitions, reopened cold, and scanned three ways — full
    materialization (every page of every partition), a selective
    identity scan (min/max pruning skips partitions), and a selective
    single-column projection (pruning plus dead-column page skips).
    The reader's decode counters are deterministic, so the ratios gate
    byte-identically across machines.  The sweep also checks the
    persisted-statistics acceptance bar: a freshly reopened database
    compiles the same join shape as the warm one without a single scan.
    """
    import shutil as _shutil
    import tempfile as _tempfile
    import time as _time

    from ..relational import open_database

    selective = rows - rows_per_partition  # the last partition only
    ident = f'{{EACH p IN People: p.name >= "p{selective:06d}"}}'
    proj = f'{{<p.city> OF EACH p IN People: p.name >= "p{selective:06d}"}}'

    table = Table(
        f"E22 Out-of-core storage: pushdown vs materialize "
        f"({rows} rows, {rows // rows_per_partition} partitions)",
        ["scan", "parts read", "parts pruned", "rows decoded",
         "cells decoded", "bytes read", "ms", "rows out"],
    )

    warm = e22_storage_db(rows=rows)
    tmp = _tempfile.mkdtemp(prefix="repro-e22-")
    try:
        path = f"{tmp}/e22"
        warm.spill(path, rows_per_partition=rows_per_partition)

        def timed_scan(label, run):
            cold = open_database(path)
            store = cold.relation("People").cold_store
            store.counters.reset()
            start = _time.perf_counter()
            out = run(cold)
            elapsed = _time.perf_counter() - start
            counters = store.counters.snapshot()
            table.add(label, counters["partitions_read"],
                      counters["partitions_pruned"],
                      counters["rows_decoded"], counters["cells_decoded"],
                      counters["bytes_read"], elapsed * 1e3, len(out))
            return out, counters

        _, full = timed_scan(
            "full materialize", lambda db: db.relation("People").rows()
        )
        expected = Session(warm).query(ident)
        ident_rows, _pruned = timed_scan(
            "selective scan", lambda db: Session(db).query(ident)
        )
        assert ident_rows == expected, "pruned scan diverged"
        proj_rows, projected = timed_scan(
            "selective projection", lambda db: Session(db).query(proj)
        )
        assert proj_rows == Session(warm).query(proj), "projection diverged"

        # Persisted stats: the reopened database plans the same join
        # shape as the warm one, and planning touches no partition.
        join = d.query(
            d.branch(
                d.each("a", "People"), d.each("b", "People"),
                pred=d.eq(d.a("a", "city"), d.a("b", "city")),
                targets=[d.a("a", "name"), d.a("b", "name")],
            )
        )

        def shape(plan):
            return [
                [step.source.describe() for step in branch.steps]
                for branch in plan.branches
            ]

        reopened = open_database(path)
        cold_plan = compile_query(reopened, join)
        plans_match = (
            shape(cold_plan) == shape(compile_query(warm, join))
            and reopened.relation("People").is_cold
        )
        assert plans_match, "reopened database planned differently"
    finally:
        _shutil.rmtree(tmp, ignore_errors=True)

    table.metric("storage_cells_scan_ratio",
                 ratio(full["cells_decoded"], projected["cells_decoded"]))
    table.metric("storage_rows_scan_ratio",
                 ratio(full["rows_decoded"], projected["rows_decoded"]))
    table.metric("storage_bytes_scan_ratio",
                 ratio(full["bytes_read"], projected["bytes_read"]))
    table.metric("storage_pushdown_rows_scanned", projected["rows_decoded"])
    table.metric("storage_plans_match", 1.0 if plans_match else 0.0)
    table.note("acceptance bar: the selective projection decodes >= 5x "
               "fewer rows, cells, and bytes than full materialization; "
               "decode counters are deterministic, so the *_scan_ratio "
               "metrics gate exactly")
    table.note("a freshly reopened database compiled the same join "
               "shape as the warm one from persisted statistics alone — "
               "every relation still cold afterwards")
    return table


#: Registry used by run_all and the benchmark files.
ALL_EXPERIMENTS = {
    "e01": e01_selectors,
    "e02": e02_constructor_basics,
    "e03": e03_lfp_convergence,
    "e04": e04_mutual_recursion,
    "e05": e05_semantics,
    "e06": e06_positivity,
    "e07": e07_equivalence,
    "e08": e08_set_vs_proof,
    "e08b": e08b_point_query,
    "e09": e09_pushdown,
    "e10": e10_quantgraph,
    "e11": e11_access_paths,
    "e12": e12_range_nesting,
    "e13": e13_specialization,
    "e14": e14_planner,
    "e15": e15_reopt,
    "e16": e16_batched,
    "e17": e17_columnar,
    "e18": e18_sharded,
    "e19": e19_serving,
    "e20": e20_vectors,
    "e21": e21_ivm,
    "e22": e22_storage,
}
