"""Benchmark harness and the thirteen reproduction experiments."""

from .experiments import ALL_EXPERIMENTS
from .harness import Table, measure, ratio

__all__ = ["ALL_EXPERIMENTS", "Table", "measure", "ratio"]
