"""Regenerate every experiment table: ``python -m repro.bench.run_all``.

Writes each table to stdout and to ``results/<id>.txt`` under the
repository root (or the directory given as the first argument).
"""

from __future__ import annotations

import pathlib
import sys
import time

from .experiments import ALL_EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    out_dir = pathlib.Path(argv[0]) if argv else pathlib.Path("results")
    out_dir.mkdir(parents=True, exist_ok=True)
    only = set(argv[1:]) if len(argv) > 1 else None
    for name, runner in ALL_EXPERIMENTS.items():
        if only and name not in only:
            continue
        start = time.perf_counter()
        table = runner()
        elapsed = time.perf_counter() - start
        text = table.render()
        print(text)
        print(f"[{name} completed in {elapsed:.1f}s]\n")
        (out_dir / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
