"""Regenerate every experiment table: ``python -m repro.bench.run_all``.

Writes each table to stdout and to ``results/<id>.txt`` under the
repository root (or the directory given as the first argument), plus a
machine-readable ``BENCH_<id>.json`` per experiment carrying the
wall-clock, the experiment's own metrics (scanned-row counters, speedup
factors — whatever the sweep recorded via ``Table.metric``), and a
**calibration** measurement: the time of a fixed pure-Python workload on
the same interpreter and machine.  The CI bench-gate divides wall-clocks
by the calibration before comparing against committed baselines, so a
slower runner does not read as a regression.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from .experiments import ALL_EXPERIMENTS

#: Bump when the JSON schema changes (the gate refuses mixed versions).
BENCH_SCHEMA = 1


def calibrate(rounds: int = 3) -> float:
    """Seconds for a fixed pure-Python workload (best of ``rounds``).

    Deliberately shaped like the executor's hot loops — dict probes,
    list comprehensions, tuple hashing — so the normalization tracks the
    machine/interpreter speed that actually matters here.
    """
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        table = {i: (i, i % 97) for i in range(20_000)}
        get = table.get
        pairs = [(get(i % 30_000), i) for i in range(60_000)]
        acc = set()
        acc.update((b, a) for a, b in pairs if a is not None)
        best = min(best, time.perf_counter() - start)
    return best


def bench_record(name: str, elapsed: float, calibration: float, metrics: dict) -> dict:
    normalized = elapsed / calibration if calibration > 0 else elapsed
    return {
        "schema": BENCH_SCHEMA,
        "experiment": name,
        "elapsed_s": round(elapsed, 4),
        "calibration_s": round(calibration, 4),
        "normalized": round(normalized, 2),
        "metrics": {k: round(v, 4) for k, v in metrics.items()},
    }


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    out_dir = pathlib.Path(argv[0]) if argv else pathlib.Path("results")
    out_dir.mkdir(parents=True, exist_ok=True)
    only = set(argv[1:]) if len(argv) > 1 else None
    calibration = calibrate()
    print(f"[calibration: {calibration * 1000:.1f} ms]\n")
    for name, runner in ALL_EXPERIMENTS.items():
        if only and name not in only:
            continue
        start = time.perf_counter()
        table = runner()
        elapsed = time.perf_counter() - start
        text = table.render()
        print(text)
        print(f"[{name} completed in {elapsed:.1f}s]\n")
        (out_dir / f"{name}.txt").write_text(text + "\n")
        record = bench_record(
            name, elapsed, calibration, getattr(table, "metrics", {})
        )
        (out_dir / f"BENCH_{name}.json").write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
