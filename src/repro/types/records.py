"""Record types: the element types of DBPL relations.

A record type is an ordered sequence of named, typed fields:

    TYPE infrontrec = RECORD front, back: parttype END

Field order matters: the paper's constructors copy tuples *positionally*
between structurally compatible record types (an ``infrontrel`` tuple
becomes an ``aheadrel`` tuple via ``EACH r IN Rel: TRUE`` even though the
attribute names differ — front/back vs head/tail).  Equality of record
types is structural on names and types; the type *name* is a label only.
"""

from __future__ import annotations

from ..errors import SchemaError
from .atomic import Type


class Field:
    """A single named field of a record type."""

    __slots__ = ("name", "type")

    def __init__(self, name: str, type: Type) -> None:
        self.name = name
        self.type = type

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Field({self.name}: {self.type.name})"


class RecordType(Type):
    """An ordered, named-field record type."""

    def __init__(self, name: str, fields: tuple[Field, ...] | list[Field]) -> None:
        fields = tuple(fields)
        if not fields:
            raise SchemaError(f"record type {name} must declare at least one field")
        seen: set[str] = set()
        for field in fields:
            if field.name in seen:
                raise SchemaError(
                    f"record type {name} declares field {field.name!r} twice"
                )
            seen.add(field.name)
        self.name = name
        self.fields = fields
        self._index = {field.name: i for i, field in enumerate(fields)}

    # -- field access -------------------------------------------------

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(field.name for field in self.fields)

    @property
    def arity(self) -> int:
        return len(self.fields)

    def has_attribute(self, attr: str) -> bool:
        return attr in self._index

    def index_of(self, attr: str) -> int:
        """Positional index of ``attr``; raises SchemaError when unknown."""
        try:
            return self._index[attr]
        except KeyError:
            raise SchemaError(
                f"record type {self.name} has no attribute {attr!r}; "
                f"attributes are {', '.join(self.attribute_names)}"
            ) from None

    def field_type(self, attr: str) -> Type:
        return self.fields[self.index_of(attr)].type

    # -- membership and compatibility ----------------------------------

    def contains(self, value: object) -> bool:
        """A record value is a tuple of field values in declaration order."""
        if not isinstance(value, tuple) or len(value) != len(self.fields):
            return False
        return all(f.type.contains(v) for f, v in zip(self.fields, value))

    def family(self) -> str:
        return "record:" + ",".join(
            f"{f.name}:{f.type.family()}" for f in self.fields
        )

    def structurally_equal(self, other: "RecordType") -> bool:
        """Same attribute names, order, and field families."""
        return (
            self.arity == other.arity
            and self.attribute_names == other.attribute_names
            and all(
                a.type.family() == b.type.family()
                for a, b in zip(self.fields, other.fields)
            )
        )

    def positionally_compatible(self, other: "RecordType") -> bool:
        """Same arity and pairwise-comparable field families.

        This is the compatibility the paper's identity branches rely on:
        an ``infrontrel`` tuple (front, back: parttype) may populate an
        ``aheadrel`` variable (head, tail: parttype) because the fields
        line up positionally.
        """
        return self.arity == other.arity and all(
            a.type.family() == b.type.family()
            for a, b in zip(self.fields, other.fields)
        )

    def __str__(self) -> str:  # pragma: no cover - trivial
        inner = "; ".join(f"{f.name}: {f.type.name}" for f in self.fields)
        return f"{self.name} = RECORD {inner} END"


def record(name: str, /, **fields: Type) -> RecordType:
    """Convenience builder: ``record("infrontrec", front=parttype, back=parttype)``.

    Keyword order is preserved (Python dicts are ordered), matching the
    declaration-order semantics of :class:`RecordType`.
    """
    return RecordType(name, tuple(Field(n, t) for n, t in fields.items()))
