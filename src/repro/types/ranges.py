"""Subrange types: ``partidtype IS RANGE 1..100``.

Section 2.1 of the paper uses the subrange type as the canonical example
of a type defined by a (restricted propositional) domain predicate:

    partidtype = { EACH p IN integer: 1 <= p AND p <= 100 }

:class:`RangeType` realizes exactly that domain set, and
:meth:`RangeType.domain_predicate` exposes the predicate in readable form
— the paper's point being that the type calculus and the expression
language share one logic.
"""

from __future__ import annotations

from ..errors import SchemaError
from .atomic import INTEGER, AtomicType, Type


class RangeType(Type):
    """An integer subrange ``RANGE lo..hi`` over an atomic base type."""

    def __init__(
        self,
        name: str,
        lo: int,
        hi: int,
        base: AtomicType = INTEGER,
    ) -> None:
        if base.kind not in ("integer", "cardinal"):
            raise SchemaError(
                f"RANGE types require an integral base, got {base.name}"
            )
        if lo > hi:
            raise SchemaError(f"empty RANGE {lo}..{hi} in type {name}")
        self.name = name
        self.lo = lo
        self.hi = hi
        self.base = base

    def contains(self, value: object) -> bool:
        return self.base.contains(value) and self.lo <= value <= self.hi  # type: ignore[operator]

    def family(self) -> str:
        return "numeric"

    def domain_predicate(self, var: str = "p") -> str:
        """The defining predicate, in the paper's notation."""
        return f"EACH {var} IN {self.base.name.lower()}: {self.lo} <= {var} AND {var} <= {self.hi}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name} = RANGE {self.lo}..{self.hi}"
