"""Enumeration types, MODULA-2 style.

An enumeration declares a small closed label set; values are represented
by their label strings.  Enumerations give the CAD examples realistic
attribute domains (object categories, colours) without inventing
machinery the paper does not discuss.
"""

from __future__ import annotations

from ..errors import SchemaError
from .atomic import Type


class EnumType(Type):
    """A closed set of symbolic labels, e.g. ``(chair, table, vase)``."""

    def __init__(self, name: str, labels: tuple[str, ...]) -> None:
        if not labels:
            raise SchemaError(f"enumeration {name} must declare at least one label")
        if len(set(labels)) != len(labels):
            raise SchemaError(f"enumeration {name} has duplicate labels")
        self.name = name
        self.labels = tuple(labels)
        self._label_set = frozenset(labels)

    def contains(self, value: object) -> bool:
        return isinstance(value, str) and value in self._label_set

    def family(self) -> str:
        return f"enum:{self.name}"

    def ordinal(self, label: str) -> int:
        """Position of ``label`` in the declaration order (MODULA-2 ORD)."""
        try:
            return self.labels.index(label)
        except ValueError:
            raise SchemaError(f"{label!r} is not a label of {self.name}") from None

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name} = ({', '.join(self.labels)})"
