"""Atomic data types of the DBPL type calculus.

The paper builds on a PASCAL/MODULA-2 style type system (section 2.1):
scalar domains, subrange types carved out of them by propositional
predicates, enumerations, records, and relations.  This module provides
the scalar leaves of that system.

Values are ordinary Python objects; a type is a *precise characterization*
of which objects belong to its domain set (the paper quotes [Deut 81]),
exposed through :meth:`Type.contains` and :meth:`Type.check`.
"""

from __future__ import annotations

from ..errors import TypeMismatchError


class Type:
    """Abstract base of every DBPL type.

    Subclasses implement :meth:`contains`; :meth:`check` turns a failed
    membership test into the ``<exception>`` arm of the paper's checked
    assignments.
    """

    #: Human-readable type name, used in error messages and pretty printing.
    name: str = "TYPE"

    def contains(self, value: object) -> bool:
        """Return True when ``value`` belongs to this type's domain set."""
        raise NotImplementedError

    def check(self, value: object, context: str = "") -> object:
        """Return ``value`` unchanged, or raise :class:`TypeMismatchError`."""
        if not self.contains(value):
            where = f" in {context}" if context else ""
            raise TypeMismatchError(
                f"value {value!r} is not of type {self.name}{where}"
            )
        return value

    #: Scalar family used to decide comparability; overridden by subclasses.
    def family(self) -> str:
        return self.name

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{self.__class__.__name__} {self.name}>"


class AtomicType(Type):
    """A built-in scalar domain (INTEGER, CARDINAL, STRING, BOOLEAN, REAL)."""

    def __init__(self, name: str, kind: str) -> None:
        self.name = name
        self.kind = kind

    def contains(self, value: object) -> bool:
        kind = self.kind
        if kind == "integer":
            return isinstance(value, int) and not isinstance(value, bool)
        if kind == "cardinal":
            return isinstance(value, int) and not isinstance(value, bool) and value >= 0
        if kind == "string":
            return isinstance(value, str)
        if kind == "boolean":
            return isinstance(value, bool)
        if kind == "real":
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if kind == "any":
            # The universal scalar domain used by the Datalog bridge,
            # where predicates carry no declared attribute types.
            return isinstance(value, (str, int, float, bool))
        raise AssertionError(f"unknown atomic kind {kind!r}")

    def family(self) -> str:
        if self.kind in ("integer", "cardinal", "real"):
            return "numeric"
        return self.kind


#: The scalar domains named in the paper's examples.
INTEGER = AtomicType("INTEGER", "integer")
CARDINAL = AtomicType("CARDINAL", "cardinal")
STRING = AtomicType("STRING", "string")
BOOLEAN = AtomicType("BOOLEAN", "boolean")
REAL = AtomicType("REAL", "real")
#: Universal scalar domain for untyped bridges (Datalog predicates).
ANY = AtomicType("ANY", "any")

#: Name -> instance map used by the DBPL binder.
ATOMIC_TYPES = {
    t.name: t for t in (INTEGER, CARDINAL, STRING, BOOLEAN, REAL, ANY)
}
