"""Cross-type compatibility rules used by the calculus type checker.

The paper's point in section 2 is that *one* logic serves the type level
and the expression level.  This module hosts the small set of judgments
the expression level needs:

* when two scalar types are comparable (``r.back = b.front``);
* when a record value can flow positionally into another record type
  (identity branches of constructors);
* when a relational expression value can be assigned to a relation
  variable (element compatibility plus the key check).
"""

from __future__ import annotations

from collections.abc import Iterable

from ..errors import TypeMismatchError
from .atomic import Type
from .records import RecordType
from .relations import RelationType


def scalar_comparable(a: Type, b: Type) -> bool:
    """True when values of ``a`` and ``b`` may appear in one comparison.

    Numeric types (INTEGER, CARDINAL, REAL, any RANGE) are mutually
    comparable; strings compare with strings; booleans with booleans;
    enumerations only with the same enumeration.
    """
    return a.family() == b.family()


def check_positional_flow(source: RecordType, target: RecordType) -> None:
    """Raise unless tuples of ``source`` may positionally fill ``target``."""
    if not source.positionally_compatible(target):
        raise TypeMismatchError(
            f"record type {source.name} ({source.family()}) cannot flow "
            f"positionally into {target.name} ({target.family()})"
        )


def check_relation_assignment(
    target: RelationType, rows: Iterable[tuple]
) -> tuple[tuple, ...]:
    """Type- and key-check an assignment ``rel := rex``.

    Returns the materialized row tuple so callers iterate only once.
    """
    materialized = tuple(rows)
    element = target.element
    for row in materialized:
        if not element.contains(row):
            raise TypeMismatchError(
                f"tuple {row!r} is not of element type {element.name} "
                f"(assignment to {target.name})"
            )
    target.check_key(materialized)
    return materialized
