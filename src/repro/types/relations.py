"""Relation types: ``reltype = RELATION key OF elementtype``.

Section 2.2 of the paper characterizes a relation type as an annotated
set type: the legal values are sets of element records that additionally
satisfy the key functional dependency

    ALL r1, r2 IN rel (r1.key = r2.key ==> r1 = r2).

:class:`RelationType` carries the element record type and the (possibly
empty) key attribute list.  An empty key means the whole tuple is the
identifier — a pure set, which is what constructed (derived) relations
use, mirroring the paper's ``RELATION ... OF`` ellipsis.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..errors import KeyConstraintError, SchemaError
from .atomic import Type
from .records import RecordType


class RelationType(Type):
    """The type of a relation variable: element record type plus key."""

    def __init__(
        self,
        name: str,
        element: RecordType,
        key: tuple[str, ...] | list[str] = (),
    ) -> None:
        key = tuple(key)
        for attr in key:
            if not element.has_attribute(attr):
                raise SchemaError(
                    f"relation type {name}: key attribute {attr!r} is not a "
                    f"field of {element.name}"
                )
        if len(set(key)) != len(key):
            raise SchemaError(f"relation type {name}: duplicate key attribute")
        self.name = name
        self.element = element
        self.key = key
        self._key_indexes = tuple(element.index_of(a) for a in key)

    # -- membership ----------------------------------------------------

    def contains(self, value: object) -> bool:
        """A relation value is an iterable of element tuples with unique keys."""
        if not isinstance(value, (set, frozenset, list, tuple)):
            return False
        if not all(self.element.contains(v) for v in value):
            return False
        try:
            self.check_key(value)
        except KeyConstraintError:
            return False
        return True

    def family(self) -> str:
        return "relation:" + self.element.family()

    # -- key constraint --------------------------------------------------

    def key_of(self, row: tuple) -> tuple:
        """Project a raw value tuple onto the key attributes."""
        return tuple(row[i] for i in self._key_indexes)

    def check_key(self, rows: Iterable[tuple]) -> None:
        """Enforce the key functional dependency over ``rows``.

        Implements the paper's checked assignment:

            IF ALL x1,x2 IN rex (x1.key=x2.key ==> x1=x2)
            THEN rel := rex ELSE <exception>
        """
        if not self.key:
            return
        seen: dict[tuple, tuple] = {}
        for row in rows:
            k = self.key_of(row)
            other = seen.get(k)
            if other is not None and other != row:
                raise KeyConstraintError(
                    f"relation type {self.name}: key {k!r} identifies both "
                    f"{other!r} and {row!r}"
                )
            seen[k] = row

    # -- structural relationships ----------------------------------------

    def keyless(self) -> "RelationType":
        """The same element type without a key (for derived relations)."""
        if not self.key:
            return self
        return RelationType(self.name + "'", self.element, ())

    def __str__(self) -> str:  # pragma: no cover - trivial
        key = ", ".join(self.key) if self.key else "..."
        return f"{self.name} = RELATION {key} OF {self.element.name}"


def relation_type(
    name: str, element: RecordType, key: Iterable[str] = ()
) -> RelationType:
    """Convenience builder mirroring ``RELATION key OF element``."""
    return RelationType(name, element, tuple(key))
