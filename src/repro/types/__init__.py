"""DBPL-style type system: atomic, subrange, enum, record, relation types.

See section 2 of the paper — "Types, Relations, and Predicates".
"""

from .atomic import (
    ANY,
    ATOMIC_TYPES,
    BOOLEAN,
    CARDINAL,
    INTEGER,
    REAL,
    STRING,
    AtomicType,
    Type,
)
from .checking import check_positional_flow, check_relation_assignment, scalar_comparable
from .enums import EnumType
from .ranges import RangeType
from .records import Field, RecordType, record
from .relations import RelationType, relation_type

__all__ = [
    "ANY",
    "ATOMIC_TYPES",
    "BOOLEAN",
    "CARDINAL",
    "INTEGER",
    "REAL",
    "STRING",
    "AtomicType",
    "EnumType",
    "Field",
    "RangeType",
    "RecordType",
    "RelationType",
    "Type",
    "check_positional_flow",
    "check_relation_assignment",
    "record",
    "relation_type",
    "scalar_comparable",
]
