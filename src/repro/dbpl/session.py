"""DBPL sessions: bind parsed declarations to library objects and run queries.

A :class:`Session` owns a :class:`~repro.relational.Database` and a type
environment seeded with the built-in scalar types.  ``execute`` accepts
DBPL source text (TYPE/VAR/SELECTOR/CONSTRUCTOR declarations, optionally
wrapped in a MODULE); ``query`` evaluates a query expression — a set
former or a selected/constructed range — and returns the raw rows;
``assign`` performs (possibly selector-checked) assignment.

This is the programmer-facing surface of the reproduction: the paper's
examples run verbatim (see ``examples/dbpl_tour.py``).
"""

from __future__ import annotations

from ..calculus import ast
from ..calculus.evaluator import Evaluator
from ..constructors import construct
from ..constructors.definition import Constructor
from ..errors import BindingError
from ..relational import Database
from ..selectors import Parameter, SelectedRelation, Selector
from ..types import (
    ATOMIC_TYPES,
    EnumType,
    Field,
    RangeType,
    RecordType,
    RelationType,
    Type,
)
from .astnodes import (
    ConstructorDecl,
    EnumTypeExpr,
    Module,
    RangeTypeExpr,
    RecordTypeExpr,
    RelationTypeExpr,
    SelectorDecl,
    TypeDecl,
    TypeName,
    VarDecl,
)
from .parser import parse_expression, parse_module


class Session:
    """An interactive DBPL scope over one database."""

    def __init__(self, db: Database | None = None, name: str = "session") -> None:
        self.db = db if db is not None else Database(name)
        self.types: dict[str, Type] = dict(ATOMIC_TYPES)
        self._anon = 0

    # -- declarations ---------------------------------------------------------

    def execute(self, source: str) -> Module:
        """Parse and bind DBPL declarations."""
        module = parse_module(source)
        for decl in module.declarations:
            self._bind(decl)
        return module

    def _bind(self, decl) -> None:
        if isinstance(decl, TypeDecl):
            self.types[decl.name] = self._resolve_type(decl.type, decl.name)
        elif isinstance(decl, VarDecl):
            rtype = self._named_type(decl.type.name)
            if not isinstance(rtype, RelationType):
                raise BindingError(
                    f"VAR {', '.join(decl.names)}: only relation-typed "
                    f"variables are supported, got {rtype.name}"
                )
            for name in decl.names:
                self.db.declare(name, rtype)
        elif isinstance(decl, SelectorDecl):
            self._bind_selector(decl)
        elif isinstance(decl, ConstructorDecl):
            self._bind_constructor(decl)
        else:
            raise BindingError(f"unsupported declaration {decl!r}")

    def _named_type(self, name: str) -> Type:
        try:
            return self.types[name]
        except KeyError:
            raise BindingError(f"unknown type {name!r}") from None

    def _resolve_type(self, texpr, name: str) -> Type:
        if isinstance(texpr, TypeName):
            return self._named_type(texpr.name)
        if isinstance(texpr, RangeTypeExpr):
            return RangeType(name, texpr.lo, texpr.hi)
        if isinstance(texpr, EnumTypeExpr):
            return EnumType(name, texpr.labels)
        if isinstance(texpr, RecordTypeExpr):
            fields = []
            for group in texpr.fields:
                ftype = self._resolve_type(group.type, f"{name}_field")
                for fname in group.names:
                    fields.append(Field(fname, ftype))
            return RecordType(name, tuple(fields))
        if isinstance(texpr, RelationTypeExpr):
            element = self._resolve_type(texpr.element, f"{name}_rec")
            if not isinstance(element, RecordType):
                raise BindingError(
                    f"relation type {name}: element must be a record type"
                )
            return RelationType(name, element, texpr.key)
        raise BindingError(f"unsupported type expression {texpr!r}")

    def _bind_params(self, decls) -> tuple[Parameter, ...]:
        return tuple(Parameter(p.name, self._named_type(p.type.name)) for p in decls)

    def _scalar_param_fixup(self, node, params: tuple[Parameter, ...]):
        """Rewrite RelRefs naming scalar formals into ParamRefs."""
        scalars = {p.name for p in params if not p.is_relation}
        if not scalars:
            return node
        from ..calculus.subst import transform

        def rule(n):
            if isinstance(n, ast.RelRef) and n.name in scalars:
                return ast.ParamRef(n.name)
            return None

        return transform(node, rule)

    def _bind_selector(self, decl: SelectorDecl) -> None:
        rel_type = self._named_type(decl.rel_type.name)
        if not isinstance(rel_type, RelationType):
            raise BindingError(f"selector {decl.name}: FOR type must be a relation")
        params = self._bind_params(decl.params)
        pred = self._scalar_param_fixup(decl.pred, params)
        selector = Selector(
            decl.name, decl.formal_rel, rel_type, decl.var, pred, params
        )
        self.db.register_selector(selector)

    def _bind_constructor(self, decl: ConstructorDecl) -> None:
        rel_type = self._named_type(decl.rel_type.name)
        result_type = self._named_type(decl.result_type.name)
        if not isinstance(rel_type, RelationType) or not isinstance(
            result_type, RelationType
        ):
            raise BindingError(
                f"constructor {decl.name}: FOR and result types must be relations"
            )
        params = self._bind_params(decl.params)
        body = self._scalar_param_fixup(decl.body, params)
        constructor = Constructor(
            decl.name, decl.formal_rel, rel_type, result_type, body, params
        )
        self.db.register_constructor(constructor)

    # -- queries and statements ------------------------------------------------------

    def query(self, source: str, mode: str = "auto") -> set[tuple]:
        """Evaluate a query expression; returns the raw row set."""
        node = parse_expression(source)
        if isinstance(node, ast.Query):
            return Evaluator(self.db).eval_query(node)
        if isinstance(node, ast.Constructed):
            return set(construct(self.db, node, mode=mode).rows)
        if isinstance(node, (ast.RelRef, ast.Selected, ast.QueryRange)):
            value = Evaluator(self.db).resolve_range(node, {})
            return set(value.rows)
        raise BindingError(f"not a query expression: {source!r}")

    def assign(self, target: str, rows) -> None:
        """``Target := rows`` or ``Target[sel(args)] := rows``."""
        node = parse_expression(target)
        rows = [tuple(r) for r in rows]
        if isinstance(node, ast.RelRef):
            self.db.relation(node.name).assign(rows)
            return
        if isinstance(node, ast.Selected) and isinstance(node.base, ast.RelRef):
            selector = self.db.selector(node.selector)
            args = tuple(
                a.value if isinstance(a, ast.Const) else self._arg_value(a)
                for a in node.args
            )
            view = SelectedRelation(
                self.db, self.db.relation(node.base.name), selector, args
            )
            view.assign(rows)
            return
        raise BindingError(f"not an assignable target: {target!r}")

    def _arg_value(self, arg):
        if isinstance(arg, ast.RelRef):
            return self.db.relation(arg.name)
        raise BindingError(f"unsupported selector argument {arg!r}")

    def insert(self, relation: str, rows) -> None:
        self.db.relation(relation).insert([tuple(r) for r in rows])

    def relation(self, name: str):
        return self.db.relation(name)
