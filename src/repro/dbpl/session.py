"""DBPL sessions: bind parsed declarations to library objects and run queries.

A :class:`Session` owns a :class:`~repro.relational.Database` and a type
environment seeded with the built-in scalar types.  ``execute`` accepts
DBPL source text (TYPE/VAR/SELECTOR/CONSTRUCTOR declarations, optionally
wrapped in a MODULE); ``query`` evaluates a query expression — a set
former or a selected/constructed range — and returns the raw rows;
``assign`` performs (possibly selector-checked) assignment.

This is the programmer-facing surface of the reproduction: the paper's
examples run verbatim (see ``examples/dbpl_tour.py``).

Queries run through the compiled executor pipeline
(:func:`repro.compiler.compile_query` + the executor-backend registry),
behind a per-session :class:`~repro.dbpl.serving.PlanCache`: repeated
queries that differ only in compared constants share one compiled plan,
rebinding constants per call.  Recursive ``Rel{con(args)}`` ranges run
the compiled fixpoint engine.  The knobs:

* ``query(..., mode="interpreted")`` forces the reference tuple-at-a-time
  evaluator (the semantic baseline every backend is tested against);
  ``mode="naive"``/``"seminaive"`` pick an interpreted fixpoint engine
  for constructed ranges.
* ``query(..., executor=...)`` / ``Session(executor=...)`` select a
  registered backend (``batch``, ``rowbatch``, ``tuple``, ``sharded``).
* ``prepare(source)`` compiles once and returns a
  :class:`~repro.dbpl.serving.PreparedQuery` handle for repeated
  execution with rebound constants.
* ``snapshot()`` pins the current committed state of every relation;
  pass it to ``query``/``execute`` for repeatable reads under
  concurrent writers.

Query shapes the compiler cannot translate fall back to the interpreted
evaluator transparently (compile-time errors only — runtime errors
propagate).

Every query and declaration also passes through the static analyzer
(:mod:`repro.analysis`) before touching the planner.  ``Session.check``
returns the diagnostics for a source string without executing it; the
``analysis`` knob picks the gate policy (``"strict"`` rejects
error-level diagnostics with a span-carrying
:class:`~repro.errors.AnalysisError`, ``"lint"`` reports without
rejecting, ``"off"`` skips analysis); ``on_diagnostic`` observes every
non-fatal diagnostic; ``last_diagnostics`` keeps the most recent batch.
Branches the analyzer proves empty (contradictory or type-dead
predicates) are pruned before the planner costs them.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from ..analysis.diagnostics import Diagnostic, Diagnostics, Span
from ..calculus import ast
from ..calculus.evaluator import Evaluator
from ..compiler import construct_compiled
from ..compiler.options import _UNSET, ExecOptions, resolve_options
from ..constructors import construct
from ..constructors.definition import Constructor
from ..errors import (
    AnalysisError,
    BindingError,
    DBPLError,
    DBPLSyntaxError,
    TranslationError,
)
from ..relational import Database
from ..selectors import Parameter, SelectedRelation, Selector
from ..types import (
    ATOMIC_TYPES,
    EnumType,
    Field,
    RangeType,
    RecordType,
    RelationType,
    Type,
)
from .astnodes import (
    ConstructorDecl,
    EnumTypeExpr,
    Module,
    RangeTypeExpr,
    RecordTypeExpr,
    RelationTypeExpr,
    SelectorDecl,
    TypeDecl,
    TypeName,
    VarDecl,
)
from .parser import parse_expression, parse_module
from .serving import (
    DEFAULT_PLAN_CACHE_SIZE,
    DatabaseSnapshot,
    PlanCache,
    PreparedPlan,
    PreparedQuery,
    parameterize,
    range_query,
)
from .subscriptions import SubscriptionRegistry

if TYPE_CHECKING:
    from ..analysis.checks import AnalysisResult


def _checks():
    """The static-analyzer module, imported on first use.

    ``analysis.checks`` imports this package for the parser's AST nodes,
    so an eager import here would make ``import repro.analysis.checks``
    order-dependent — whichever side loads first would see the other
    half-initialized.  Deferring to call time breaks the cycle in both
    directions.
    """
    from ..analysis import checks

    return checks


#: Declarations start with one of these; used by :meth:`Session.check` to
#: decide between the module and expression grammars.
_DECL_KEYWORDS = ("MODULE", "TYPE", "VAR", "SELECTOR", "CONSTRUCTOR")

ANALYSIS_MODES = ("strict", "lint", "off")

_ANALYSIS_CACHE_SIZE = 256

#: Diagnostic codes for runtime execution-strategy degradations (the
#: compile-time detours keep DBPL900/DBPL901 in ``_note_fallback``).
_EXEC_FALLBACK_CODES = {
    "process_pool": "DBPL902",
    "ship": "DBPL903",
    "snapshot_sharded": "DBPL904",
}


class Session:
    """An interactive DBPL scope over one database."""

    def __init__(
        self,
        db: Database | None = None,
        name: str = "session",
        executor: str | None = _UNSET,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        analysis: str = _UNSET,
        on_diagnostic=None,
        *,
        options: ExecOptions | None = None,
    ) -> None:
        options = resolve_options(
            options, "Session", executor=executor, analysis=analysis
        )
        if options.analysis is None:
            options = options.replace(analysis="strict")
        if options.analysis not in ANALYSIS_MODES:
            raise ValueError(
                f"analysis must be one of {ANALYSIS_MODES}, got {options.analysis!r}"
            )
        #: Session-level execution defaults; per-call options layer over
        #: these (set fields on the call side win).
        self.options = options
        self.db = db if db is not None else Database(name)
        self.types: dict[str, Type] = dict(ATOMIC_TYPES)
        self.executor = options.executor
        self.plan_cache = PlanCache(plan_cache_size)
        self.analysis = options.analysis
        self.on_diagnostic = on_diagnostic
        self.last_diagnostics = Diagnostics()
        #: How many times execution left the requested path: "interpreted"
        #: counts DBPLError → reference-evaluator re-runs, "construct"
        #: counts compiled-fixpoint → interpreted-fixpoint fallbacks,
        #: "process_pool" counts shard pools degrading to threads (no
        #: fork), "ship" counts shipped vector shards reverting to
        #: fork-time inheritance, "snapshot_sharded" counts snapshot
        #: executions demoting executor="sharded" to "batch".  Each
        #: increment also emits a DBPL90x hint to ``on_diagnostic``.
        self.fallbacks = {
            "interpreted": 0,
            "construct": 0,
            "process_pool": 0,
            "ship": 0,
            "snapshot_sharded": 0,
        }
        self._analysis_cache: OrderedDict[tuple, AnalysisResult] = OrderedDict()
        self._anon = 0

    # -- static analysis ------------------------------------------------------

    def check(self, source: str) -> Diagnostics:
        """Statically analyze ``source`` without executing it.

        Accepts either DBPL declarations (module grammar) or a query
        expression; syntax errors come back as ``DBPL000`` diagnostics
        rather than raising, so editors and CI can report everything in
        one pass.  The result is also stored on ``last_diagnostics``.
        """
        try:
            if source.lstrip().startswith(_DECL_KEYWORDS):
                module = parse_module(source)
                checks = _checks()
                diags = checks.analyze_module(
                    module, checks.Scope.from_session(self)
                ).diagnostics
            else:
                node = parse_expression(source)
                diags = self._analysis_result(node, source).diagnostics
        except DBPLSyntaxError as exc:
            diags = Diagnostics()
            diags.error(
                "DBPL000",
                f"syntax error: {exc}",
                span=Span(exc.line, exc.column),
            )
        self.last_diagnostics = diags
        return diags

    def _analysis_result(self, node, source: str) -> AnalysisResult:
        """Analyze a parsed query node through the session analysis cache.

        Keyed by (source, scope stamp): declarations only accumulate, so
        a stamp match means the same names resolve the same way and the
        cached result is still valid.
        """
        checks = _checks()
        scope = checks.Scope.from_session(self)
        key = (source, scope.stamp())
        result = self._analysis_cache.get(key)
        if result is not None:
            self._analysis_cache.move_to_end(key)
            return result
        result = checks.analyze_query(node, scope)
        self._analysis_cache[key] = result
        while len(self._analysis_cache) > _ANALYSIS_CACHE_SIZE:
            self._analysis_cache.popitem(last=False)
        return result

    def _gate(
        self, node, source: str, analysis: str | None = None
    ) -> AnalysisResult | None:
        """The analyzer front gate for :meth:`query` and :meth:`prepare`.

        strict — error diagnostics raise :class:`AnalysisError` (with the
        first error's span) before any compilation; lint — everything is
        reported but nothing raises; off — returns None untouched.
        Diagnostics that do not raise go to the ``on_diagnostic`` hook.
        ``analysis`` overrides the session policy for one call
        (``ExecOptions.analysis`` on query/prepare/subscribe).
        """
        mode = analysis if analysis is not None else self.analysis
        if mode == "off":
            return None
        result = self._analysis_result(node, source)
        self.last_diagnostics = result.diagnostics
        if mode == "strict":
            result.diagnostics.raise_if_errors(
                "query rejected by static analysis", cls=AnalysisError
            )
        if self.on_diagnostic is not None:
            for diag in result.diagnostics:
                self.on_diagnostic(diag)
        return result

    def _note_fallback(self, kind: str, source: str, exc: Exception) -> None:
        """Record (and surface) a departure from the compiled path.

        Production callers watching ``on_diagnostic`` see a hint-severity
        DBPL900 (query → interpreted evaluator) or DBPL901 (compiled
        fixpoint → interpreted fixpoint) naming the query and the
        compile-time error that forced the detour; ``fallbacks`` keeps
        the running counts.
        """
        self.fallbacks[kind] += 1
        if self.on_diagnostic is not None:
            code = "DBPL900" if kind == "interpreted" else "DBPL901"
            target = (
                "interpreted evaluator"
                if kind == "interpreted"
                else "interpreted fixpoint engine"
            )
            self.on_diagnostic(
                Diagnostic(
                    code,
                    "hint",
                    f"query fell back to the {target}: {exc}",
                    data={"source": source, "error": exc},
                )
            )

    def _note_exec_fallback(self, kind: str, detail: str) -> None:
        """Record a *runtime* degradation reported by the executors.

        The compiled path was kept, but not the requested physical
        strategy: a process pool ran on threads (DBPL902), a shippable
        shard pipeline reverted to fork-time inheritance (DBPL903), or a
        snapshot execution demoted the sharded executor to batch
        (DBPL904).  These used to happen silently; counters plus
        hint-severity diagnostics make them observable without changing
        any result.
        """
        if kind not in self.fallbacks:
            self.fallbacks[kind] = 0
        self.fallbacks[kind] += 1
        if self.on_diagnostic is not None:
            code = _EXEC_FALLBACK_CODES.get(kind, "DBPL902")
            self.on_diagnostic(
                Diagnostic(code, "hint", detail, data={"kind": kind})
            )

    # -- declarations ---------------------------------------------------------

    def execute(self, source: str) -> Module:
        """Parse and bind DBPL declarations.

        Declarations are analyzed first (populating ``last_diagnostics``
        and the ``on_diagnostic`` hook), but the binder's own errors
        stay authoritative — analysis never rejects a declaration the
        binder accepts.
        """
        module = parse_module(source)
        if self.analysis != "off":
            checks = _checks()
            diags = checks.analyze_module(
                module, checks.Scope.from_session(self)
            ).diagnostics
            self.last_diagnostics = diags
            if self.on_diagnostic is not None:
                for diag in diags:
                    self.on_diagnostic(diag)
        for decl in module.declarations:
            self._bind(decl)
        return module

    def _bind(self, decl) -> None:
        if isinstance(decl, TypeDecl):
            self.types[decl.name] = self._resolve_type(decl.type, decl.name)
        elif isinstance(decl, VarDecl):
            rtype = self._named_type(decl.type.name)
            if not isinstance(rtype, RelationType):
                raise BindingError(
                    f"VAR {', '.join(decl.names)}: only relation-typed "
                    f"variables are supported, got {rtype.name}"
                )
            for name in decl.names:
                self.db.declare(name, rtype)
        elif isinstance(decl, SelectorDecl):
            self._bind_selector(decl)
        elif isinstance(decl, ConstructorDecl):
            self._bind_constructor(decl)
        else:
            raise BindingError(f"unsupported declaration {decl!r}")

    def _named_type(self, name: str) -> Type:
        try:
            return self.types[name]
        except KeyError:
            raise BindingError(f"unknown type {name!r}") from None

    def _resolve_type(self, texpr, name: str) -> Type:
        if isinstance(texpr, TypeName):
            return self._named_type(texpr.name)
        if isinstance(texpr, RangeTypeExpr):
            return RangeType(name, texpr.lo, texpr.hi)
        if isinstance(texpr, EnumTypeExpr):
            return EnumType(name, texpr.labels)
        if isinstance(texpr, RecordTypeExpr):
            fields = []
            for group in texpr.fields:
                ftype = self._resolve_type(group.type, f"{name}_field")
                for fname in group.names:
                    fields.append(Field(fname, ftype))
            return RecordType(name, tuple(fields))
        if isinstance(texpr, RelationTypeExpr):
            element = self._resolve_type(texpr.element, f"{name}_rec")
            if not isinstance(element, RecordType):
                raise BindingError(
                    f"relation type {name}: element must be a record type"
                )
            return RelationType(name, element, texpr.key)
        raise BindingError(f"unsupported type expression {texpr!r}")

    def _bind_params(self, decls) -> tuple[Parameter, ...]:
        return tuple(Parameter(p.name, self._named_type(p.type.name)) for p in decls)

    def _scalar_param_fixup(self, node, params: tuple[Parameter, ...]):
        """Rewrite RelRefs naming scalar formals into ParamRefs."""
        scalars = {p.name for p in params if not p.is_relation}
        if not scalars:
            return node
        from ..calculus.subst import transform

        def rule(n):
            if isinstance(n, ast.RelRef) and n.name in scalars:
                return ast.ParamRef(n.name)
            return None

        return transform(node, rule)

    def _bind_selector(self, decl: SelectorDecl) -> None:
        rel_type = self._named_type(decl.rel_type.name)
        if not isinstance(rel_type, RelationType):
            raise BindingError(f"selector {decl.name}: FOR type must be a relation")
        params = self._bind_params(decl.params)
        pred = self._scalar_param_fixup(decl.pred, params)
        selector = Selector(
            decl.name, decl.formal_rel, rel_type, decl.var, pred, params
        )
        self.db.register_selector(selector)

    def _bind_constructor(self, decl: ConstructorDecl) -> None:
        rel_type = self._named_type(decl.rel_type.name)
        result_type = self._named_type(decl.result_type.name)
        if not isinstance(rel_type, RelationType) or not isinstance(
            result_type, RelationType
        ):
            raise BindingError(
                f"constructor {decl.name}: FOR and result types must be relations"
            )
        params = self._bind_params(decl.params)
        body = self._scalar_param_fixup(decl.body, params)
        constructor = Constructor(
            decl.name, decl.formal_rel, rel_type, result_type, body, params
        )
        self.db.register_constructor(constructor)

    # -- queries and statements ------------------------------------------------------

    def query(
        self,
        source: str,
        mode: str = "auto",
        executor: str | None = _UNSET,
        snapshot: DatabaseSnapshot | None = _UNSET,
        *,
        options: ExecOptions | None = None,
    ) -> set[tuple]:
        """Evaluate a query expression; returns the raw row set.

        The default path compiles the query (through the session plan
        cache) and runs it on a registered executor backend;
        ``mode="interpreted"`` forces the reference evaluator instead,
        and ``mode="naive"``/``"seminaive"`` pick an interpreted
        fixpoint engine for constructed ranges.  Execution knobs arrive
        on ``options`` (layered over the session's own); a snapshot pins
        the relation state compiled set formers read (see
        :meth:`snapshot`) but does not apply to constructed ranges or
        interpreted fallbacks.

        Fallbacks off the compiled path are observable: untranslatable
        set formers re-run on the reference evaluator and constructed
        ranges whose fixpoint will not compile re-run on the interpreted
        engine — each bumping :attr:`fallbacks` and emitting a DBPL90x
        hint to ``on_diagnostic``.  Only compile-time
        :class:`TranslationError` triggers the constructed-range
        fallback; an :class:`EvaluationError` mid-execution propagates
        (re-running after partial evaluation would hide real bugs).
        """
        options = resolve_options(
            options, "Session.query", executor=executor, snapshot=snapshot
        ).over(self.options)
        node = parse_expression(source)
        analysis = self._gate(node, source, analysis=options.analysis)
        if mode == "interpreted":
            return self._query_interpreted(node, source)
        if isinstance(node, ast.Constructed):
            if mode in ("naive", "seminaive"):
                return set(construct(self.db, node, mode=mode).rows)
            try:
                return set(
                    construct_compiled(self.db, node, options=options).rows
                )
            except TranslationError as exc:
                self._note_fallback("construct", source, exc)
                return set(construct(self.db, node, mode=mode).rows)
        if isinstance(node, (ast.RelRef, ast.Selected, ast.QueryRange)):
            node = range_query(node)
        if isinstance(node, ast.Query):
            if analysis is not None:
                # Branches the analyzer proved empty never reach the
                # planner.  Safe here (constants are fixed for this call);
                # prepare() skips this because rebinding could revive them.
                node = analysis.prune(node)
            try:
                plan, constants = self._prepared_plan(node, options)
            except DBPLError as exc:
                # Untranslatable shape (compile-time only): reference
                # evaluator gives the same answers, one tuple at a time.
                self._note_fallback("interpreted", source, exc)
                return Evaluator(self.db).eval_query(node)
            return plan.run(constants, snapshot=options.snapshot)
        raise BindingError(f"not a query expression: {source!r}")

    def _query_interpreted(self, node, source: str) -> set[tuple]:
        """The reference path: tuple-at-a-time, no compiler involved."""
        if isinstance(node, ast.Query):
            return Evaluator(self.db).eval_query(node)
        if isinstance(node, ast.Constructed):
            return set(construct(self.db, node).rows)
        if isinstance(node, (ast.RelRef, ast.Selected, ast.QueryRange)):
            value = Evaluator(self.db).resolve_range(node, {})
            return set(value.rows)
        raise BindingError(f"not a query expression: {source!r}")

    def _prepared_plan(
        self, node: ast.Query, options: ExecOptions
    ) -> tuple[PreparedPlan, tuple]:
        """Fetch-or-compile the cached plan for ``node``'s shape.

        Cache keys are ``(shape,) + options.cache_key()`` — the
        normalized options, so per-execution fields (snapshot, analysis)
        never fragment the cache and both option spellings share plans.
        """
        shape, constants = parameterize(node)
        epoch = self.db.stats.epoch()
        key = (shape,) + options.cache_key()
        plan = self.plan_cache.get(key, epoch)
        if plan is None:
            plan = PreparedPlan(
                self.db, shape, constants, epoch=epoch,
                options=options.replace(snapshot=None, analysis=None),
            )
            plan = self.plan_cache.put(key, plan, epoch)
        # (Re)wire on every fetch: cached plans predate this session's
        # hook state, and the assignment is idempotent.
        plan.on_fallback = self._note_exec_fallback
        return plan, constants

    def prepare(
        self,
        source: str,
        executor: str | None = _UNSET,
        *,
        options: ExecOptions | None = None,
    ) -> PreparedQuery:
        """Compile ``source`` once for repeated parameterized execution.

        Constants compared in predicates become rebindable slots:
        ``prepare('{EACH r IN R: r.x = "a"}').execute("b")`` runs the
        same plan with ``"b"`` bound.  Plans come from (and populate)
        the session plan cache, so preparing an already-hot shape is
        free.  Constructed (fixpoint) ranges cannot be prepared — their
        result is recomputed state, not a parameterized scan; evaluate
        them with :meth:`query`.
        """
        options = resolve_options(
            options, "Session.prepare", executor=executor
        ).over(self.options)
        node = parse_expression(source)
        if isinstance(node, (ast.RelRef, ast.Selected, ast.QueryRange)):
            node = range_query(node)
        if isinstance(node, ast.Constructed):
            raise BindingError(
                f"constructed range {source!r} cannot be prepared; "
                "query() runs the compiled fixpoint engine directly"
            )
        if not isinstance(node, ast.Query):
            raise BindingError(f"not a query expression: {source!r}")
        self._gate(node, source, analysis=options.analysis)
        plan, constants = self._prepared_plan(node, options)
        return PreparedQuery(plan, constants, source)

    def subscribe(
        self,
        source: str,
        on_change=None,
        executor: str | None = _UNSET,
        *,
        options: ExecOptions | None = None,
    ):
        """Materialize ``source`` once and keep the result maintained.

        Returns a :class:`~repro.dbpl.subscriptions.Subscription` whose
        :meth:`~repro.dbpl.subscriptions.Subscription.rows` always equal
        a fresh :meth:`query` of the same source.  Set formers and
        ranges are maintained incrementally by derivation counting;
        constructed ranges keep their converged fixpoint and resume
        semi-naive iteration on inserts (deletes re-run).  ``on_change``
        observes each net change (it runs inside the committing write —
        do not mutate relations from it);
        :meth:`~repro.dbpl.subscriptions.Subscription.changes` drains
        the same events as an iterator.

        Subscriptions read live state, so ``snapshot`` does not apply;
        and unlike :meth:`query` there is no interpreted fallback — an
        untranslatable shape raises rather than silently degrading to
        per-write recomputation on the reference evaluator.
        """
        options = resolve_options(
            options, "Session.subscribe", executor=executor
        ).over(self.options)
        if options.snapshot is not None:
            raise ValueError(
                "subscriptions maintain live state; snapshot= does not apply"
            )
        node = parse_expression(source)
        analysis = self._gate(node, source, analysis=options.analysis)
        registry = SubscriptionRegistry.ensure(self.db)
        if isinstance(node, ast.Constructed):
            return registry.subscribe_fixpoint(node, source, options, on_change)
        if isinstance(node, (ast.RelRef, ast.Selected, ast.QueryRange)):
            node = range_query(node)
        if not isinstance(node, ast.Query):
            raise BindingError(f"not a query expression: {source!r}")
        if analysis is not None:
            node = analysis.prune(node)
        return registry.subscribe_query(node, source, options, on_change)

    def snapshot(self) -> DatabaseSnapshot:
        """Pin the current committed state of every relation.

        Pass the returned snapshot to :meth:`query` or
        ``PreparedQuery.execute`` for repeatable reads: compiled scans
        and index probes see exactly the pinned versions, regardless of
        concurrent writers.
        """
        return DatabaseSnapshot(self.db)

    def assign(self, target: str, rows) -> None:
        """``Target := rows`` or ``Target[sel(args)] := rows``."""
        node = parse_expression(target)
        rows = [tuple(r) for r in rows]
        if isinstance(node, ast.RelRef):
            self.db.relation(node.name).assign(rows)
            return
        if isinstance(node, ast.Selected) and isinstance(node.base, ast.RelRef):
            selector = self.db.selector(node.selector)
            args = tuple(
                a.value if isinstance(a, ast.Const) else self._arg_value(a)
                for a in node.args
            )
            view = SelectedRelation(
                self.db, self.db.relation(node.base.name), selector, args
            )
            view.assign(rows)
            return
        raise BindingError(f"not an assignable target: {target!r}")

    def _arg_value(self, arg):
        if isinstance(arg, ast.RelRef):
            return self.db.relation(arg.name)
        raise BindingError(f"unsupported selector argument {arg!r}")

    def insert(self, relation: str, rows) -> None:
        self.db.relation(relation).insert([tuple(r) for r in rows])

    def relation(self, name: str):
        return self.db.relation(name)
