"""Lexer for the DBPL surface syntax used in the paper.

Token kinds: keywords (upper-case reserved words), identifiers, integer
and string literals, and punctuation.  ``(* ... *)`` comments nest, as
in MODULA-2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DBPLSyntaxError

KEYWORDS = {
    "MODULE", "TYPE", "VAR", "SELECTOR", "CONSTRUCTOR", "FOR", "BEGIN", "END",
    "EACH", "IN", "SOME", "ALL", "NOT", "AND", "OR", "TRUE", "FALSE",
    "RECORD", "RELATION", "OF", "RANGE", "DIV", "MOD", "IS",
}

SYMBOLS = [
    "<=", ">=", "<>", "..", ":=",
    ";", ":", ",", ".", "(", ")", "[", "]", "{", "}",
    "<", ">", "=", "+", "-", "*",
]


@dataclass(frozen=True)
class Token:
    kind: str  # keyword name, "ident", "int", "string", symbol text, "eof"
    text: str
    line: int
    column: int
    end_line: int = 0  # position one past the token's raw text
    end_column: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind!r}, {self.text!r} @{self.line}:{self.column})"


def _end_of(line: int, col: int, raw: str) -> tuple[int, int]:
    newlines = raw.count("\n")
    if newlines:
        return line + newlines, len(raw) - raw.rfind("\n")
    return line, col + len(raw)


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    line = 1
    col = 1
    length = len(source)

    def emit(kind: str, text: str, raw: str) -> None:
        end_line, end_col = _end_of(line, col, raw)
        tokens.append(Token(kind, text, line, col, end_line, end_col))

    def advance(text: str) -> None:
        nonlocal line, col
        newlines = text.count("\n")
        if newlines:
            line += newlines
            col = len(text) - text.rfind("\n")
        else:
            col += len(text)

    while pos < length:
        ch = source[pos]
        # whitespace
        if ch in " \t\r\n":
            end = pos
            while end < length and source[end] in " \t\r\n":
                end += 1
            advance(source[pos:end])
            pos = end
            continue
        # nesting comments (* ... *)
        if source.startswith("(*", pos):
            depth = 1
            end = pos + 2
            while end < length and depth:
                if source.startswith("(*", end):
                    depth += 1
                    end += 2
                elif source.startswith("*)", end):
                    depth -= 1
                    end += 2
                else:
                    end += 1
            if depth:
                raise DBPLSyntaxError("unterminated comment", line, col)
            advance(source[pos:end])
            pos = end
            continue
        # string literals
        if ch == '"':
            end = source.find('"', pos + 1)
            if end < 0:
                raise DBPLSyntaxError("unterminated string literal", line, col)
            text = source[pos : end + 1]
            emit("string", text[1:-1], text)
            advance(text)
            pos = end + 1
            continue
        # numbers
        if ch.isdigit():
            end = pos
            while end < length and source[end].isdigit():
                end += 1
            # do not swallow the '..' of RANGE bounds
            emit("int", source[pos:end], source[pos:end])
            advance(source[pos:end])
            pos = end
            continue
        # identifiers and keywords
        if ch.isalpha() or ch == "_":
            end = pos
            while end < length and (source[end].isalnum() or source[end] == "_"):
                end += 1
            word = source[pos:end]
            kind = word if word in KEYWORDS else "ident"
            emit(kind, word, word)
            advance(word)
            pos = end
            continue
        # symbols (longest first)
        for symbol in SYMBOLS:
            if source.startswith(symbol, pos):
                emit(symbol, symbol, symbol)
                advance(symbol)
                pos += len(symbol)
                break
        else:
            raise DBPLSyntaxError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", "", line, col, line, col))
    return tokens
