"""DBPL surface language: lexer, parser, and interactive sessions."""

from .astnodes import (
    ConstructorDecl,
    EnumTypeExpr,
    FieldGroup,
    Module,
    ParamDecl,
    RangeTypeExpr,
    RecordTypeExpr,
    RelationTypeExpr,
    SelectorDecl,
    TypeDecl,
    TypeName,
    VarDecl,
)
from .lexer import Token, tokenize
from .parser import Parser, parse_declarations, parse_expression, parse_module
from .serving import (
    DEFAULT_PLAN_CACHE_SIZE,
    DatabaseSnapshot,
    PlanCache,
    PreparedPlan,
    PreparedQuery,
    parameterize,
    range_query,
)
from .session import Session
from .subscriptions import ChangeEvent, Subscription, SubscriptionRegistry

__all__ = [
    "ChangeEvent",
    "ConstructorDecl",
    "DEFAULT_PLAN_CACHE_SIZE",
    "DatabaseSnapshot",
    "EnumTypeExpr",
    "FieldGroup",
    "Module",
    "ParamDecl",
    "Parser",
    "PlanCache",
    "PreparedPlan",
    "PreparedQuery",
    "RangeTypeExpr",
    "RecordTypeExpr",
    "RelationTypeExpr",
    "SelectorDecl",
    "Session",
    "Subscription",
    "SubscriptionRegistry",
    "Token",
    "TypeDecl",
    "TypeName",
    "VarDecl",
    "parameterize",
    "parse_declarations",
    "parse_expression",
    "parse_module",
    "range_query",
    "tokenize",
]
