"""DBPL surface language: lexer, parser, and interactive sessions."""

from .astnodes import (
    ConstructorDecl,
    EnumTypeExpr,
    FieldGroup,
    Module,
    ParamDecl,
    RangeTypeExpr,
    RecordTypeExpr,
    RelationTypeExpr,
    SelectorDecl,
    TypeDecl,
    TypeName,
    VarDecl,
)
from .lexer import Token, tokenize
from .parser import Parser, parse_declarations, parse_expression, parse_module
from .session import Session

__all__ = [
    "ConstructorDecl",
    "EnumTypeExpr",
    "FieldGroup",
    "Module",
    "ParamDecl",
    "Parser",
    "RangeTypeExpr",
    "RecordTypeExpr",
    "RelationTypeExpr",
    "SelectorDecl",
    "Session",
    "Token",
    "TypeDecl",
    "TypeName",
    "VarDecl",
    "parse_declarations",
    "parse_expression",
    "parse_module",
    "tokenize",
]
