"""Standing queries: incrementally maintained session query results.

``Session.subscribe(source)`` materializes a query once and keeps the
result set current as base relations mutate — the serving-side
counterpart of the paper's view of relations and rules as one algebra:
a subscription is a derived relation whose extension tracks its
defining expression continuously instead of being recomputed on demand.

Two maintenance strategies, chosen by the shape of the expression:

* **Set formers and ranges** (non-recursive SPJ-union queries) use
  counting-based incremental view maintenance.  The subscription keeps
  the *number of derivations* of every result row (a bag, evaluated by
  running the compiled branch plans without the final duplicate
  elimination).  Each committed insert/delete batch on a base relation
  is pushed through the occurrence-split differential of the query with
  respect to that relation — the same non-linear differential the
  semi-naive fixpoint compiler uses, with the changed relation's
  new/delta/old states bound as apply values — and the produced
  derivations adjust the counts.  A row enters the result when its
  count becomes positive and leaves when it returns to zero, which is
  exact for select-project-join-union under set semantics.

* **Constructed ranges** (recursive fixpoints) keep the converged
  fixpoint values of the compiled program.  An insert-only batch seeds
  fresh deltas by differentiating the equation bodies with respect to
  the changed base relation and resumes semi-naive iteration from the
  current model (:meth:`CompiledFixpoint.resume`) — sound because the
  compiled engine only accepts positive (monotone) systems, so old rows
  stay derivable and the seeds cover every new one-step derivation.
  Deletions are not monotone; they trigger a full re-run.

Either way the deltas arrive from the write path: once a
:class:`SubscriptionRegistry` is attached (`Database.attach_sink`),
every effective mutation commits inside the registry lock and reports
its insert/delete batch (see ``Relation._delta_guard``), so maintenance
is atomic with the commit and two relations can never interleave.
Mid-stream re-planning carries over: fixpoint resumption inherits the
drift-triggered re-optimization of the compiled engine, and the
counting path re-prices a relation's differential plan when observed
batch sizes drift past the same threshold.

Queries whose occurrences of a relation are not all direct binding
ranges (e.g. a relation referenced inside a membership predicate) fall
back to full recomputation for that relation's batches — results stay
exact, only the incremental speedup is lost.  ``on_change`` callbacks
run synchronously inside the commit and must not mutate relations.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass, replace as dc_replace

from ..calculus import ast
from ..compiler.fixpoint import REPLAN_DRIFT, compile_fixpoint
from ..compiler.options import ExecOptions
from ..compiler.plans import CostModel, ExecutionContext, PlanStats, compile_query
from ..constructors.engines import _variant_token
from ..constructors.instantiate import base_relation_names, instantiate
from ..constructors.positivity import is_system_positive
from ..errors import PositivityError


def _ivm_token(name: str, kind: str) -> tuple:
    """Apply-value token for one state of base relation ``name``.

    Shaped like a fixpoint variant token (``("__seminaive__", kind,
    key)``) so the planner's delta-preference pricing and tiebreaks
    apply to differential plans over base relations unchanged.
    """
    return _variant_token(("__ivm__", name), kind)


def _branch_relation_positions(branch: ast.Branch, name: str) -> list[int] | None:
    """Binding positions ranging directly over relation ``name``, or None
    when the branch references the relation anywhere else (predicates,
    targets, nested ranges) — ineligible for differentiation."""
    positions = [
        i
        for i, b in enumerate(branch.bindings)
        if isinstance(b.range, ast.RelRef) and b.range.name == name
    ]
    total = sum(
        1
        for node in ast.walk(branch)
        if isinstance(node, ast.RelRef) and node.name == name
    )
    if total != len(positions):
        return None
    return positions


def _split_branch(
    branch: ast.Branch, name: str, positions: list[int], schema
) -> list[ast.Branch]:
    """Occurrence-split differential variants of ``branch`` w.r.t. one
    relation: variant i binds occurrence i to the delta, earlier
    occurrences to the new state, later ones to the old state.  Any
    fixpoint variables in the branch are rebound to their "new" variant
    (used by the fixpoint seed plans; plain queries have none)."""
    variants: list[ast.Branch] = []
    position_set = set(positions)
    for i in range(len(positions)):
        new_bindings: list[ast.Binding] = []
        for p, b in enumerate(branch.bindings):
            if p in position_set:
                j = positions.index(p)
                kind = "new" if j < i else "delta" if j == i else "old"
                new_bindings.append(
                    ast.Binding(b.var, ast.ApplyVar(_ivm_token(name, kind), schema))
                )
            elif isinstance(b.range, ast.ApplyVar):
                new_bindings.append(
                    ast.Binding(
                        b.var,
                        ast.ApplyVar(
                            _variant_token(b.range.token, "new"), b.range.schema
                        ),
                    )
                )
            else:
                new_bindings.append(b)
        variants.append(dc_replace(branch, bindings=tuple(new_bindings)))
    return variants


# ---------------------------------------------------------------------------
# Bag (multiset) evaluation of compiled plans
# ---------------------------------------------------------------------------


class _Bag:
    """Multiset sink: ``BranchPlan.execute_tuple`` only ever calls
    ``out.add``, so appending instead of set-inserting turns the tuple
    interpreter into a bag evaluator."""

    __slots__ = ("rows",)

    def __init__(self, rows: list) -> None:
        self.rows = rows

    def add(self, row) -> None:
        self.rows.append(row)


#: Maintenance executor per requested executor.  Counting needs every
#: derivation, and only the single-threaded pipelines are bag-safe:
#: the vector backend's dictionary domains and the sharded backend's
#: dedup-merging shard protocol both assume set semantics, so they
#: run their set-former subscriptions on the columnar batch pipeline.
_BAG_EXECUTORS = {
    "batch": "batch",
    "vector": "batch",
    "sharded": "batch",
    "rowbatch": "rowbatch",
    "tuple": "tuple",
}


def _execute_bag(plan, ctx: ExecutionContext, executor: str) -> list:
    """Run a compiled query plan under multiset semantics: the
    concatenated projected batches of every branch, duplicates kept
    (``execute_batch`` returns the pre-dedup batch by contract)."""
    out: list = []
    for branch in plan.branches:
        pipeline = None
        if executor == "batch":
            pipeline = branch.ensure_pipeline() or branch.ensure_row_pipeline()
        elif executor == "rowbatch":
            pipeline = branch.ensure_row_pipeline()
        if pipeline is not None:
            out.extend(branch.execute_batch(ctx, pipeline))
        else:
            branch.execute_tuple(ctx, _Bag(out))
    return out


# ---------------------------------------------------------------------------
# Delta batches
# ---------------------------------------------------------------------------


class _DeltaState:
    """One committed mutation of one relation, in all three states the
    occurrence-split differential binds: ``old`` (before the batch),
    ``mid`` (after deletions, before insertions) and ``live`` (after).
    Built once per commit and shared by every watching subscription."""

    __slots__ = ("name", "live", "ins", "dels", "mid", "old")

    def __init__(self, name, live, ins, dels, mid, old) -> None:
        self.name = name
        self.live = live
        self.ins = ins
        self.dels = dels
        self.mid = mid
        self.old = old

    @classmethod
    def build(cls, relation, inserted, deleted) -> "_DeltaState":
        live = relation.raw_list()
        ins = list(inserted)
        dels = list(deleted)
        if not ins:
            mid = live
        else:
            n, k = len(live), len(ins)
            if k <= n and live[n - k :] == ins:
                # Fast path: insert() extends the cached list view in
                # order, so the pre-insert state is a prefix slice.
                mid = live[: n - k]
            else:
                fresh = set(ins)
                mid = [row for row in live if row not in fresh]
        # Deleted rows are disjoint from mid (they left the live set and
        # inserted rows were fresh), so the union is a concatenation.
        old = mid + dels if dels else mid
        return cls(relation.name, live, ins, dels, mid, old)


@dataclass(frozen=True)
class ChangeEvent:
    """One net change to a subscription's result set."""

    #: The base relation whose mutation caused the change.
    relation: str
    inserted: frozenset
    deleted: frozenset


#: Handler sentinel: this relation's batches recompute the whole result.
_RECOMPUTE = object()


class _DeltaHandler:
    """A compiled differential plan plus the delta estimate it was
    priced with (drift against it triggers a re-plan)."""

    __slots__ = ("plan", "delta_est")

    def __init__(self, plan, delta_est: float) -> None:
        self.plan = plan
        self.delta_est = delta_est


# ---------------------------------------------------------------------------
# Subscriptions
# ---------------------------------------------------------------------------


class Subscription:
    """A standing query handle: current rows, a change feed, a callback.

    Concrete maintenance lives in the two subclasses; this base carries
    the user-facing surface and the shared bookkeeping.  All state is
    guarded by the registry lock — maintenance already runs under it,
    readers take it briefly.
    """

    def __init__(self, registry, source: str, options, on_change) -> None:
        self.registry = registry
        self.source = source
        self.options = options
        #: Called synchronously (inside the committing write) with each
        #: :class:`ChangeEvent`.  Must not mutate relations: the write
        #: lock and registry lock are both held.
        self.on_change = on_change
        self.active = True
        #: Base relations whose mutations this subscription watches.
        self.watched: tuple[str, ...] = ()
        #: Maintenance counters: incrementally applied batches vs. full
        #: recomputations (deletions on fixpoints, ineligible shapes).
        self.delta_batches = 0
        self.recomputes = 0
        self.replans = 0
        self.plan_stats = PlanStats()
        self._pending: deque[ChangeEvent] = deque()

    # -- user surface -----------------------------------------------------

    def rows(self) -> frozenset:
        """The current result set (always equal to a fresh ``query()``)."""
        with self.registry.lock:
            return self._rows()

    def changes(self):
        """Drain queued :class:`ChangeEvent` batches (oldest first).

        A non-blocking iterator: it stops when the queue is empty, and
        events accumulated later are picked up by the next call.
        """
        while True:
            with self.registry.lock:
                if not self._pending:
                    return
                event = self._pending.popleft()
            yield event

    def close(self) -> None:
        """Stop maintenance and detach from the registry."""
        self.registry.unregister(self)

    def __repr__(self) -> str:  # pragma: no cover - display only
        state = "active" if self.active else "closed"
        return f"<Subscription {self.source!r} [{state}] {len(self.rows())} rows>"

    # -- maintenance plumbing --------------------------------------------

    def _notify(self, relation_name: str, inserted, deleted) -> None:
        if not inserted and not deleted:
            return
        event = ChangeEvent(relation_name, frozenset(inserted), frozenset(deleted))
        self._pending.append(event)
        if self.on_change is not None:
            self.on_change(event)


class QuerySubscription(Subscription):
    """Counting-maintained subscription over a non-recursive query."""

    def __init__(self, registry, node: ast.Query, source, options, on_change):
        super().__init__(registry, source, options, on_change)
        db = registry.db
        self._node = node
        self._optimizer = options.resolved_optimizer
        self._executor = _BAG_EXECUTORS.get(options.resolved_executor, "batch")
        self.watched = tuple(
            sorted(
                {
                    n.name
                    for n in ast.walk(node)
                    if isinstance(n, ast.RelRef) and n.name in db.relations
                }
            )
        )
        self._plan = compile_query(
            db,
            node,
            options=ExecOptions(optimizer=self._optimizer, executor=self._executor),
        )
        #: Per-relation differential handler, built on first batch:
        #: a _DeltaHandler, or _RECOMPUTE when ineligible.
        self._handlers: dict[str, object] = {}
        #: Derivation counts; result rows are exactly the keys (every
        #: stored count is positive).
        self._counts: Counter = Counter(
            self._execute(self._plan, apply_values=None)
        )

    def _rows(self) -> frozenset:
        return frozenset(self._counts)

    def _execute(self, plan, apply_values) -> list:
        ctx = ExecutionContext(
            self.registry.db, apply_values=apply_values, stats=self.plan_stats
        )
        return _execute_bag(plan, ctx, self._executor)

    # -- differential plans ----------------------------------------------

    def _compile_delta(self, name: str, delta_est: float) -> object:
        """Compile the occurrence-split differential w.r.t. ``name``,
        priced with the given delta estimate; _RECOMPUTE if ineligible."""
        db = self.registry.db
        schema = db.relation(name).element_type
        variants: list[ast.Branch] = []
        for branch in self._node.branches:
            positions = _branch_relation_positions(branch, name)
            if positions is None:
                return _RECOMPUTE
            variants.extend(_split_branch(branch, name, positions, schema))
        full = float(max(1, len(db.relation(name).raw())))
        estimates = {
            _ivm_token(name, "delta"): delta_est,
            _ivm_token(name, "new"): full,
            _ivm_token(name, "old"): full,
        }
        plan = compile_query(
            db,
            ast.Query(tuple(variants)),
            cost_model=CostModel(db, estimates),
            options=ExecOptions(optimizer=self._optimizer, executor=self._executor),
        )
        return _DeltaHandler(plan, delta_est)

    def _handler(self, state: _DeltaState) -> object:
        observed = float(max(len(state.ins), len(state.dels), 1))
        handler = self._handlers.get(state.name)
        if handler is None:
            handler = self._compile_delta(state.name, observed)
            self._handlers[state.name] = handler
        elif (
            handler is not _RECOMPUTE
            and self._optimizer == "cost"
            and observed / handler.delta_est > REPLAN_DRIFT
        ):
            # Mid-stream re-plan: batches outgrew the priced estimate
            # enough that the chosen join orders may be stale.
            handler = self._compile_delta(state.name, observed)
            self._handlers[state.name] = handler
            self.replans += 1
        return handler

    # -- maintenance ------------------------------------------------------

    def _apply(self, state: _DeltaState) -> None:
        handler = self._handler(state)
        if handler is _RECOMPUTE:
            self._recompute(state.name)
            return
        name = state.name
        inserted_net: list = []
        deleted_net: list = []
        if state.dels:
            # Delete phase: the relation went old -> mid.
            removed = self._execute(
                handler.plan,
                {
                    _ivm_token(name, "new"): state.mid,
                    _ivm_token(name, "delta"): state.dels,
                    _ivm_token(name, "old"): state.old,
                },
            )
            self._fold(removed, -1, inserted_net, deleted_net)
        if state.ins:
            # Insert phase: the relation went mid -> live.
            added = self._execute(
                handler.plan,
                {
                    _ivm_token(name, "new"): state.live,
                    _ivm_token(name, "delta"): state.ins,
                    _ivm_token(name, "old"): state.mid,
                },
            )
            self._fold(added, +1, inserted_net, deleted_net)
        if inserted_net and deleted_net:
            # A row deleted and re-derived within one batch is no net
            # change (delete() then insert() folded into one assign()).
            churn = set(inserted_net) & set(deleted_net)
            if churn:
                inserted_net = [r for r in inserted_net if r not in churn]
                deleted_net = [r for r in deleted_net if r not in churn]
        self.delta_batches += 1
        self._notify(name, inserted_net, deleted_net)

    def _fold(self, derivations, sign: int, inserted_net, deleted_net) -> None:
        counts = self._counts
        for row in derivations:
            count = counts.get(row, 0) + sign
            if count <= 0:
                if counts.pop(row, 0) > 0:
                    deleted_net.append(row)
            else:
                counts[row] = count
                if sign > 0 and count == 1:
                    inserted_net.append(row)

    def _recompute(self, relation_name: str) -> None:
        before = set(self._counts)
        self._counts = Counter(self._execute(self._plan, apply_values=None))
        after = set(self._counts)
        self.recomputes += 1
        self._notify(relation_name, after - before, before - after)


class FixpointSubscription(Subscription):
    """Fixpoint-maintained subscription over a constructed range."""

    def __init__(self, registry, node: ast.Constructed, source, options, on_change):
        super().__init__(registry, source, options, on_change)
        db = registry.db
        self._system = instantiate(db, node)
        if not is_system_positive(self._system):
            raise PositivityError(
                f"instantiated system for {self._system.root.describe()} "
                "is not positive"
            )
        self._program = compile_fixpoint(
            db,
            self._system,
            options=ExecOptions(
                optimizer=options.resolved_optimizer,
                executor=options.resolved_executor,
                shard_config=options.shard_config,
            ),
        )
        self.watched = tuple(sorted(base_relation_names(db, self._system)))
        self._values = {
            key: set(rows) for key, rows in self._program.run().items()
        }
        #: Per-relation seed plans (dict key -> QueryPlan), built on
        #: first insert batch; _RECOMPUTE when ineligible.
        self._seeds: dict[str, object] = {}

    def _rows(self) -> frozenset:
        return frozenset(self._values[self._system.root])

    # -- seed plans -------------------------------------------------------

    def _seed_plans(self, name: str) -> object:
        cached = self._seeds.get(name)
        if cached is not None:
            return cached
        db = self.registry.db
        schema = db.relation(name).element_type
        estimates: dict[object, float] = {}
        for key in self._system.apps:
            estimates[_variant_token(key, "new")] = float(
                max(1, len(self._values[key]))
            )
        full = float(max(1, len(db.relation(name).raw())))
        estimates[_ivm_token(name, "new")] = full
        estimates[_ivm_token(name, "old")] = full
        estimates[_ivm_token(name, "delta")] = max(1.0, full**0.5)
        model = CostModel(db, estimates)
        plans: dict = {}
        for key, app in self._system.apps.items():
            variants: list[ast.Branch] = []
            for branch in app.body.branches:
                positions = _branch_relation_positions(branch, name)
                if positions is None:
                    self._seeds[name] = _RECOMPUTE
                    return _RECOMPUTE
                if positions:
                    variants.extend(_split_branch(branch, name, positions, schema))
            if variants:
                plans[key] = compile_query(
                    db,
                    ast.Query(tuple(variants)),
                    cost_model=model,
                    options=ExecOptions(
                        optimizer=self._program.optimizer,
                        executor=self._program.executor,
                    ),
                )
        self._seeds[name] = plans
        return plans

    # -- maintenance ------------------------------------------------------

    def _apply(self, state: _DeltaState) -> None:
        if state.dels:
            # Deletion is not monotone: rows downstream of a deleted
            # tuple may or may not stay derivable.  Re-run.
            self._recompute(state.name)
            return
        seeds = self._seed_plans(state.name)
        if seeds is _RECOMPUTE:
            self._recompute(state.name)
            return
        name = state.name
        apply_values: dict[object, object] = {
            _ivm_token(name, "new"): state.live,
            _ivm_token(name, "delta"): state.ins,
            _ivm_token(name, "old"): state.mid,
        }
        for key in self._system.apps:
            apply_values[_variant_token(key, "new")] = self._values[key]
        ctx = ExecutionContext(
            self.registry.db, apply_values=apply_values, stats=self.plan_stats
        )
        ctx.shard_config = self._program.shard_config
        deltas = {}
        for key in self._system.apps:
            plan = seeds.get(key)
            produced = (
                plan.execute(ctx, executor=self._program.executor)
                if plan is not None
                else ()
            )
            deltas[key] = {r for r in produced if r not in self._values[key]}
        self.delta_batches += 1
        if not any(deltas.values()):
            self._notify(name, (), ())
            return
        root = self._system.root
        before = set(self._values[root])
        # resume() expects deltas already merged into the model (the
        # "new" side of the differentials must include them), with the
        # pre-merge state recoverable as values - deltas.
        for key, fresh in deltas.items():
            self._values[key] |= fresh
        self._program.resume(self._values, deltas)
        self._notify(name, self._values[root] - before, ())

    def _recompute(self, relation_name: str) -> None:
        before = set(self._values[self._system.root])
        self._values = {key: set(rows) for key, rows in self._program.run().items()}
        after = self._values[self._system.root]
        self.recomputes += 1
        self._notify(relation_name, after - before, before - after)


# ---------------------------------------------------------------------------
# The registry (the write-capture sink)
# ---------------------------------------------------------------------------


class SubscriptionRegistry:
    """Per-database fan-out from committed write batches to subscriptions.

    Installed as the database's write-capture sink
    (:meth:`~repro.relational.Database.attach_sink`): every effective
    mutation commits while holding :attr:`lock` and calls :meth:`emit`
    with its insert/delete batch before releasing it, so maintenance is
    atomic with the commit.  Subscriptions also materialize under the
    lock, closing the subscribe-vs-write race — attach the registry
    before concurrent writers start.
    """

    def __init__(self, db) -> None:
        self.db = db
        self.lock = threading.RLock()
        self.subscriptions: list[Subscription] = []
        self._by_relation: dict[str, list[Subscription]] = {}
        #: Committed write batches seen (whether or not anybody watched).
        self.emits = 0

    @classmethod
    def ensure(cls, db) -> "SubscriptionRegistry":
        """The database's registry, attaching a fresh one on first use."""
        if db.subscriptions is None:
            db.attach_sink(cls(db))
        return db.subscriptions

    # -- registration -----------------------------------------------------

    def subscribe_query(self, node, source, options, on_change) -> Subscription:
        """Materialize and register a counting-maintained subscription."""
        with self.lock:
            sub = QuerySubscription(self, node, source, options, on_change)
            self._register(sub)
        return sub

    def subscribe_fixpoint(self, node, source, options, on_change) -> Subscription:
        """Materialize and register a fixpoint-maintained subscription."""
        with self.lock:
            sub = FixpointSubscription(self, node, source, options, on_change)
            self._register(sub)
        return sub

    def _register(self, sub: Subscription) -> None:
        self.subscriptions.append(sub)
        for name in sub.watched:
            self._by_relation.setdefault(name, []).append(sub)

    def unregister(self, sub: Subscription) -> None:
        with self.lock:
            if sub in self.subscriptions:
                self.subscriptions.remove(sub)
            for name in sub.watched:
                watchers = self._by_relation.get(name)
                if watchers and sub in watchers:
                    watchers.remove(sub)
                    if not watchers:
                        del self._by_relation[name]
            sub.active = False

    # -- the sink protocol (called by Relation mutations) -----------------

    def emit(self, relation, inserted, deleted) -> None:
        """Maintain every watching subscription for one committed batch.

        Called by the mutating relation with its write lock and
        :attr:`lock` both held, after the commit is visible.
        """
        self.emits += 1
        watchers = self._by_relation.get(relation.name)
        if not watchers:
            return
        state = _DeltaState.build(relation, inserted, deleted)
        for sub in list(watchers):
            sub._apply(state)
