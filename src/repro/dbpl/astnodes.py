"""Declaration-level AST for the DBPL surface language.

Expressions parse directly into :mod:`repro.calculus.ast`; the nodes here
cover the declaration forms the paper uses — TYPE, VAR, SELECTOR,
CONSTRUCTOR — plus the MODULE wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..calculus import ast


# -- type expressions ----------------------------------------------------------


@dataclass(frozen=True)
class TypeName:
    """Reference to a declared or built-in type."""

    name: str


@dataclass(frozen=True)
class RangeTypeExpr:
    lo: int
    hi: int


@dataclass(frozen=True)
class EnumTypeExpr:
    labels: tuple[str, ...]


@dataclass(frozen=True)
class FieldGroup:
    names: tuple[str, ...]
    type: "TypeExpr"


@dataclass(frozen=True)
class RecordTypeExpr:
    fields: tuple[FieldGroup, ...]


@dataclass(frozen=True)
class RelationTypeExpr:
    key: tuple[str, ...]  # empty = the paper's "RELATION ... OF"
    element: "TypeExpr"


TypeExpr = object  # union of the above


# -- declarations -----------------------------------------------------------------


@dataclass(frozen=True)
class TypeDecl:
    name: str
    type: TypeExpr


@dataclass(frozen=True)
class VarDecl:
    names: tuple[str, ...]
    type: TypeName


@dataclass(frozen=True)
class ParamDecl:
    name: str
    type: TypeName


@dataclass(frozen=True)
class SelectorDecl:
    name: str
    params: tuple[ParamDecl, ...]
    formal_rel: str
    rel_type: TypeName
    var: str
    pred: ast.Pred


@dataclass(frozen=True)
class ConstructorDecl:
    name: str
    formal_rel: str
    rel_type: TypeName
    params: tuple[ParamDecl, ...]
    result_type: TypeName
    body: ast.Query


@dataclass(frozen=True)
class Module:
    name: str
    declarations: tuple[object, ...] = field(default_factory=tuple)


Declaration = object  # union of TypeDecl / VarDecl / SelectorDecl / ConstructorDecl
