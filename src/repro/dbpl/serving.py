"""The serving layer: prepared queries, the plan cache, snapshot reads.

Five PRs of planner/executor work (cost-based ordering, columnar
pipelines, the executor-backend registry, sharding) are only worth
anything if the front door reaches them — and a served workload repeats
the *same* queries with *different* constants thousands of times, so it
must not re-parse, re-bind, and re-optimize per call either.  This
module is the parse-once/bind-per-message split:

* :func:`parameterize` normalizes a parsed query into a **plan shape**:
  every constant compared in a predicate is replaced by a positional
  parameter slot, and the extracted constants ride alongside.  Two
  textually different queries that differ only in those constants share
  one shape — and therefore one compiled plan.
* :class:`PreparedPlan` compiles a shape once (through
  :func:`repro.compiler.compile_query` and the executor-backend
  registry) and executes it many times, rebinding the constant slots in
  place — the generated kernels read parameter values at run time, so a
  rebind costs a dict update, not a recompilation.
* :class:`PlanCache` is a bounded LRU over **plan fingerprints**
  ``(shape,) + ExecOptions.cache_key()`` scoped to the statistics epoch of
  :meth:`repro.relational.stats.StatsCatalog.epoch`: when the catalog
  decides the data has drifted enough that the cost model would price
  plans differently, the epoch moves and every cached plan is dropped
  (re-optimization on next use).  Small writes do not move the epoch —
  a cache invalidated per insert would never hit under mixed
  read/write traffic.
* :class:`DatabaseSnapshot` pins a version-stamped
  :class:`~repro.relational.indexes.SnapshotView` of every relation and
  feeds them to plans through ``ExecutionContext.source_overrides`` —
  the same mechanism the sharded executor uses for partition views — so
  a reader's scans and index probes all see one committed state while
  writers keep committing.

Snapshot scope: relation *scans and join probes* are pinned.  Computed
sub-ranges (selected ranges, nested queries) and residual predicates
resolve against the live database — crash-free, because relation
mutation is copy-on-write, but they read latest-committed.  A snapshot
execution also forces an unsharded backend: the shard planner
re-partitions live relations, which would bypass the pinned views.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..calculus import ast
from ..calculus.subst import transform
from ..compiler import ExecutionContext, compile_query
from ..compiler.executors import get_backend
from ..compiler.options import ExecOptions
from ..compiler.plans import PlanStats
from ..errors import BindingError
from ..relational import Database
from ..relational.indexes import SnapshotView

#: Default bound of the session plan cache (entries, LRU-evicted).
DEFAULT_PLAN_CACHE_SIZE = 128

#: Name prefix of the auto-generated constant slots.  Parser-produced
#: parameter names are plain identifiers, so the dunder prefix cannot
#: collide with user parameters.
_SLOT_PREFIX = "__bind_"


# ---------------------------------------------------------------------------
# Shape normalization
# ---------------------------------------------------------------------------


def parameterize(query: ast.Query) -> tuple[ast.Query, tuple]:
    """``query`` → (normalized shape, extracted constants).

    Every :class:`~repro.calculus.ast.Const` operand of a comparison is
    replaced — in deterministic traversal order — by a
    :class:`~repro.calculus.ast.ParamRef` slot, and its value collected.
    Comparisons are exactly the positions the compiler consumes constants
    from (index keys, priced restrictions, cheap filters), so this is
    where parameterization both enables plan sharing and keeps the plan
    shape honest.  Constants anywhere else (target lists, selector and
    constructor arguments, arithmetic sub-terms) stay baked in: they
    change what the plan *computes*, so they stay part of the shape and
    queries differing there simply do not share a cache entry.
    """
    constants: list = []

    def rule(node):
        if not isinstance(node, ast.Cmp):
            return None
        left, right = node.left, node.right
        changed = False
        if isinstance(left, ast.Const):
            left = ast.ParamRef(f"{_SLOT_PREFIX}{len(constants)}")
            constants.append(node.left.value)
            changed = True
        if isinstance(right, ast.Const):
            right = ast.ParamRef(f"{_SLOT_PREFIX}{len(constants)}")
            constants.append(node.right.value)
            changed = True
        return ast.Cmp(node.op, left, right) if changed else None

    shape = transform(query, rule)
    return shape, tuple(constants)


def range_query(rexpr: ast.RangeExpr) -> ast.Query:
    """Desugar a bare range into the one-branch query that scans it.

    ``Infront`` or ``Infront[hidden_by("x")]`` become ``{EACH __row IN
    <range>: TRUE}``, so the whole session front door — not just set
    formers — runs through the compiled executor pipeline.
    """
    if isinstance(rexpr, ast.QueryRange):
        return rexpr.query
    return ast.Query((ast.Branch((ast.Binding("__row", rexpr),), ast.TRUE),))


# ---------------------------------------------------------------------------
# Prepared plans and the user-facing handle
# ---------------------------------------------------------------------------


class PreparedPlan:
    """One compiled plan shape, executable with rebound constants.

    The compiled kernels capture the parameter dict by reference and read
    slot values at run time, so executing with different constants is an
    in-place dict update — no re-lowering, no re-optimization.  The plan
    was *priced* with the constants seen at compile time (histogram
    restrictions, index-vs-scan gates); rebinding keeps that join order,
    the classic prepared-statement trade.

    Executions serialize on a per-plan lock: the slot rebind and the
    pipeline run must be atomic with respect to other executors of the
    *same* plan (different plans never contend).
    """

    __slots__ = (
        "db",
        "shape",
        "param_names",
        "options",
        "executor",
        "optimizer",
        "shard_config",
        "epoch",
        "plan",
        "executions",
        "on_fallback",
        "_params",
        "_lock",
    )

    def __init__(
        self,
        db: Database,
        shape: ast.Query,
        constants: tuple,
        executor: str | None = None,
        optimizer: str | None = None,
        epoch: int | None = None,
        *,
        options: ExecOptions | None = None,
    ) -> None:
        if options is None:
            options = ExecOptions(executor=executor, optimizer=optimizer)
        self.options = options
        executor = options.resolved_executor
        get_backend(executor)  # validate the name before paying for a compile
        self.db = db
        self.shape = shape
        self.param_names = tuple(
            f"{_SLOT_PREFIX}{i}" for i in range(len(constants))
        )
        self.executor = executor
        self.optimizer = options.resolved_optimizer
        self.shard_config = options.shard_config
        self.epoch = epoch
        self.executions = 0
        #: Observable-degradation hook (``Session`` wires its fallback
        #: counters here): called with ``(kind, detail)`` whenever an
        #: execution silently downgrades — snapshot demotes of the
        #: sharded executor, shard pools degrading to threads, shipped
        #: shards reverting to fork-time inheritance.
        self.on_fallback = None
        self._params = dict(zip(self.param_names, constants))
        self._lock = threading.Lock()
        self.plan = compile_query(db, shape, self._params, options=options)

    def run(
        self,
        constants: tuple,
        snapshot: "DatabaseSnapshot | None" = None,
        stats: PlanStats | None = None,
    ) -> set[tuple]:
        """Execute with ``constants`` bound into the plan's slots."""
        if len(constants) != len(self.param_names):
            raise BindingError(
                f"prepared query takes {len(self.param_names)} constant(s), "
                f"got {len(constants)}"
            )
        with self._lock:
            params = self._params
            for name, value in zip(self.param_names, constants):
                params[name] = value
            ctx = ExecutionContext(self.db, params, stats=stats)
            ctx.shard_config = self.shard_config
            ctx.on_fallback = self.on_fallback
            executor = self.executor
            if snapshot is not None:
                ctx.source_overrides = snapshot.overrides_for(self.plan)
                if executor == "sharded":
                    # Shard planning repartitions live rows, which would
                    # leak post-snapshot state into the shards — demote to
                    # the plain batch path, but never silently.
                    executor = "batch"
                    ctx.note_fallback(
                        "snapshot_sharded",
                        "snapshot execution demoted executor='sharded' to "
                        "'batch': shard planning repartitions live rows",
                    )
            self.executions += 1
            return self.plan.execute(ctx, executor=executor)

    def explain(self) -> str:
        return self.plan.explain()


class PreparedQuery:
    """The ``Session.prepare()`` handle: a plan plus its bound constants.

    Handles are cheap — many handles (one per client, say) can share one
    cached :class:`PreparedPlan`.  ``execute()`` runs with the constants
    extracted from the prepared source text; ``execute(*constants)``
    rebinds the slots positionally, in the order the constants appeared
    in the query text.
    """

    __slots__ = ("source", "_plan", "_constants")

    def __init__(
        self, plan: PreparedPlan, constants: tuple, source: str | None = None
    ) -> None:
        self._plan = plan
        self._constants = constants
        self.source = source

    @property
    def param_count(self) -> int:
        return len(self._plan.param_names)

    @property
    def constants(self) -> tuple:
        return self._constants

    @property
    def plan(self) -> PreparedPlan:
        return self._plan

    @property
    def executions(self) -> int:
        return self._plan.executions

    def execute(
        self,
        *constants,
        snapshot: "DatabaseSnapshot | None" = None,
        stats: PlanStats | None = None,
    ) -> set[tuple]:
        """Run the prepared plan; positional ``constants`` rebind slots."""
        bound = constants if constants else self._constants
        return self._plan.run(tuple(bound), snapshot=snapshot, stats=stats)

    def bind(self, *constants) -> "PreparedQuery":
        """A new handle over the same plan with different default constants."""
        if len(constants) != self.param_count:
            raise BindingError(
                f"prepared query takes {self.param_count} constant(s), "
                f"got {len(constants)}"
            )
        return PreparedQuery(self._plan, tuple(constants), self.source)

    def explain(self) -> str:
        return self._plan.explain()

    def __repr__(self) -> str:  # pragma: no cover - display only
        return (
            f"<PreparedQuery slots={self.param_count} "
            f"executor={self._plan.executor!r} runs={self._plan.executions}>"
        )


# ---------------------------------------------------------------------------
# The plan cache
# ---------------------------------------------------------------------------


class PlanCache:
    """A bounded LRU of :class:`PreparedPlan` keyed by plan fingerprint.

    The fingerprint is ``(shape,) + ExecOptions.cache_key()`` — the
    normalized query with constants abstracted away, plus the normalized
    execution options (executor, optimizer, shard config): everything
    that changes what ``compile_query`` would produce or how its
    pipelines run.  Two calls that resolve to the same options share one
    plan no matter which spelling (``options=`` or legacy loose
    keywords) produced them.  Entries are scoped to
    one statistics epoch: when :meth:`StatsCatalog.epoch` moves, the
    whole cache is invalidated at the next touch (the cost model would
    price the plans differently now, so they must all re-optimize).

    ``capacity <= 0`` disables caching entirely (every lookup misses and
    nothing is stored) — the compile-per-call baseline of benchmark E19.
    """

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_SIZE) -> None:
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._entries: OrderedDict[tuple, PreparedPlan] = OrderedDict()
        self._epoch: int | None = None
        self._lock = threading.Lock()

    def _sync_epoch(self, epoch: int) -> None:
        if self._epoch != epoch:
            self.invalidations += len(self._entries)
            self._entries.clear()
            self._epoch = epoch

    def get(self, key: tuple, epoch: int) -> PreparedPlan | None:
        with self._lock:
            self._sync_epoch(epoch)
            plan = self._entries.get(key)
            if plan is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return plan

    def put(self, key: tuple, plan: PreparedPlan, epoch: int) -> PreparedPlan:
        """Install ``plan``; returns the winning entry (first store wins,
        so two racing compilations converge on one shared plan)."""
        with self._lock:
            self._sync_epoch(epoch)
            if self.capacity <= 0:
                return plan
            existing = self._entries.get(key)
            if existing is not None:
                return existing
            self._entries[key] = plan
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            return plan

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list[tuple]:
        """Fingerprints currently cached, LRU-first (for tests)."""
        with self._lock:
            return list(self._entries.keys())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def info(self) -> dict[str, float]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------


class DatabaseSnapshot:
    """Version-stamped pinned views of every relation, taken atomically
    enough: each view pins exactly one committed state of its relation
    (copy-on-write guarantees per-relation consistency; the snapshot is
    taken relation-by-relation without a global write freeze).

    ``overrides_for(plan)`` produces the ``ExecutionContext.
    source_overrides`` map that makes a compiled plan's relation scans
    and index probes read the pinned views instead of the live data.
    """

    def __init__(self, db: Database) -> None:
        self.db = db
        self.views: dict[str, SnapshotView] = {
            name: rel.snapshot_view() for name, rel in db.relations.items()
        }

    def rows(self, name: str) -> list[tuple]:
        return self.views[name].rows

    def version(self, name: str) -> int:
        return self.views[name].version

    def overrides_for(self, plan) -> dict[int, tuple]:
        overrides: dict[int, tuple] = {}
        for branch in plan.branches:
            for step in branch.steps:
                source = step.source
                if source.kind == "relation":
                    view = self.views.get(source.name)
                    if view is not None:
                        overrides[id(source)] = (view.rows, view.index_on)
        return overrides

    def __repr__(self) -> str:  # pragma: no cover - display only
        stamps = ", ".join(
            f"{name}@v{view.version}" for name, view in sorted(self.views.items())
        )
        return f"<DatabaseSnapshot {stamps}>"
