"""Recursive-descent parser for the DBPL surface syntax.

The concrete syntax follows the paper's examples:

    TYPE parttype = STRING;
         infrontrel = RELATION ... OF RECORD front, back: parttype END;
    VAR Infront: infrontrel;

    SELECTOR hidden_by (Obj: parttype) FOR Rel: infrontrel;
    BEGIN EACH r IN Rel: r.front = Obj END hidden_by;

    CONSTRUCTOR ahead FOR Rel: infrontrel (Ontop: ontoprel): aheadrel;
    BEGIN EACH r IN Rel: TRUE,
          <r.front, ah.tail> OF EACH r IN Rel,
               EACH ah IN Rel{ahead(Ontop)}: r.back = ah.head
    END ahead;

Expressions parse directly into :mod:`repro.calculus.ast`.  The parser
tracks bound tuple variables, so a bare identifier becomes a
:class:`~repro.calculus.ast.VarRef` when bound and a
:class:`~repro.calculus.ast.ParamRef` otherwise; bare identifiers in
*argument* position parse as :class:`~repro.calculus.ast.RelRef` and the
binder rewrites those naming scalar formals into ParamRefs.
"""

from __future__ import annotations

from ..analysis.diagnostics import Span, set_span
from ..calculus import ast
from ..errors import DBPLSyntaxError
from .astnodes import (
    ConstructorDecl,
    EnumTypeExpr,
    FieldGroup,
    Module,
    ParamDecl,
    RangeTypeExpr,
    RecordTypeExpr,
    RelationTypeExpr,
    SelectorDecl,
    TypeDecl,
    TypeName,
    VarDecl,
)
from .lexer import Token, tokenize


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.index = 0
        self.bound: list[set[str]] = [set()]

    # -- token plumbing --------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def at(self, kind: str) -> bool:
        return self.peek().kind == kind

    def accept(self, kind: str) -> Token | None:
        if self.at(kind):
            return self.next()
        return None

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise DBPLSyntaxError(
                f"expected {kind!r}, got {token.text!r}", token.line, token.column
            )
        return self.next()

    def error(self, message: str) -> DBPLSyntaxError:
        token = self.peek()
        return DBPLSyntaxError(message + f" (at {token.text!r})", token.line, token.column)

    def _mark(self, start: Token, node):
        """Attach the source span ``start`` .. last-consumed-token to ``node``.

        ``ast.TRUE`` is a shared singleton and must never carry a span.
        """
        if node is ast.TRUE:
            return node
        end = self.tokens[self.index - 1] if self.index else start
        set_span(
            node,
            Span(
                start.line,
                start.column,
                end.end_line or end.line,
                end.end_column or end.column,
            ),
        )
        return node

    # -- variable scopes ----------------------------------------------------------

    def _push_scope(self, names: set[str]) -> None:
        self.bound.append(self.bound[-1] | names)

    def _pop_scope(self) -> None:
        self.bound.pop()

    def _is_bound(self, name: str) -> bool:
        return name in self.bound[-1]

    # ======================================================================
    # Declarations
    # ======================================================================

    def parse_module(self) -> Module:
        if self.accept("MODULE"):
            name = self.expect("ident").text
            self.expect(";")
            decls = self.parse_declarations(until={"END"})
            self.expect("END")
            self.expect("ident")
            self.expect(".")
            return Module(name, tuple(decls))
        decls = self.parse_declarations(until={"eof"})
        return Module("anonymous", tuple(decls))

    def parse_declarations(self, until: set[str]) -> list[object]:
        decls: list[object] = []
        while self.peek().kind not in until:
            if self.accept("TYPE"):
                while self.at("ident") and self.peek(1).kind in ("=", "IS"):
                    decls.append(self.parse_type_decl())
            elif self.accept("VAR"):
                while self.at("ident") and self.peek(1).kind in (",", ":"):
                    decls.append(self.parse_var_decl())
            elif self.at("SELECTOR"):
                decls.append(self.parse_selector_decl())
            elif self.at("CONSTRUCTOR"):
                decls.append(self.parse_constructor_decl())
            else:
                raise self.error("expected a declaration")
        return decls

    def parse_type_decl(self) -> TypeDecl:
        start = self.peek()
        name = self.expect("ident").text
        if not (self.accept("=") or self.accept("IS")):
            raise self.error("expected '=' in type declaration")
        texpr = self.parse_type_expr()
        self.expect(";")
        return self._mark(start, TypeDecl(name, texpr))

    def parse_type_expr(self):
        start = self.peek()
        if self.accept("RANGE"):
            lo = int(self.expect("int").text)
            self.expect("..")
            hi = int(self.expect("int").text)
            return self._mark(start, RangeTypeExpr(lo, hi))
        if self.accept("("):
            labels = [self.expect("ident").text]
            while self.accept(","):
                labels.append(self.expect("ident").text)
            self.expect(")")
            return self._mark(start, EnumTypeExpr(tuple(labels)))
        if self.accept("RECORD"):
            groups = [self.parse_field_group()]
            while self.accept(";"):
                if self.at("END"):
                    break
                groups.append(self.parse_field_group())
            self.expect("END")
            return self._mark(start, RecordTypeExpr(tuple(groups)))
        if self.accept("RELATION"):
            key: list[str] = []
            if self.accept(".."):
                # "RELATION ... OF" — the lexer yields '..' '.' for "..."
                self.accept(".")
            else:
                key.append(self.expect("ident").text)
                while self.accept(","):
                    key.append(self.expect("ident").text)
            self.expect("OF")
            element = self.parse_type_expr()
            return self._mark(start, RelationTypeExpr(tuple(key), element))
        name = self.expect("ident").text
        return self._mark(start, TypeName(name))

    def parse_field_group(self) -> FieldGroup:
        start = self.peek()
        names = [self.expect("ident").text]
        while self.accept(","):
            names.append(self.expect("ident").text)
        self.expect(":")
        return self._mark(start, FieldGroup(tuple(names), self.parse_type_expr()))

    def parse_var_decl(self) -> VarDecl:
        start = self.peek()
        names = [self.expect("ident").text]
        while self.accept(","):
            names.append(self.expect("ident").text)
        self.expect(":")
        tstart = self.peek()
        tname = self.expect("ident").text
        type_name = self._mark(tstart, TypeName(tname))
        self.expect(";")
        return self._mark(start, VarDecl(tuple(names), type_name))

    def parse_params(self) -> tuple[ParamDecl, ...]:
        params: list[ParamDecl] = []
        if self.accept("("):
            while not self.accept(")"):
                pstart = self.peek()
                name = self.expect("ident").text
                self.expect(":")
                tstart = self.peek()
                tname = self.expect("ident").text
                type_name = self._mark(tstart, TypeName(tname))
                params.append(self._mark(pstart, ParamDecl(name, type_name)))
                if not self.at(")"):
                    if not (self.accept(";") or self.accept(",")):
                        raise self.error("expected ';' or ',' between parameters")
        return tuple(params)

    def parse_selector_decl(self) -> SelectorDecl:
        start = self.peek()
        self.expect("SELECTOR")
        name = self.expect("ident").text
        params = self.parse_params()
        self.expect("FOR")
        formal = self.expect("ident").text
        self.expect(":")
        rel_type = self.expect("ident").text
        if not params:
            params = self.parse_params()  # the trailing "()" variant
        self.expect(";")
        self.expect("BEGIN")
        self.expect("EACH")
        var = self.expect("ident").text
        self.expect("IN")
        range_name = self.expect("ident").text
        if range_name != formal:
            raise self.error(
                f"selector body must range over the formal relation {formal!r}"
            )
        self.expect(":")
        self._push_scope({var})
        pred = self.parse_pred()
        self._pop_scope()
        self.expect("END")
        end_name = self.expect("ident").text
        if end_name != name:
            raise self.error(f"END {end_name} does not match SELECTOR {name}")
        self.expect(";")
        return self._mark(
            start, SelectorDecl(name, params, formal, TypeName(rel_type), var, pred)
        )

    def parse_constructor_decl(self) -> ConstructorDecl:
        start = self.peek()
        self.expect("CONSTRUCTOR")
        name = self.expect("ident").text
        self.expect("FOR")
        formal = self.expect("ident").text
        self.expect(":")
        rel_type = self.expect("ident").text
        params = self.parse_params()
        self.expect(":")
        result_type = self.expect("ident").text
        self.expect(";")
        self.expect("BEGIN")
        branches = [self.parse_branch()]
        while self.accept(","):
            branches.append(self.parse_branch())
        self.expect("END")
        end_name = self.expect("ident").text
        if end_name != name:
            raise self.error(f"END {end_name} does not match CONSTRUCTOR {name}")
        self.expect(";")
        return self._mark(
            start,
            ConstructorDecl(
                name, formal, TypeName(rel_type), params, TypeName(result_type),
                ast.Query(tuple(branches)),
            ),
        )

    # ======================================================================
    # Queries, branches, ranges
    # ======================================================================

    def parse_branch(self) -> ast.Branch:
        start = self.peek()
        targets: list[ast.Term] | None = None
        target_tokens: int | None = None
        if self.accept("<"):
            target_start = self.index
            raw_targets: list = []
            # Targets may reference the branch's variables, which are not
            # bound yet; parse terms afterwards by re-visiting.  We first
            # skip to the closing '>' to find OF, collecting token span.
            depth = 0
            while not (self.at(">") and depth == 0):
                if self.at("(") or self.at("["):
                    depth += 1
                elif self.at(")") or self.at("]"):
                    depth -= 1
                if self.at("eof"):
                    raise self.error("unterminated target list")
                self.next()
            self.expect(">")
            target_tokens = (target_start, self.index - 1)
            self.expect("OF")

        bindings = [*self.parse_each_group()]
        while self.at(",") and self.peek(1).kind == "EACH":
            self.next()
            bindings.extend(self.parse_each_group())
        self.expect(":")
        names = {b.var for b in bindings}
        self._push_scope(names)
        if target_tokens is not None:
            saved = self.index
            self.index = target_tokens[0]
            targets = [self.parse_add_expr()]
            while self.accept(","):
                targets.append(self.parse_add_expr())
            self.index = saved
        pred = self.parse_pred()
        self._pop_scope()
        return self._mark(
            start, ast.Branch(tuple(bindings), pred, tuple(targets) if targets else None)
        )

    def parse_each_group(self) -> list[ast.Binding]:
        starts = [self.expect("EACH")]
        names = [self.expect("ident").text]
        while self.at(",") and self.peek(1).kind == "ident" and self.peek(2).kind in (",", "IN"):
            self.next()
            starts.append(self.peek())
            names.append(self.expect("ident").text)
        self.expect("IN")
        rng = self.parse_range()
        # The first binding's span opens at EACH; extra names at themselves.
        return [
            self._mark(starts[i], ast.Binding(n, rng)) for i, n in enumerate(names)
        ]

    def parse_range(self) -> ast.RangeExpr:
        start = self.peek()
        if self.at("{"):
            # inline set expression
            self.expect("{")
            branches = [self.parse_branch()]
            while self.accept(","):
                branches.append(self.parse_branch())
            self.expect("}")
            rng: ast.RangeExpr = self._mark(
                start, ast.QueryRange(self._mark(start, ast.Query(tuple(branches))))
            )
        else:
            name = self.expect("ident").text
            rng = self._mark(start, ast.RelRef(name))
        while self.at("[") or self.at("{"):
            if self.accept("["):
                sel = self.expect("ident").text
                args = self.parse_application_args()
                self.expect("]")
                rng = self._mark(start, ast.Selected(rng, sel, args))
            else:
                self.expect("{")
                con = self.expect("ident").text
                args = self.parse_application_args()
                self.expect("}")
                rng = self._mark(start, ast.Constructed(rng, con, args))
        return rng

    def parse_application_args(self) -> tuple[ast.Argument, ...]:
        args: list[ast.Argument] = []
        if self.accept("("):
            while not self.accept(")"):
                args.append(self.parse_argument())
                if not self.at(")"):
                    self.expect(",")
        return tuple(args)

    def parse_argument(self) -> ast.Argument:
        token = self.peek()
        if token.kind == "ident":
            if self.peek(1).kind in ("[", "{"):
                return self.parse_range()
            if self.peek(1).kind == ".":
                return self.parse_add_expr()  # correlated attribute argument
            name = self.next().text
            if self._is_bound(name):
                return self._mark(token, ast.VarRef(name))
            # Bare name: relation or scalar formal; the binder decides.
            return self._mark(token, ast.RelRef(name))
        return self.parse_add_expr()

    # ======================================================================
    # Predicates
    # ======================================================================

    def parse_pred(self) -> ast.Pred:
        start = self.peek()
        parts = [self.parse_conjunction()]
        while self.accept("OR"):
            parts.append(self.parse_conjunction())
        if len(parts) == 1:
            return parts[0]
        return self._mark(start, ast.Or(tuple(parts)))

    def parse_conjunction(self) -> ast.Pred:
        start = self.peek()
        parts = [self.parse_factor()]
        while self.accept("AND"):
            parts.append(self.parse_factor())
        if len(parts) == 1:
            return parts[0]
        return self._mark(start, ast.And(tuple(parts)))

    def parse_factor(self) -> ast.Pred:
        start = self.peek()
        if self.accept("NOT"):
            return self._mark(start, ast.Not(self.parse_factor()))
        if self.accept("TRUE"):
            return ast.TRUE
        if self.accept("FALSE"):
            return self._mark(start, ast.Not(ast.TRUE))
        if self.at("SOME") or self.at("ALL"):
            existential = self.next().kind == "SOME"
            names = [self.expect("ident").text]
            while self.accept(","):
                names.append(self.expect("ident").text)
            self.expect("IN")
            rng = self.parse_range()
            self.expect("(")
            self._push_scope(set(names))
            inner = self.parse_pred()
            self._pop_scope()
            self.expect(")")
            node = ast.Some if existential else ast.All
            return self._mark(start, node(tuple(names), rng, inner))
        if self.at("("):
            # Could be a parenthesized predicate or a parenthesized term;
            # try the predicate reading first and backtrack on failure.
            saved = self.index
            try:
                self.expect("(")
                pred = self.parse_pred()
                self.expect(")")
                return pred
            except DBPLSyntaxError:
                self.index = saved
        return self.parse_comparison()

    def parse_comparison(self) -> ast.Pred:
        start = self.peek()
        left = self.parse_add_expr()
        if self.accept("IN"):
            rng = self.parse_range()
            return self._mark(start, ast.InRel(left, rng))
        token = self.peek()
        if token.kind in ("=", "<>", "<", "<=", ">", ">="):
            op = self.next().kind
            right = self.parse_add_expr()
            return self._mark(start, ast.Cmp(op, left, right))
        raise self.error("expected a comparison operator or IN")

    # ======================================================================
    # Scalar terms
    # ======================================================================

    def parse_add_expr(self) -> ast.Term:
        start = self.peek()
        left = self.parse_mul_expr()
        while self.at("+") or self.at("-"):
            op = self.next().kind
            right = self.parse_mul_expr()
            left = self._mark(start, ast.Arith(op, left, right))
        return left

    def parse_mul_expr(self) -> ast.Term:
        start = self.peek()
        left = self.parse_unary()
        while self.at("*") or self.at("DIV") or self.at("MOD"):
            op = self.next().kind
            right = self.parse_unary()
            left = self._mark(start, ast.Arith(op, left, right))
        return left

    def parse_unary(self) -> ast.Term:
        token = self.peek()
        if token.kind == "int":
            self.next()
            return self._mark(token, ast.Const(int(token.text)))
        if token.kind == "string":
            self.next()
            return self._mark(token, ast.Const(token.text))
        if token.kind == "TRUE":
            self.next()
            return self._mark(token, ast.Const(True))
        if token.kind == "FALSE":
            self.next()
            return self._mark(token, ast.Const(False))
        if token.kind == "-":
            self.next()
            inner = self.parse_unary()
            return self._mark(token, ast.Arith("-", ast.Const(0), inner))
        if token.kind == "(":
            self.next()
            inner = self.parse_add_expr()
            self.expect(")")
            return inner
        if token.kind == "<":
            self.next()
            items = [self.parse_add_expr()]
            while self.accept(","):
                items.append(self.parse_add_expr())
            self.expect(">")
            return self._mark(token, ast.TupleCons(tuple(items)))
        if token.kind == "ident":
            name = self.next().text
            if self.accept("."):
                attr = self.expect("ident").text
                return self._mark(token, ast.AttrRef(name, attr))
            if self._is_bound(name):
                return self._mark(token, ast.VarRef(name))
            return self._mark(token, ast.ParamRef(name))
        raise self.error("expected a term")

    # ======================================================================
    # Top-level expression entry points
    # ======================================================================

    def parse_expression(self):
        """A query expression: set former, or a (suffixed) range."""
        start = self.peek()
        if self.at("{"):
            self.expect("{")
            branches = [self.parse_branch()]
            while self.accept(","):
                branches.append(self.parse_branch())
            self.expect("}")
            node: object = self._mark(start, ast.Query(tuple(branches)))
            # allow suffixes after a set former, e.g. {...}{ahead}
            if self.at("[") or self.at("{"):
                rng: ast.RangeExpr = self._mark(start, ast.QueryRange(node))  # type: ignore[arg-type]
                while self.at("[") or self.at("{"):
                    if self.accept("["):
                        sel = self.expect("ident").text
                        args = self.parse_application_args()
                        self.expect("]")
                        rng = self._mark(start, ast.Selected(rng, sel, args))
                    else:
                        self.expect("{")
                        con = self.expect("ident").text
                        args = self.parse_application_args()
                        self.expect("}")
                        rng = self._mark(start, ast.Constructed(rng, con, args))
                return rng
            return node
        return self.parse_range()


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------


def parse_module(source: str) -> Module:
    parser = Parser(source)
    module = parser.parse_module()
    parser.expect("eof")
    return module


def parse_declarations(source: str) -> list[object]:
    parser = Parser(source)
    decls = parser.parse_declarations(until={"eof"})
    parser.expect("eof")
    return decls


def parse_expression(source: str):
    parser = Parser(source)
    node = parser.parse_expression()
    parser.expect("eof")
    return node
