"""Bound-argument specialization of linear recursion ("capture rules").

Section 4 suggests employing "capture rules [Ullm 84] to detect special
cases" instead of always running the full least-fixpoint computation.
The classic special case — and the one behind every ``ahead``-style
example in the paper — is *linear transitive-closure-shaped* recursion
queried with a bound argument:

    { EACH r IN Infront{ahead}: r.head = "table" }

Computing the full closure and then filtering wastes work proportional
to the whole database; a goal-directed program seeds a frontier with the
constant and traverses only the reachable part (what the later
literature calls magic-set evaluation, restricted here to the detected
shape).

:func:`detect_linear_tc` recognizes the shape on the *instantiated*
system:

    result(x, y) :- base(x, y).                       (identity branch)
    result(x, t) :- base(x, z), result(z, t).         (left-linear)
 or result(x, t) :- result(x, z), base(z, t).         (right-linear)

:func:`bound_query` then answers head- or tail-bound queries by BFS over
the base relation, returning rows plus traversal statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..calculus import ast
from ..calculus.evaluator import Evaluator
from ..constructors.instantiate import InstantiatedSystem
from ..relational import Database


@dataclass
class LinearTC:
    """A recognized linear transitive-closure system."""

    base_range: ast.RangeExpr
    #: "left" means the recursion extends on the right attribute
    #: (result(x,t) :- base(x,z), result(z,t)), "right" the mirror image.
    linearity: str

    def describe(self) -> str:
        from ..calculus.pretty import render_range

        return f"linear-TC({self.linearity}) over {render_range(self.base_range)}"


@dataclass
class SpecializedStats:
    """Traversal counters for the goal-directed program."""

    frontier_expansions: int = 0
    edges_touched: int = 0
    tuples_emitted: int = 0


def _is_attr(term: ast.Term, var: str, attr: str) -> bool:
    return isinstance(term, ast.AttrRef) and term.var == var and term.attr == attr


def detect_linear_tc(db: Database, system: InstantiatedSystem) -> LinearTC | None:
    """Recognize the TC shape on a single-equation instantiated system."""
    if len(system.apps) != 1:
        return None
    app = system.apps[system.root]
    branches = app.body.branches
    if len(branches) != 2:
        return None
    identity, recursive = branches
    if identity.targets is not None:
        identity, recursive = recursive, identity
    if identity.targets is not None or len(identity.bindings) != 1:
        return None
    base = identity.bindings[0].range
    if isinstance(base, ast.ApplyVar):
        return None

    if recursive.targets is None or len(recursive.bindings) != 2:
        return None
    (b1, b2) = recursive.bindings
    # one binding over base (structurally equal range), one over the root app
    def is_root(rng: ast.RangeExpr) -> bool:
        return isinstance(rng, ast.ApplyVar) and rng.token == system.root

    if is_root(b1.range) and b2.range == base:
        rec_var, base_var = b1.var, b2.var
    elif is_root(b2.range) and b1.range == base:
        rec_var, base_var = b2.var, b1.var
    else:
        return None

    evaluator = Evaluator(db)
    base_schema = evaluator.infer_schema(base, {})
    result_schema = app.result_type.element
    if base_schema.arity != 2 or result_schema.arity != 2:
        return None
    b0, bb1 = base_schema.attribute_names
    r0, r1 = result_schema.attribute_names

    pred = recursive.pred
    if not isinstance(pred, ast.Cmp) or pred.op != "=":
        return None
    targets = recursive.targets

    def eq(pred_l, pred_r, tl, tr) -> bool:
        matches = (
            _is_attr(pred.left, *pred_l) and _is_attr(pred.right, *pred_r)
        ) or (_is_attr(pred.left, *pred_r) and _is_attr(pred.right, *pred_l))
        return (
            matches
            and _is_attr(targets[0], *tl)
            and _is_attr(targets[1], *tr)
        )

    # left-linear: base(x,z) ⋈ result(z,t) -> (x, t)
    if eq((base_var, bb1), (rec_var, r0), (base_var, b0), (rec_var, r1)):
        return LinearTC(base, "left")
    # right-linear: result(x,z) ⋈ base(z,t) -> (x, t)
    if eq((rec_var, r1), (base_var, b0), (rec_var, r0), (base_var, bb1)):
        return LinearTC(base, "right")
    return None


def bound_query(
    db: Database,
    shape: LinearTC,
    bound_attr: str,
    value: object,
    stats: SpecializedStats | None = None,
) -> set[tuple]:
    """Rows of the closure with ``head`` (attr index 0) or ``tail`` (index 1)
    bound to ``value``, computed goal-directedly by frontier traversal."""
    stats = stats if stats is not None else SpecializedStats()
    rows = Evaluator(db).resolve_range(shape.base_range, {}).rows

    forward: dict[object, list[object]] = {}
    backward: dict[object, list[object]] = {}
    for src, dst in rows:
        forward.setdefault(src, []).append(dst)
        backward.setdefault(dst, []).append(src)

    if bound_attr == "head":
        adjacency = forward
    elif bound_attr == "tail":
        adjacency = backward
    else:
        raise ValueError("bound_attr must be 'head' (index 0) or 'tail' (index 1)")

    reached: set[object] = set()
    frontier = [value]
    while frontier:
        stats.frontier_expansions += 1
        next_frontier: list[object] = []
        for node in frontier:
            for neighbour in adjacency.get(node, ()):
                stats.edges_touched += 1
                if neighbour not in reached:
                    reached.add(neighbour)
                    next_frontier.append(neighbour)
        frontier = next_frontier

    if bound_attr == "head":
        out = {(value, t) for t in reached}
    else:
        out = {(h, value) for h in reached}
    stats.tuples_emitted = len(out)
    return out
