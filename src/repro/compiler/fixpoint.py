"""Compiled semi-naive fixpoint execution.

The query compilation level of section 4 generates "an appropriate
version of the fixed point algorithm" for each recursive cycle.  This
module is that generated program: the branch bodies of an instantiated
constructor system are compiled to indexed :class:`~.plans.QueryPlan`s
(base branches once, differential variants per recursive occurrence),
and a driver iterates deltas to the least fixpoint.

Functionally identical to ``repro.constructors.engines.seminaive_fixpoint``
(asserted by tests); the difference is execution speed — batched
physical-operator pipelines (deltas as pre-built hash-join sides, see
:mod:`repro.compiler.operators`) instead of interpreted nested loops —
which benchmarks E12 and E16 measure.  Each per-iteration result is
applied through a :class:`~repro.compiler.operators.DeltaApply`
operator whose counters surface in :meth:`CompiledFixpoint.explain`.

The default ``executor="batch"`` runs the **columnar** pipelines: each
iteration's delta sets are hashed once per execution context and probed
through C-level column kernels, residual quantifiers are checked once
per distinct binding (grouped index probes), and the differential
projections fuse into their producing joins.  ``executor="rowbatch"``
keeps the PR 3 row-major batches and ``executor="tuple"`` the original
interpreter, both for measurement (benchmarks E16/E17); the executor is
preserved across mid-fixpoint re-plans.

Differential plans are additionally **re-optimized mid-fixpoint**: the
delta cardinalities a plan was priced with are compared against the
deltas actually observed after every iteration, and once they drift
beyond :data:`REPLAN_DRIFT` (in either direction) the join orders are
re-enumerated with the live numbers and the new plans swapped in.  The
``replans`` counter is surfaced by :meth:`CompiledFixpoint.explain` and
:class:`~repro.constructors.engines.FixpointStats`; benchmark E15
measures what a re-plan saves on delta-drifting workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..calculus import ast
from ..constructors.engines import (
    FixpointStats,
    _branch_apply_positions,
    _differential_branches,
    _variant_token,
    seminaive_eligible,
)
from ..constructors.instantiate import (
    AppKey,
    InstantiatedSystem,
    base_relation_names,
    instantiate,
)
from ..errors import ConvergenceError, PositivityError
from ..relational import Database, DeltaStats
from .operators import DeltaApply
from .options import _UNSET, ExecOptions, resolve_options
from .plans import (
    DEFAULT_EXECUTOR,
    DEFAULT_OPTIMIZER,
    CostModel,
    ExecutionContext,
    PlanStats,
    QueryPlan,
    compile_query,
)

#: Re-optimize the differential plans once an observed delta (or full
#: value) cardinality drifts beyond this factor — in either direction —
#: from the estimate the current plans were priced with.
REPLAN_DRIFT = 4.0


@dataclass
class CompiledFixpoint:
    """The compiled fixpoint program for one instantiated system."""

    db: Database
    system: InstantiatedSystem
    base_plans: dict[AppKey, QueryPlan]
    diff_plans: dict[AppKey, QueryPlan]
    #: The differential branch bodies, kept for mid-fixpoint re-planning.
    diff_branches: dict[AppKey, ast.Query] = field(default_factory=dict)
    #: The per-token cardinality estimates the current ``diff_plans``
    #: were priced with; drift is measured against these.
    diff_estimates: dict[object, float] = field(default_factory=dict)
    optimizer: str = DEFAULT_OPTIMIZER
    #: Which executor backend runs the compiled plans ("batch" columnar
    #: pipelines by default; "rowbatch"/"tuple" for measurement;
    #: "sharded" for hash-partitioned parallel execution — see
    #: :mod:`repro.compiler.executors`).
    executor: str = DEFAULT_EXECUTOR
    #: Sharded-backend tuning carried onto every per-iteration execution
    #: context (None → the module defaults of repro.compiler.sharded).
    shard_config: object | None = None
    #: Drift factor that triggers a re-plan; None disables re-planning.
    replan_drift: float | None = REPLAN_DRIFT
    #: How many times run() swapped in re-optimized differential plans.
    replans: int = 0
    plan_stats: PlanStats = field(default_factory=PlanStats)
    #: Incremental statistics over the accumulated value of each fixpoint
    #: variable, absorbed delta by delta during run().
    delta_stats: dict[AppKey, DeltaStats] = field(default_factory=dict)
    #: The semi-naive ``produced - known`` operators, one per fixpoint
    #: variable; their actual counts are the fresh tuples per variable.
    delta_ops: dict[AppKey, DeltaApply] = field(default_factory=dict)

    def explain(self) -> str:
        lines = []
        if self.replan_drift is not None:
            lines.append(
                f"replans: {self.replans} (drift threshold "
                f"{self.replan_drift:g}x)"
            )
        else:
            lines.append(f"replans: {self.replans} (re-planning disabled)")
        for key in self.system.apps:
            lines.append(f"== {key.describe()} ==")
            tracked = self.delta_stats.get(key)
            if tracked is not None:
                lines.append(f"value stats: {tracked.describe()}")
            lines.append("base:")
            lines.append(self.base_plans[key].explain())
            lines.append("differential:")
            lines.append(self.diff_plans[key].explain())
            delta_op = self.delta_ops.get(key)
            if delta_op is not None and delta_op.executions:
                lines.append(delta_op.explain_line())
        return "\n".join(lines)

    # -- mid-fixpoint re-optimization ---------------------------------------

    def _max_drift(self, values: dict, deltas: dict) -> float:
        """Worst observed/estimated cardinality underestimate ratio.

        Only *under*estimates trigger a re-plan: deltas shrinking toward
        convergence is the normal life of a fixpoint, not drift, and
        re-planning on it would recompile every differential plan per
        iteration near the end for no possible order change.  The priced
        estimates are a ratchet — once a wave of deltas has exploded
        past them, the estimates follow it up and stay there.
        """
        worst = 1.0
        for key in self.system.apps:
            comparisons = (
                (_variant_token(key, "delta"), len(deltas[key])),
                (_variant_token(key, "new"), len(values[key])),
            )
            for token, observed in comparisons:
                estimated = self.diff_estimates.get(token)
                if estimated is None:
                    continue
                obs = max(1.0, float(observed))
                est = max(1.0, float(estimated))
                worst = max(worst, obs / est)
        return worst

    def _replan(self, values: dict, deltas: dict) -> None:
        """Re-enumerate differential join orders with live cardinalities.

        Besides the observed sizes, the live per-column statistics
        absorbed so far (distinct counts, histograms over the value
        accumulated by :attr:`delta_stats`) are threaded into the cost
        model, replacing the sqrt-distinct heuristic for fixpoint
        variables with measured selectivities.
        """
        estimates = dict(self.diff_estimates)
        for key in self.system.apps:
            full = max(1.0, float(len(values[key])))
            delta = max(1.0, float(len(deltas[key])))
            estimates[key] = full
            estimates[_variant_token(key, "new")] = full
            estimates[_variant_token(key, "old")] = full
            estimates[_variant_token(key, "delta")] = delta
        live_tables = {
            key: tracked.table
            for key, tracked in self.delta_stats.items()
            if tracked.table.row_count > 0
        }
        model = CostModel(self.db, estimates, apply_tables=live_tables)
        for key, query in self.diff_branches.items():
            # Re-lowered plans keep the driver's executor: columnar
            # pipelines (delta hash sides, fused projection) are rebuilt
            # against the re-enumerated join orders mid-fixpoint.
            self.diff_plans[key] = compile_query(
                self.db, query, cost_model=model,
                options=ExecOptions(optimizer=self.optimizer, executor=self.executor),
            )
        self.diff_estimates = estimates
        self.replans += 1

    def run(
        self, max_iterations: int = 100_000, stats: FixpointStats | None = None
    ) -> dict[AppKey, frozenset]:
        stats = stats if stats is not None else FixpointStats()
        stats.mode = "compiled-seminaive"
        system = self.system

        self.delta_stats = {
            key: DeltaStats(len(app.element_type.attribute_names))
            for key, app in system.apps.items()
        }
        self.delta_ops = {
            key: DeltaApply(key.describe()) for key in system.apps
        }
        ctx = ExecutionContext(self.db, stats=self.plan_stats)
        ctx.shard_config = self.shard_config
        values: dict[AppKey, set] = {
            key: self.base_plans[key].execute(ctx, executor=self.executor)
            for key in system.apps
        }
        deltas: dict[AppKey, set] = {
            key: self.delta_ops[key].apply(values[key], frozenset())
            for key in system.apps
        }
        for key, delta in deltas.items():
            self.delta_stats[key].absorb(delta)
        stats.iterations = 1
        stats.tuples_derived = sum(len(d) for d in deltas.values())
        stats.peak_delta = stats.tuples_derived
        return self._converge(values, deltas, max_iterations, stats)

    def resume(
        self,
        values: dict[AppKey, set],
        deltas: dict[AppKey, set],
        max_iterations: int = 100_000,
        stats: FixpointStats | None = None,
    ) -> dict[AppKey, frozenset]:
        """Continue semi-naive iteration from mid-stream state.

        ``values`` is a consistent partial model (every row derivable and
        already propagated except through ``deltas``); ``deltas`` are the
        not-yet-propagated fresh rows per fixpoint variable.  Used by
        incremental view maintenance: after an insert-only base-relation
        change, the subscription seeds deltas from the differential of
        the changed relation and resumes here instead of re-running the
        whole fixpoint — sound for the positive (monotone) systems the
        compiled engine accepts, because every old row stays derivable
        and seeded deltas cover all new one-step derivations.
        """
        stats = stats if stats is not None else FixpointStats()
        stats.mode = "compiled-seminaive-resume"
        system = self.system
        self.delta_stats = {
            key: DeltaStats(len(app.element_type.attribute_names))
            for key, app in system.apps.items()
        }
        self.delta_ops = {
            key: DeltaApply(key.describe()) for key in system.apps
        }
        for key in system.apps:
            # Prime the live statistics with the accumulated value so a
            # mid-resume re-plan prices fixpoint variables from real
            # distributions, exactly as a full run would have.
            self.delta_stats[key].absorb(values[key])
        stats.iterations = 1
        stats.tuples_derived = sum(len(d) for d in deltas.values())
        stats.peak_delta = stats.tuples_derived
        return self._converge(values, deltas, max_iterations, stats)

    def _converge(
        self,
        values: dict[AppKey, set],
        deltas: dict[AppKey, set],
        max_iterations: int,
        stats: FixpointStats,
    ) -> dict[AppKey, frozenset]:
        """Drive ``(values, deltas)`` to the least fixpoint (shared tail
        of :meth:`run` and :meth:`resume`)."""
        system = self.system
        executor = self.executor
        replans_before = self.replans

        # "old" (V - delta) is only needed by non-linear rules; computing it
        # unconditionally would make linear chains quadratic.
        old_tokens_used = {
            step.source.token
            for qp in self.diff_plans.values()
            for branch_plan in qp.branches
            for step in branch_plan.steps
            if step.source.kind == "apply"
            and isinstance(step.source.token, tuple)
            and step.source.token[1] == "old"
        }

        while any(deltas.values()):
            if stats.iterations >= max_iterations:
                raise ConvergenceError(
                    f"compiled fixpoint for {system.root.describe()} did not "
                    f"converge within {max_iterations} iterations"
                )
            apply_values: dict[object, set] = {}
            for key in system.apps:
                apply_values[_variant_token(key, "new")] = values[key]
                apply_values[_variant_token(key, "delta")] = deltas[key]
                old_token = _variant_token(key, "old")
                if old_token in old_tokens_used:
                    apply_values[old_token] = values[key] - deltas[key]
            ctx = ExecutionContext(
                self.db, apply_values=apply_values, stats=self.plan_stats
            )
            ctx.shard_config = self.shard_config
            new_deltas: dict[AppKey, set] = {}
            for key in system.apps:
                produced = self.diff_plans[key].execute(ctx, executor=executor)
                new_deltas[key] = self.delta_ops[key].apply(produced, values[key])
            for key in system.apps:
                values[key] |= new_deltas[key]
                self.delta_stats[key].absorb(new_deltas[key])
            deltas = new_deltas
            stats.iterations += 1
            grown = sum(len(d) for d in deltas.values())
            stats.tuples_derived += grown
            stats.peak_delta = max(stats.peak_delta, grown)
            # Mid-fixpoint re-optimization: when the observed cardinalities
            # drift too far from what the current differential plans were
            # priced with, re-enumerate join orders with the live numbers.
            if (
                self.replan_drift is not None
                and any(deltas.values())
                and self._max_drift(values, deltas) > self.replan_drift
            ):
                self._replan(values, deltas)

        frozen = {key: frozenset(rows) for key, rows in values.items()}
        stats.final_sizes = {k.describe(): len(v) for k, v in frozen.items()}
        stats.replans += self.replans - replans_before
        self.plan_stats.iterations = stats.iterations
        # Stats hook: remember the converged sizes (with exact per-column
        # distinct counts and histograms from the absorbed deltas) so later
        # compilations of the same application start from measured
        # cardinalities.  Observations are scoped to the base relations the
        # system actually reads: only their mutations invalidate them.
        catalog = getattr(self.db, "stats", None)
        if catalog is not None:
            read_relations = base_relation_names(self.db, system)
            for key, rows in frozen.items():
                tracked = self.delta_stats[key].table
                distinct = tuple(c.distinct for c in tracked.columns)
                catalog.record_fixpoint(
                    key,
                    len(rows),
                    distinct,
                    relations=read_relations,
                    table=tracked,
                )
        return frozen


def fixpoint_apply_estimates(
    db: Database, system: InstantiatedSystem
) -> dict[object, float]:
    """Cardinality estimates for every fixpoint-variable token.

    Full values ("new"/"old" variants and the plain key, as referenced by
    top plans) are priced from catalog observations of previous runs when
    available, and from total base size times an assumed growth factor
    otherwise.  Deltas are priced separately — and much smaller — which
    is what makes the cost model drive differential loop nests off the
    delta side.
    """
    catalog = getattr(db, "stats", None)
    base_total = sum(len(r) for r in db.relations.values()) or 8
    estimates: dict[object, float] = {}
    for key in system.apps:
        observed = catalog.constructed_estimate(key) if catalog is not None else None
        full = observed if observed is not None else base_total * CostModel.RECURSIVE_GROWTH
        delta = max(1.0, full ** 0.5)
        estimates[key] = full
        estimates[_variant_token(key, "new")] = full
        estimates[_variant_token(key, "old")] = full
        estimates[_variant_token(key, "delta")] = delta
    return estimates


def compile_fixpoint(
    db: Database,
    system: InstantiatedSystem,
    optimizer: str = _UNSET,
    replan_drift: float | None = REPLAN_DRIFT,
    executor: str = _UNSET,
    shard_config: object | None = _UNSET,
    *,
    options: ExecOptions | None = None,
) -> CompiledFixpoint:
    """Compile base and differential plans for every equation.

    Base and differential variants are priced through separate cost
    models: base branches see only stored relations, while differential
    branches join against fixpoint variables whose (small) delta
    estimates come from :func:`fixpoint_apply_estimates`.  Those
    estimates are retained on the result so :meth:`CompiledFixpoint.run`
    can detect drift and re-optimize mid-fixpoint; ``replan_drift``
    tunes the trigger (None disables it).  Re-planning only makes sense
    for the cost-based optimizer — the legacy orders ignore estimates —
    so it is disabled for the others.

    Execution knobs arrive on ``options``; the loose
    ``optimizer=``/``executor=``/``shard_config=`` keywords still work
    through the shared deprecation adapter.  ``replan_drift`` stays a
    separate argument — it tunes the fixpoint driver, not execution.
    """
    options = resolve_options(
        options, "compile_fixpoint",
        optimizer=optimizer, executor=executor, shard_config=shard_config,
    )
    optimizer = options.resolved_optimizer
    if not seminaive_eligible(system):
        raise PositivityError(
            "compiled fixpoint execution requires fixpoint variables to occur "
            "only as direct binding ranges"
        )
    estimates = fixpoint_apply_estimates(db, system)
    base_model = CostModel(db)
    diff_model = CostModel(db, estimates)
    base_plans: dict[AppKey, QueryPlan] = {}
    diff_plans: dict[AppKey, QueryPlan] = {}
    diff_queries: dict[AppKey, ast.Query] = {}
    for key, app in system.apps.items():
        base_branches: list[ast.Branch] = []
        diff_branches: list[ast.Branch] = []
        for branch in app.body.branches:
            positions = _branch_apply_positions(branch)
            assert positions is not None
            if positions:
                diff_branches.extend(_differential_branches(branch, positions))
            else:
                base_branches.append(branch)
        base_plans[key] = compile_query(
            db, ast.Query(tuple(base_branches)), cost_model=base_model,
            options=ExecOptions(optimizer=optimizer),
        )
        diff_queries[key] = ast.Query(tuple(diff_branches))
        diff_plans[key] = compile_query(
            db, diff_queries[key], cost_model=diff_model,
            options=ExecOptions(optimizer=optimizer),
        )
    if optimizer != "cost":
        replan_drift = None
    return CompiledFixpoint(
        db,
        system,
        base_plans,
        diff_plans,
        diff_branches=diff_queries,
        diff_estimates=estimates,
        optimizer=optimizer,
        executor=options.resolved_executor,
        shard_config=options.shard_config,
        replan_drift=replan_drift,
    )


def construct_compiled(
    db: Database,
    application: ast.Constructed,
    max_iterations: int = 100_000,
    optimizer: str = _UNSET,
    replan_drift: float | None = REPLAN_DRIFT,
    executor: str = _UNSET,
    shard_config: object | None = _UNSET,
    *,
    options: ExecOptions | None = None,
):
    """Compiled counterpart of :func:`repro.constructors.construct`."""
    from ..constructors.api import ConstructionResult
    from ..constructors.positivity import is_system_positive

    options = resolve_options(
        options, "construct_compiled",
        optimizer=optimizer, executor=executor, shard_config=shard_config,
    )
    system = instantiate(db, application)
    if not is_system_positive(system):
        raise PositivityError(
            f"instantiated system for {system.root.describe()} is not positive"
        )
    program = compile_fixpoint(db, system, replan_drift=replan_drift,
                               options=options)
    stats = FixpointStats()
    values = program.run(max_iterations, stats)
    root_app = system.apps[system.root]
    return ConstructionResult(
        rows=values[system.root],
        result_type=root_app.result_type,
        stats=stats,
        system=system,
        values=values,
    )
