"""The three-level compiler/optimizer of section 4."""

from .accesspath import (
    AccessPathStats,
    LogicalAccessPath,
    PhysicalAccessPath,
    choose_access_path,
)
from .fixpoint import (
    REPLAN_DRIFT,
    CompiledFixpoint,
    compile_fixpoint,
    construct_compiled,
    fixpoint_apply_estimates,
)
from .graphutils import (
    Digraph,
    connected_components,
    recursive_nodes,
    strongly_connected_components,
    topological_order,
)
from .levels import CompiledStatement, TypeCheckReport, compile_statement, type_check_level
from .plans import (
    BranchPlan,
    CostModel,
    ExecutionContext,
    PlanStats,
    QueryPlan,
    compile_branch,
    compile_query,
    estimate_branch,
    estimate_query,
    run_query,
)
from .pushdown import PushdownDecision, cost_gated_inline, inline_nonrecursive
from .quantgraph import (
    QGArc,
    QGNode,
    QuantGraph,
    build_constructor_graph,
    build_interconnectivity_graph,
    build_query_graph,
)
from .specialize import LinearTC, SpecializedStats, bound_query, detect_linear_tc

__all__ = [
    "AccessPathStats",
    "BranchPlan",
    "CompiledFixpoint",
    "CompiledStatement",
    "CostModel",
    "Digraph",
    "ExecutionContext",
    "LinearTC",
    "LogicalAccessPath",
    "PhysicalAccessPath",
    "PlanStats",
    "PushdownDecision",
    "QGArc",
    "QGNode",
    "QuantGraph",
    "QueryPlan",
    "REPLAN_DRIFT",
    "SpecializedStats",
    "TypeCheckReport",
    "bound_query",
    "build_constructor_graph",
    "build_interconnectivity_graph",
    "build_query_graph",
    "choose_access_path",
    "compile_branch",
    "compile_fixpoint",
    "compile_query",
    "compile_statement",
    "connected_components",
    "construct_compiled",
    "cost_gated_inline",
    "detect_linear_tc",
    "estimate_branch",
    "estimate_query",
    "fixpoint_apply_estimates",
    "inline_nonrecursive",
    "recursive_nodes",
    "run_query",
    "strongly_connected_components",
    "topological_order",
    "type_check_level",
]
