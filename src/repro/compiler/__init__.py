"""The three-level compiler/optimizer of section 4."""

from .accesspath import AccessPathStats, LogicalAccessPath, PhysicalAccessPath
from .fixpoint import CompiledFixpoint, compile_fixpoint, construct_compiled
from .graphutils import (
    Digraph,
    connected_components,
    recursive_nodes,
    strongly_connected_components,
    topological_order,
)
from .levels import CompiledStatement, TypeCheckReport, compile_statement, type_check_level
from .plans import (
    BranchPlan,
    ExecutionContext,
    PlanStats,
    QueryPlan,
    compile_branch,
    compile_query,
    run_query,
)
from .pushdown import inline_nonrecursive
from .quantgraph import (
    QGArc,
    QGNode,
    QuantGraph,
    build_constructor_graph,
    build_interconnectivity_graph,
    build_query_graph,
)
from .specialize import LinearTC, SpecializedStats, bound_query, detect_linear_tc

__all__ = [
    "AccessPathStats",
    "BranchPlan",
    "CompiledFixpoint",
    "CompiledStatement",
    "Digraph",
    "ExecutionContext",
    "LinearTC",
    "LogicalAccessPath",
    "PhysicalAccessPath",
    "PlanStats",
    "QGArc",
    "QGNode",
    "QuantGraph",
    "QueryPlan",
    "SpecializedStats",
    "TypeCheckReport",
    "bound_query",
    "build_constructor_graph",
    "build_interconnectivity_graph",
    "build_query_graph",
    "compile_branch",
    "compile_fixpoint",
    "compile_query",
    "compile_statement",
    "connected_components",
    "construct_compiled",
    "detect_linear_tc",
    "inline_nonrecursive",
    "recursive_nodes",
    "run_query",
    "strongly_connected_components",
    "topological_order",
    "type_check_level",
]
