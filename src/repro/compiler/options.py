"""One execution-options surface for every compilation entry point.

Eight PRs of planner/executor growth each added a knob — ``executor=``,
``optimizer=``, ``shard_config=``, ``analysis=``, ``snapshot=`` — and by
PR 8 every front door (``Session.query``/``prepare``, ``compile_query``,
``compile_fixpoint``, ``construct_compiled``, ``DatalogEngine.solve``)
accepted a different, drifting subset of them as loose keyword
arguments.  :class:`ExecOptions` replaces the sprawl: one frozen
dataclass accepted uniformly as ``options=`` by all of them (plus the
new ``Session.subscribe``), with ``None`` fields meaning "inherit the
caller's default" so partial options compose — a session can fix the
executor while a single call overrides the optimizer.

The loose keywords keep working through :func:`resolve_options`, the
shared adapter every entry point routes them through: passing one emits
a :class:`DeprecationWarning` naming the replacement, merges the value
into the (possibly absent) ``options``, and rejects contradictions
between the two spellings instead of silently picking one.

Frozen and hashable on purpose: :meth:`ExecOptions.cache_key` is the
normalized plan-cache fingerprint — two calls that resolve to the same
executor/optimizer/shard configuration share one cached plan no matter
which spelling produced them (``snapshot`` and ``analysis`` are
per-execution concerns and deliberately excluded from the key).
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass

#: The default optimizer for every compilation entry point.
DEFAULT_OPTIMIZER = "cost"

#: The default executor: "batch" runs the columnar (struct-of-arrays)
#: operator pipeline with fused projection; see
#: :mod:`repro.compiler.executors` for the full registry.
DEFAULT_EXECUTOR = "batch"

#: Distinguishes "keyword not passed" from any real value (None is a
#: meaningful value for most of these knobs).
_UNSET = object()


@dataclass(frozen=True)
class ExecOptions:
    """How a query (or fixpoint, or Datalog program) should execute.

    Every field defaults to ``None`` — "no opinion, inherit" — so
    options objects compose: :meth:`over` layers call-level options
    over session-level ones, and the consumers resolve what is still
    ``None`` against the module defaults.

    ``executor``
        A backend name from the :mod:`repro.compiler.executors`
        registry (``batch``, ``vector``, ``rowbatch``, ``tuple``,
        ``sharded``).
    ``optimizer``
        Join-order strategy: ``cost`` (default), ``greedy``,
        ``syntactic``.
    ``shard_config``
        A :class:`~repro.compiler.sharded.ShardConfig` carried onto the
        execution context (consulted by the sharded backend only).
    ``analysis``
        Static-analyzer gate policy for session front doors:
        ``strict`` | ``lint`` | ``off``.
    ``snapshot``
        A :class:`~repro.dbpl.serving.DatabaseSnapshot` pinning the
        relation state compiled scans read (session front doors only).
    """

    executor: str | None = None
    optimizer: str | None = None
    shard_config: object | None = None
    analysis: str | None = None
    snapshot: object | None = None

    # -- composition --------------------------------------------------------

    def over(self, base: "ExecOptions | None") -> "ExecOptions":
        """These options layered over ``base``: set fields win."""
        if base is None:
            return self
        merged = {
            field.name: (
                own if (own := getattr(self, field.name)) is not None
                else getattr(base, field.name)
            )
            for field in dataclasses.fields(self)
        }
        return ExecOptions(**merged)

    def replace(self, **changes) -> "ExecOptions":
        return dataclasses.replace(self, **changes)

    # -- resolution ---------------------------------------------------------

    @property
    def resolved_executor(self) -> str:
        return self.executor if self.executor is not None else DEFAULT_EXECUTOR

    @property
    def resolved_optimizer(self) -> str:
        return self.optimizer if self.optimizer is not None else DEFAULT_OPTIMIZER

    def cache_key(self) -> tuple:
        """The normalized plan-cache fingerprint of these options.

        Only the fields that change what ``compile_query`` produces (or
        how its pipelines run) participate; ``analysis`` and
        ``snapshot`` are per-execution concerns, so two calls differing
        only there still share a plan.
        """
        return (self.resolved_executor, self.resolved_optimizer, self.shard_config)


#: The all-defaults options object (shared: ExecOptions is frozen).
DEFAULT_OPTIONS = ExecOptions()


def resolve_options(
    options: ExecOptions | None,
    where: str,
    **legacy,
) -> ExecOptions:
    """The shared legacy-keyword adapter of every execution entry point.

    ``legacy`` maps option-field names to the values the caller's loose
    keyword arguments carried, with :data:`_UNSET` meaning "not passed".
    Any genuinely passed loose keyword emits one
    :class:`DeprecationWarning` naming ``where`` and the replacement
    spelling; a loose keyword that contradicts the same field already
    set on ``options`` raises :class:`ValueError` (two spellings, two
    values — refusing beats guessing).  Returns the merged options,
    never ``None``.
    """
    supplied = {k: v for k, v in legacy.items() if v is not _UNSET}
    if not supplied:
        return options if options is not None else DEFAULT_OPTIONS
    names = ", ".join(sorted(supplied))
    warnings.warn(
        f"{where}: the loose keyword(s) {names} are deprecated; pass "
        f"options=ExecOptions({names}=...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    if options is None:
        return ExecOptions(**supplied)
    conflicts = [
        k for k, v in supplied.items()
        if getattr(options, k) is not None and getattr(options, k) != v
    ]
    if conflicts:
        raise ValueError(
            f"{where}: {', '.join(sorted(conflicts))} passed both as loose "
            f"keyword(s) and on options= with different values"
        )
    return options.replace(**supplied)
