"""Executor backends: the one registry every physical layer plugs into.

PRs 3 and 4 grew three ways to run a compiled :class:`~.plans.BranchPlan`
— the tuple-at-a-time interpreter, the row-major batched pipelines, and
the columnar struct-of-arrays pipelines — dispatched by string compares
scattered across ``plans.py``, ``fixpoint.py``, and the Datalog engine.
This module makes that contract explicit: an :class:`ExecutorBackend`
knows how to run one branch against an execution context, backends are
looked up by name in one registry, and every entry point
(``QueryPlan.execute``, the fixpoint driver, ``DatalogEngine.solve``)
dispatches through :func:`get_backend`.

The registry is the architectural seam for parallel and distributed
execution: the sharded backend (:mod:`repro.compiler.sharded`) registers
itself here, and a future async or distributed backend only has to
implement :meth:`ExecutorBackend.execute_branch` — the compiler, the
fixpoint driver, and Datalog inherit it with no further changes.

Built-in backends:

``tuple``
    The original interpreted loop nest (benchmark E16's baseline).
``rowbatch``
    PR 3's row-major flat-carry operator pipelines (E17's baseline).
``batch``
    The columnar struct-of-arrays pipelines with operator fusion — the
    default everywhere.
``vector``
    Dictionary-encoded int-id pipelines over typed column buffers
    (PR 8), with an optional numpy fast path; falls back per branch to
    the columnar pipelines for shapes outside the vector coverage rules
    (residuals, computed ranges, multi-column keys).
``sharded``
    Hash-partitioned parallel execution of the columnar pipelines in a
    worker pool (see :mod:`repro.compiler.sharded`), registered when
    the :mod:`repro.compiler` package imports (with a lazy fallback in
    :func:`get_backend` for bare uses of this module).

Fallbacks degrade gracefully and in one direction: ``sharded`` runs
unsharded (``batch``) when a branch is too small or untranslatable,
``vector`` falls to ``batch`` when a branch is outside the vector
coverage rules, ``batch`` falls to ``rowbatch`` when a branch cannot be
expressed columnar, and every batched mode falls to ``tuple`` when no
pipeline can be generated at all.
"""

from __future__ import annotations

#: Every accepted executor mode, in preference order.  Kept in sync with
#: the registry below (the sharded backend registers lazily, so the name
#: is listed here even before its module is imported).
EXECUTOR_NAMES = ("batch", "vector", "rowbatch", "tuple", "sharded")


class ExecutorBackend:
    """One physical execution strategy for compiled branch plans.

    A backend receives the *logical* plan objects — it decides how their
    lowered pipelines (or the interpreter) actually run.  ``dedup`` is
    the owning query plan's duplicate-elimination operator; backends
    that produce whole batches route them through it so the union
    counters stay correct, while the tuple interpreter adds rows to
    ``out`` directly (exactly as before the registry existed).
    """

    #: Registry key; subclasses override.
    name: str = "?"

    def execute_branch(self, branch, ctx, out: set, dedup=None) -> None:
        """Run ``branch`` under ``ctx``, adding result tuples to ``out``."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


class TupleBackend(ExecutorBackend):
    """The interpreted loop nest: one recursive call per binding."""

    name = "tuple"

    def execute_branch(self, branch, ctx, out: set, dedup=None) -> None:
        branch.execute_tuple(ctx, out)


class RowBatchBackend(ExecutorBackend):
    """Row-major flat-carry batched pipelines (PR 3's layout)."""

    name = "rowbatch"

    def _pipeline(self, branch):
        return branch.ensure_row_pipeline()

    def execute_branch(self, branch, ctx, out: set, dedup=None) -> None:
        pipeline = self._pipeline(branch)
        if pipeline is None:
            branch.execute_tuple(ctx, out)
            return
        batch = branch.execute_batch(ctx, pipeline)
        if dedup is not None:
            dedup.absorb(batch, out)
        else:
            out.update(batch)


class BatchBackend(RowBatchBackend):
    """Columnar struct-of-arrays pipelines with fusion — the default."""

    name = "batch"

    def _pipeline(self, branch):
        pipeline = branch.ensure_pipeline()
        if pipeline is not None:
            return pipeline
        return branch.ensure_row_pipeline()


class VectorBackend(BatchBackend):
    """Dictionary-encoded int-id pipelines (PR 8's typed vectors).

    Branches the vector lowering covers run over encoded column buffers;
    everything else takes the inherited columnar → row-major → tuple
    fallback chain, so ``executor="vector"`` is always safe to request.
    """

    name = "vector"

    def _pipeline(self, branch):
        pipeline = branch.ensure_vector_pipeline()
        if pipeline is not None:
            return pipeline
        return super()._pipeline(branch)


_BACKENDS: dict[str, ExecutorBackend] = {}


def register_backend(backend: ExecutorBackend) -> ExecutorBackend:
    """Install ``backend`` under its :attr:`~ExecutorBackend.name`.

    Re-registration replaces the previous instance (tests swap in
    configured sharded backends); returns the backend for chaining.
    """
    _BACKENDS[backend.name] = backend
    return backend


def get_backend(name: str) -> ExecutorBackend:
    """The backend registered under ``name``.

    Raises ``ValueError`` for unknown names, listing the accepted modes
    — the registry is the single validation point for every entry
    ``executor=`` argument in the library.
    """
    backend = _BACKENDS.get(name)
    if backend is None and name == "sharded":
        # Fallback registration: the repro.compiler package __init__
        # imports .sharded eagerly (so in normal use the backend is
        # already present); this branch keeps bare uses of this module
        # working should that import order ever change — the sharded
        # module itself imports plan machinery, so it cannot be
        # imported at registry-definition time.
        from . import sharded  # noqa: F401  (import registers the backend)

        backend = _BACKENDS.get(name)
    if backend is None:
        raise ValueError(
            f"unknown executor {name!r}; expected one of {EXECUTOR_NAMES}"
        )
    return backend


def executor_names() -> tuple[str, ...]:
    """Every accepted executor name (registered or lazily registrable)."""
    return EXECUTOR_NAMES


register_backend(TupleBackend())
register_backend(RowBatchBackend())
register_backend(BatchBackend())
register_backend(VectorBackend())
