"""Batched physical operators: the set-at-a-time execution layer.

The planner (:mod:`repro.compiler.plans`) picks a join order and an
access path per binding; this module is what those choices *run as*.
Instead of interpreting the loop nest tuple variable by tuple variable —
a recursive call, an environment-dict mutation, and several counter
increments per binding — each :class:`~repro.compiler.plans.BranchPlan`
is lowered once into a linear pipeline of physical operators that pass
**batches of rows** between them:

* :class:`Scan` — the whole source as one batch (doubles as the
  cross-product step when a binding has no usable key);
* :class:`IndexLookup` — a single hash probe with a constant key,
  shared by the entire batch;
* :class:`HashJoin` — the step's source hashed *once* on the key
  positions (relations reuse their version-cached indexes, fixpoint
  deltas are built once per iteration), then probed per batch row;
* :class:`Filter` — compiled comparison conjuncts over the batch;
* :class:`ResidualFilter` — the leftover predicate (quantifiers,
  memberships) checked through the reference evaluator, batch-applied;
* :class:`Project` — positional target extraction;
* :class:`Dedup` — the per-query union with duplicate elimination;
* :class:`DeltaApply` — the semi-naive ``produced - known`` subtraction
  the fixpoint driver applies per iteration.

Two batch layouts are generated from the same priced plans:

1. **Columnar (struct-of-arrays) carries** — the default
   (``executor="batch"``, :func:`lower_branch_columnar`).  A batch is
   ``(n, slots)``: one aligned list of *source rows* per still-live
   binding variable (liveness computed per pipeline boundary, exactly
   as before, but at variable granularity — values are never copied
   between operators).  Generated kernels compose C-level primitives:
   ``map``/``itemgetter`` column slices feed the hash probes,
   ``chain``/``repeat`` expand surviving slots, ``compress`` applies
   filter masks — and the projection **fuses into the producing
   HashJoin / Scan / Filter** whenever no residual predicate follows,
   so result tuples are materialized exactly once, in the final fused
   pass.  Residual quantifiers and memberships run **batched**: rows
   are grouped by the bindings the predicate reads and each distinct
   group is decided once per batch — via one grouped index probe for
   the recognized ``Some``/``InRel`` shapes, via a memoized reference-
   evaluator call otherwise.  The cost model gates the physical
   details: selective single-variable filters (priced selectivity ≤
   :data:`FILTER_PUSH_SEL`) push into the join's probe as
   per-distinct-key build-side filtering.

2. **Row-major flat carries** — PR 3's layout, kept as
   ``executor="rowbatch"`` so benchmark E17 can measure what the
   columnar conversion buys.  A batch row is a flat tuple of exactly
   the live values; each operator is one generated list comprehension
   with attribute access inlined as constant indexing.

Both lower lazily and degrade gracefully: an untranslatable term falls
from columnar to row-major to the tuple-at-a-time interpreter
(``executor="tuple"``, benchmark E16's baseline).

Every operator accumulates the **actual row count** it produced, which
``explain()`` reports next to the optimizer's estimates — the batched
counterpart of the per-step est-vs-actual report of the tuple
interpreter.
"""

from __future__ import annotations

from itertools import chain, compress, repeat
from operator import ge, gt, itemgetter, le, lt

from ..calculus import ast
from ..calculus.analysis import free_tuple_vars
from ..calculus.rewrite import conjoin, conjuncts
from ..errors import EvaluationError
from ..relational.vectors import Dictionary, EncodedTable, get_numpy, translation

#: Shared empty bucket for missed hash probes inside generated loops.
_EMPTY: tuple = ()

#: G2 fusion gate: a single-variable comparison filter is pushed into the
#: probe side of its HashJoin (per-distinct-key build-side filtering)
#: when the cost model estimates it keeps at most this fraction of rows.
#: Unselective filters stay as standalone compress-based Filter passes,
#: where one C-level sweep beats re-filtering every probed bucket.
FILTER_PUSH_SEL = 0.25


def _batch_len(batch) -> int:
    """Row count of a batch in either carry layout.

    Row-major batches are plain lists of carry tuples; columnar batches
    are ``(n, slots)`` pairs (slots are parallel per-step row lists); a
    finished pipeline's output is the plain result list.
    """
    return batch[0] if type(batch) is tuple else len(batch)

#: Arithmetic / comparison operators as Python source fragments.
_ARITH_SRC = {"+": "+", "-": "-", "*": "*", "DIV": "//", "MOD": "%"}
_CMP_SRC = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------


class Operator:
    """One node of a branch's physical pipeline.

    ``actual_rows`` accumulates the operator's output cardinality over
    every execution of the owning plan; ``explain()`` divides by the
    execution count so the reported actuals stay commensurable with the
    per-execution estimates.
    """

    __slots__ = ("label", "est_rows", "actual_rows", "executions")

    def __init__(self, label: str, est_rows: float | None = None) -> None:
        self.label = label
        self.est_rows = est_rows
        self.actual_rows = 0
        self.executions = 0

    def describe(self) -> str:
        return self.label

    def explain_line(self, per: int | None = None) -> str:
        """``LABEL [est=.. act=..]``; ``per`` overrides the divisor for
        the accumulated actuals (defaults to this operator's own runs)."""
        runs = per if per is not None else self.executions
        act = f"{self.actual_rows / runs:.1f}" if runs else "-"
        if self.est_rows is not None:
            return f"{self.describe()}  [est={self.est_rows:.1f} act={act}]"
        return f"{self.describe()}  [act={act}]"


class Scan(Operator):
    """Emit every source row once per incoming batch row.

    As the leading operator (batch ``[()]``) this is a plain scan;
    mid-pipeline it is the cross-product fallback for a binding with no
    usable equality key.  ``fn(rows, batch)`` is generated code emitting
    the step's carry layout.
    """

    __slots__ = ("source", "fn", "pushdown")

    def __init__(self, source, fn, pushdown=None) -> None:
        super().__init__(f"SCAN {source.describe()}")
        self.source = source
        self.fn = fn
        #: Storage pushdown (plans.ScanPushdown or None): a cold
        #: store-backed relation decodes only live columns of matching
        #: partitions; every other source ignores it.
        self.pushdown = pushdown

    def run(self, ctx, batch):
        if not batch:
            return batch
        rows = self.source.scan_rows(ctx, self.pushdown)
        ctx.stats.rows_scanned += len(rows) * _batch_len(batch)
        return self.fn(rows, batch)


class IndexLookup(Operator):
    """One hash probe with an environment-independent (constant) key.

    The bucket is fetched once and shared by the whole batch — the
    batched form of a constant-restricted scan.
    """

    __slots__ = ("source", "positions", "key_fn", "fn")

    def __init__(self, source, positions: tuple[int, ...], key_fn, fn) -> None:
        super().__init__(f"INDEXLOOKUP {source.describe()}{list(positions)}")
        self.source = source
        self.positions = positions
        self.key_fn = key_fn
        self.fn = fn

    def run(self, ctx, batch):
        if not batch:
            return batch
        _rows, index_provider = self.source.rows_and_indexable(ctx)
        index = index_provider(self.positions)
        bucket = index.lookup(self.key_fn())
        ctx.stats.index_lookups += 1
        ctx.stats.rows_scanned += len(bucket) * _batch_len(batch)
        return self.fn(bucket, batch)


class HashJoin(Operator):
    """Hash the step's whole source on the key positions, probe per row.

    The build side is the *entire* input: stored relations answer with
    their version-cached hash indexes, fixpoint variables (deltas, new
    values) are hashed once per execution context — there is no
    per-tuple index maintenance anywhere in the loop.  ``fn`` is the
    generated probe loop; single-column keys probe a scalar-keyed view
    of the buckets to avoid a key-tuple allocation per batch row.

    When the cost model gates a selective single-variable filter into
    the join (``push_fn``), the probe goes through a per-execution
    memo of *filtered* buckets: each distinct key's bucket is filtered
    once per execution, so repeated probes (and every downstream slot
    expansion) see only surviving rows.
    """

    __slots__ = ("source", "positions", "scalar", "fn", "push_fn")

    def __init__(
        self,
        source,
        positions: tuple[int, ...],
        scalar: bool,
        fn,
        push_fn=None,
        push_desc: str = "",
    ) -> None:
        label = f"HASHJOIN {source.describe()} build{list(positions)}"
        if push_fn is not None:
            label += f" pushfilter[{push_desc}]"
        super().__init__(label)
        self.source = source
        self.positions = positions
        self.scalar = scalar
        self.fn = fn
        self.push_fn = push_fn

    def run(self, ctx, batch):
        if not batch:
            return batch
        _rows, index_provider = self.source.rows_and_indexable(ctx)
        index = index_provider(self.positions)
        buckets = index.scalar_buckets() if self.scalar else index.buckets
        get = buckets.get
        if self.push_fn is not None:
            get = self._pushed_get(ctx, buckets)
        stats = ctx.stats
        stats.index_lookups += _batch_len(batch)
        out = self.fn(get, batch, _EMPTY)
        stats.rows_scanned += _batch_len(out)
        return out

    def _pushed_get(self, ctx, buckets):
        """A ``get`` over filtered buckets, memoized per distinct key.

        The memo lives on the execution context keyed by this operator
        *object* (not its id — a recycled id after garbage collection
        must never inherit another operator's filter), holding a strong
        reference to the bucket dict it was filtered from and checked by
        identity — so an index rebuilt after a relation mutation (or a
        fresh per-iteration delta index) starts a fresh memo, while
        repeated executions against the same index pay the filter once
        per key.
        """
        entry = ctx.pushed_buckets.get(self)
        if entry is None or entry[0] is not buckets:
            memo: dict = {}
            ctx.pushed_buckets[self] = (buckets, memo)
        else:
            memo = entry[1]
        keep = self.push_fn
        raw_get = buckets.get
        memo_get = memo.get

        def get(key, default):
            bucket = memo_get(key)
            if bucket is None:
                raw = raw_get(key)
                bucket = memo[key] = (
                    [r for r in raw if keep(r)] if raw else default
                )
            return bucket

        return get


class Filter(Operator):
    """Generated comparison conjuncts applied over the whole batch."""

    __slots__ = ("fn",)

    def __init__(self, descs: tuple[str, ...], fn) -> None:
        super().__init__(f"FILTER [{', '.join(descs)}]")
        self.fn = fn

    def run(self, ctx, batch: list) -> list:
        if not batch:
            return batch
        return self.fn(batch)


class ResidualFilter(Operator):
    """The leftover predicate, checked through the reference evaluator.

    Quantifiers, memberships, and anything else the plan compiler could
    not turn into keys or generated filters run here, batch-applied
    with one rich environment per surviving row.  The carry layout
    keeps whole rows for exactly the variables this predicate reads.
    """

    __slots__ = ("pred", "var_rows")

    def __init__(self, pred: ast.Pred, var_rows) -> None:
        from ..calculus.pretty import render_pred

        super().__init__(f"RESIDUAL {render_pred(pred)}")
        #: (var, schema, carry position of the var's whole row) triples.
        self.var_rows = tuple(var_rows)

        self.pred = pred

    def run(self, ctx, batch: list) -> list:
        if not batch:
            return batch
        ctx.stats.residual_checks += len(batch)
        ctx.stats.residual_evals += len(batch)  # one evaluator call per row
        evaluator = ctx.evaluator
        pred = self.pred
        var_rows = self.var_rows
        out = []
        append = out.append
        for envt in batch:
            env = {var: (envt[pos], schema) for var, schema, pos in var_rows}
            if evaluator.eval_pred(pred, env):
                append(envt)
        return out


class ResidualProbe:
    """A recognized residual shape that reduces to one grouped index probe.

    ``Some``-quantifiers whose body is a conjunction of equalities linking
    quantified attributes to outer terms become a semi-join: resolve the
    (environment-free) range once per execution, hash it once on the
    correlated positions, and the per-group verdict is a bucket-existence
    check.  ``All``-quantifiers whose body is a *disjunction of
    inequalities* (``<>`` comparisons, or negated equalities) reduce by
    complement — ``ALL s (s.a <> t1 OR ...)`` is ``NOT SOME s (s.a = t1
    AND ...)`` — to the same probe with the verdict flipped (an
    anti-join).  ``InRel`` memberships become one set-membership per
    group.  ``Not`` of any of these flips the verdict.  Attribute
    positions are looked up from the resolved range's schema at
    probe-build time, so the plan does not need the range schema at
    compile time.
    """

    __slots__ = ("kind", "rexpr", "attrs", "key_fn", "negate")

    def __init__(self, kind: str, rexpr, attrs: tuple[str, ...], key_fn, negate: bool):
        self.kind = kind  # "some" | "inrel"
        self.rexpr = rexpr
        self.attrs = attrs
        self.key_fn = key_fn
        self.negate = negate

    def checker(self, ctx):
        """Build the per-group verdict closure for one execution."""
        value = ctx.evaluator.resolve_range(self.rexpr, {})
        rows = value.rows
        key_fn = self.key_fn
        negate = self.negate
        if self.kind == "inrel":
            members = ctx.member_set(self.rexpr, rows)

            def check(group):
                element = key_fn(group)
                if type(element) is not tuple:
                    element = (element,)
                return (element in members) is not negate

            return check
        rexpr = self.rexpr
        if (
            isinstance(rexpr, ast.RelRef)
            and rexpr.name not in ctx.params
            and rexpr.name in ctx.db
        ):
            # Stored relation: the version-aware index cache, so an
            # in-place mutation between executions on a reused context
            # can never serve a stale probe table.
            index = ctx.db.relation(rexpr.name).index_on(self.attrs)
        else:
            positions = tuple(value.schema.index_of(a) for a in self.attrs)
            index = ctx.residual_index(rexpr, rows, positions)
        ctx.stats.index_lookups += 1
        buckets = index.probe_table(scalar=len(self.attrs) == 1)

        def check(group):
            return (key_fn(group) in buckets) is not negate

        return check


def _static_residual_range(rexpr) -> bool:
    """True when a residual's range needs no enclosing environment.

    Fixpoint variables are fine (the execution context binds them per
    iteration); correlated ranges referencing outer tuple variables are
    not — those keep the grouped-evaluator fallback, which passes the
    group's environment through.
    """
    return not any(
        isinstance(node, (ast.AttrRef, ast.VarRef)) for node in ast.walk(rexpr)
    )


class BatchedResidualFilter(ResidualFilter):
    """Columnar residual check: grouped, memoized, and probe-accelerated.

    Instead of one reference-evaluator call per batch row, rows are
    grouped by the bound values the predicate actually reads (the rows
    of ``var_rows``); each distinct group is checked **once per batch**
    (the memo) through either a :class:`ResidualProbe` (quantifier and
    membership shapes — one grouped index probe, no evaluator at all) or
    the evaluator fallback (fully general: correlated ranges, universal
    quantifiers, disjunctions).  Joins multiply rows but not distinct
    bindings, so the memo turns per-row predicate cost into per-distinct
    cost; surviving rows are compressed out of every live slot at C
    level.
    """

    __slots__ = ("keep_slots", "probe")

    def __init__(self, pred: ast.Pred, var_rows, keep_slots, probe=None) -> None:
        super().__init__(pred, var_rows)
        self.keep_slots = tuple(keep_slots)
        self.probe = probe
        if probe is not None:
            self.label += "  (grouped index probe)"
        else:
            self.label += "  (memoized per batch)"

    def _checker(self, ctx):
        if self.probe is not None:
            return self.probe.checker(ctx)
        evaluator = ctx.evaluator
        pred = self.pred
        stats = ctx.stats
        var_rows = self.var_rows
        if len(var_rows) == 1:
            var, schema, _pos = var_rows[0]

            def check(row):
                stats.residual_evals += 1
                return evaluator.eval_pred(pred, {var: (row, schema)})

            return check
        metas = tuple((var, schema) for var, schema, _pos in var_rows)

        def check(rows):
            stats.residual_evals += 1
            env = {var: (row, schema) for (var, schema), row in zip(metas, rows)}
            return evaluator.eval_pred(pred, env)

        return check

    def run(self, ctx, batch):
        n, slots = batch
        keep = self.keep_slots
        if n == 0:
            return (0, [slots[i] for i in keep])
        ctx.stats.residual_checks += n
        var_rows = self.var_rows
        if len(var_rows) == 1:
            groups = slots[var_rows[0][2]]
        elif var_rows:
            groups = zip(*[slots[pos] for _var, _schema, pos in var_rows])
        else:
            # The predicate reads no bound variable: one verdict decides
            # the whole batch.
            groups = repeat((), n)
        check = self._checker(ctx)
        memo: dict = {}
        memo_get = memo.get
        mask = []
        add = mask.append
        for group in groups:
            verdict = memo_get(group)
            if verdict is None:
                verdict = memo[group] = check(group)
            add(verdict)
        kept = [list(compress(slots[i], mask)) for i in keep]
        survivors = len(kept[0]) if kept else sum(mask)
        return (survivors, kept)


def _disjuncts(pred: ast.Pred) -> tuple:
    """The top-level disjuncts of ``pred`` (flattening nested ORs)."""
    if isinstance(pred, ast.Or):
        out: list = []
        for part in pred.parts:
            out.extend(_disjuncts(part))
        return tuple(out)
    return (pred,)


def _probe_key(equalities, qvar: str, names: dict, gen):
    """Compile the correlated probe key of a quantifier body.

    ``equalities`` are ``(left, right)`` pairs that must each equate one
    attribute of the quantified variable with a term over outer
    bindings; returns ``(attrs, key_fn)`` or None when any pair does not
    fit the shape.
    """
    attrs: list[str] = []
    exprs: list[str] = []
    for left, right in equalities:
        matched = False
        for qside, outer in ((left, right), (right, left)):
            if (
                isinstance(qside, ast.AttrRef)
                and qside.var == qvar
                and qvar not in free_tuple_vars(outer)
            ):
                expr = gen.col_term(outer, names, None)
                if expr is not None:
                    attrs.append(qside.attr)
                    exprs.append(expr)
                    matched = True
                    break
        if not matched:
            return None
    if not attrs:
        return None
    key_src = exprs[0] if len(exprs) == 1 else _tuple_src(exprs)
    key_fn = gen.define("_rkey", f"def _rkey(k):\n    return {key_src}\n")
    return tuple(attrs), key_fn


def _residual_probe(pred: ast.Pred, var_rows, gen) -> ResidualProbe | None:
    """Recognize a probe-reducible residual, compiling its key extractor.

    ``var_rows`` fixes the group-key layout: a single ``(var, schema,
    slot)`` triple means the group is that variable's row; several mean a
    tuple of rows in that order.  Returns None when the predicate needs
    the evaluator fallback.
    """
    negate = False
    if isinstance(pred, ast.Not):
        negate = True
        pred = pred.pred
    if len(var_rows) == 1:
        names = {var_rows[0][0]: "k"}
    else:
        names = {vr[0]: f"k[{i}]" for i, vr in enumerate(var_rows)}
    if isinstance(pred, ast.InRel):
        if not _static_residual_range(pred.range):
            return None
        expr = gen.col_term(pred.element, names, None)
        if expr is None:
            return None
        key_fn = gen.define("_rkey", f"def _rkey(k):\n    return {expr}\n")
        return ResidualProbe("inrel", pred.range, (), key_fn, negate)
    if isinstance(pred, ast.Some) and len(pred.vars) == 1:
        qvar = pred.vars[0]
        if qvar in names or not _static_residual_range(pred.range):
            return None
        equalities = []
        for conj in conjuncts(pred.pred):
            if not (isinstance(conj, ast.Cmp) and conj.op == "="):
                return None
            equalities.append((conj.left, conj.right))
        key = _probe_key(equalities, qvar, names, gen)
        if key is None:
            return None
        attrs, key_fn = key
        return ResidualProbe("some", pred.range, attrs, key_fn, negate)
    if isinstance(pred, ast.All) and len(pred.vars) == 1:
        # Complement probe (ROADMAP follow-up): a universal whose body is
        # a disjunction of inequalities is the negation of an existential
        # over the complementary equalities —
        #   ALL s IN R (s.a <> t1 OR s.b <> t2)
        #     ==  NOT SOME s IN R (s.a = t1 AND s.b = t2)
        # — one grouped anti-join probe per batch, no evaluator calls.
        qvar = pred.vars[0]
        if qvar in names or not _static_residual_range(pred.range):
            return None
        equalities = []
        for disj in _disjuncts(pred.pred):
            if isinstance(disj, ast.Not) and (
                isinstance(disj.pred, ast.Cmp) and disj.pred.op == "="
            ):
                equalities.append((disj.pred.left, disj.pred.right))
            elif isinstance(disj, ast.Cmp) and disj.op == "<>":
                equalities.append((disj.left, disj.right))
            else:
                return None
        key = _probe_key(equalities, qvar, names, gen)
        if key is None:
            return None
        attrs, key_fn = key
        return ResidualProbe("some", pred.range, attrs, key_fn, not negate)
    return None


class Project(Operator):
    """Positional target extraction (or the identity branch's one row).

    When liveness has already reduced the carry to exactly the target
    tuple, the projection is the identity and the batch passes through
    untouched.
    """

    __slots__ = ("fn",)

    def __init__(self, desc: str, fn) -> None:
        super().__init__(f"PROJECT {desc}")
        self.fn = fn  # None => identity

    def run(self, ctx, batch: list) -> list:
        out = batch if self.fn is None else self.fn(batch)
        ctx.stats.tuples_emitted += len(out)
        return out


class Dedup(Operator):
    """Union with duplicate elimination: set semantics over the branches."""

    def __init__(self) -> None:
        super().__init__("DEDUP")

    def absorb(self, batch: list, out: set) -> None:
        before = len(out)
        out.update(batch)
        self.actual_rows += len(out) - before
        self.executions += 1


class DeltaApply(Operator):
    """``produced - known``: the semi-naive differential application.

    The fixpoint driver routes every per-iteration result through one of
    these per fixpoint variable, so the explain report shows how many
    genuinely fresh tuples each iteration wave contributed.
    """

    def __init__(self, label: str) -> None:
        super().__init__(f"DELTAAPPLY {label}")

    def apply(self, produced: set, known) -> set:
        fresh = produced - known
        self.actual_rows += len(fresh)
        self.executions += 1
        return fresh


# ---------------------------------------------------------------------------
# Lowering: priced loop steps -> generated operator pipeline
# ---------------------------------------------------------------------------
#
# Carry layouts are tuples of *items*: ("attr", var, idx) carries one
# attribute value, ("row", var) carries a whole bound row (needed only
# by residual predicates and VarRef targets).  An attr item is dropped
# from a layout whenever the same variable's whole row is live there.


def _term_items(term: ast.Term, schemas) -> list | None:
    """The carry items a term reads, or None when untranslatable."""
    if isinstance(term, (ast.Const, ast.ParamRef)):
        return []
    if isinstance(term, ast.AttrRef):
        schema = schemas.get(term.var)
        if schema is None:
            return None
        return [("attr", term.var, schema.index_of(term.attr))]
    if isinstance(term, ast.VarRef):
        if term.var not in schemas:
            return None
        return [("row", term.var)]
    if isinstance(term, ast.Arith):
        left = _term_items(term.left, schemas)
        right = _term_items(term.right, schemas)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(term, ast.TupleCons):
        out: list = []
        for item in term.items:
            sub = _term_items(item, schemas)
            if sub is None:
                return None
            out.extend(sub)
        return out
    return None


class _CodeGen:
    """Generates operator inner loops against flat carry layouts."""

    def __init__(self, schemas, params: dict) -> None:
        self.schemas = schemas
        self.ns: dict = {"_params": params}
        self._n = 0

    def const(self, value) -> str:
        """Bind a constant into the namespace (no repr round-trips)."""
        name = f"_c{self._n}"
        self._n += 1
        self.ns[name] = value
        return name

    def define(self, name: str, src: str):
        exec(src, self.ns)  # noqa: S102 - compile-time codegen, own AST only
        return self.ns[name]

    # -- expressions --------------------------------------------------------

    def term_expr(self, term: ast.Term, pos_of: dict, cur_var: str | None):
        """Python source for a term, or None when untranslatable."""
        if isinstance(term, ast.Const):
            return self.const(term.value)
        if isinstance(term, ast.ParamRef):
            return f"_params[{term.name!r}]"
        if isinstance(term, ast.AttrRef):
            schema = self.schemas.get(term.var)
            if schema is None:
                return None
            return self.attr_expr(term.var, schema.index_of(term.attr), pos_of, cur_var)
        if isinstance(term, ast.VarRef):
            return self.row_expr(term.var, pos_of, cur_var)
        if isinstance(term, ast.Arith):
            left = self.term_expr(term.left, pos_of, cur_var)
            right = self.term_expr(term.right, pos_of, cur_var)
            op = _ARITH_SRC.get(term.op)
            if left is None or right is None or op is None:
                return None
            return f"({left} {op} {right})"
        if isinstance(term, ast.TupleCons):
            items = [self.term_expr(i, pos_of, cur_var) for i in term.items]
            if any(i is None for i in items):
                return None
            return _tuple_src(items)
        return None

    def attr_expr(self, var: str, idx: int, pos_of: dict, cur_var: str | None):
        if var == cur_var:
            return f"r[{idx}]"
        pos = pos_of.get(("attr", var, idx))
        if pos is not None:
            return f"e[{pos}]"
        pos = pos_of.get(("row", var))
        if pos is not None:
            return f"e[{pos}][{idx}]"
        return None

    def row_expr(self, var: str, pos_of: dict, cur_var: str | None):
        if var == cur_var:
            return "r"
        pos = pos_of.get(("row", var))
        return f"e[{pos}]" if pos is not None else None

    def item_expr(self, item, pos_of: dict, cur_var: str | None):
        if item[0] == "row":
            return self.row_expr(item[1], pos_of, cur_var)
        return self.attr_expr(item[1], item[2], pos_of, cur_var)

    def cmp_expr(self, conj: ast.Cmp, pos_of: dict):
        left = self.term_expr(conj.left, pos_of, None)
        right = self.term_expr(conj.right, pos_of, None)
        op = _CMP_SRC.get(conj.op)
        if left is None or right is None or op is None:
            return None
        return f"({left} {op} {right})"


def _tuple_src(exprs: list[str]) -> str:
    if not exprs:
        return "()"
    return "(" + ", ".join(exprs) + ",)"


class BranchPipeline:
    """The lowered physical form of one branch plan.

    ``step_ops[i]`` holds the access operator (plus optional filter) of
    the ``i``-th binding step, so the executor can keep the per-step
    actual binding counts the tuple interpreter reports; ``tail_ops``
    are the residual filter (when present) and the projection.

    ``columnar`` marks pipelines whose carries are struct-of-arrays
    slots; ``fused`` marks pipelines whose final access/filter operator
    emits the projected result directly (no standalone Project pass).
    ``shippable`` marks all-vector pipelines whose operators pickle and
    never touch raw rows or the database — the sharded executor's
    persistent process pool ships those with per-shard encoded buffers
    instead of relying on fork-time inheritance.
    """

    __slots__ = ("step_ops", "tail_ops", "columnar", "fused", "shippable")

    def __init__(
        self, step_ops, tail_ops, columnar=False, fused=False, shippable=False
    ) -> None:
        self.step_ops = step_ops
        self.tail_ops = tail_ops
        self.columnar = columnar
        self.fused = fused
        self.shippable = shippable

    def operators(self):
        for ops in self.step_ops:
            yield from ops
        yield from self.tail_ops

    def explain(self, indent: str = "") -> str:
        return "\n".join(
            f"{indent}{op.explain_line()}" for op in self.operators()
        )


def lower_branch(
    steps,
    residual: ast.Pred,
    schemas,
    target_terms,
    target_desc: str,
    params: dict,
    est_out: float | None = None,
) -> BranchPipeline | None:
    """Lower priced loop steps into the batched operator pipeline.

    Returns None when some term cannot be expressed as generated code
    (the plan then falls back to tuple-at-a-time execution).
    """
    if not steps:
        return None
    gen = _CodeGen(schemas, params)
    has_residual = not isinstance(residual, ast.TruePred)

    # The pipeline's entries, each with the carry items it reads.
    entries: list[tuple[str, object]] = []
    entry_items: list[list] = []
    access_entry: dict[int, int] = {}
    for s, step in enumerate(steps):
        items: list = []
        for term in step.key_terms:
            sub = _term_items(term, schemas)
            if sub is None:
                return None
            items.extend(sub)
        access_entry[s] = len(entries)
        entries.append(("access", step))
        entry_items.append(items)
        if step.filter_conjs:
            items = []
            for conj in step.filter_conjs:
                left = _term_items(conj.left, schemas)
                right = _term_items(conj.right, schemas)
                if left is None or right is None:
                    return None
                items.extend(left + right)
            entries.append(("filter", step))
            entry_items.append(items)
        if step.residual_preds:
            # Single-variable residuals (memberships, quantifiers) run
            # right after their step binds; they read the whole row.
            entries.append(("step_residual", step))
            entry_items.append([("row", step.var)])
    if has_residual:
        entries.append(("residual", residual))
        entry_items.append(
            [("row", v) for v in sorted(free_tuple_vars(residual)) if v in schemas]
        )
    if target_terms is None:
        project_items: list | None = [("row", steps[0].var)]
    else:
        project_items = []
        for term in target_terms:
            sub = _term_items(term, schemas)
            if sub is None:
                return None
            project_items.extend(sub)
    entries.append(("project", target_terms))
    entry_items.append(project_items)

    # Liveness: the carry layout after step s holds every item some
    # later entry reads, restricted to variables already bound; whole
    # rows subsume their attribute items.
    bound_rank = {step.var: s for s, step in enumerate(steps)}
    layouts: list[tuple] = []
    for s in range(len(steps)):
        k = access_entry[s]
        ordered: dict = {}
        for j in range(k + 1, len(entries)):
            for item in entry_items[j]:
                if bound_rank.get(item[1], len(steps)) <= s:
                    ordered.setdefault(item, None)
        rows_live = {item[1] for item in ordered if item[0] == "row"}
        layouts.append(
            tuple(
                item
                for item in ordered
                if item[0] == "row" or item[1] not in rows_live
            )
        )

    def positions(layout: tuple) -> dict:
        return {item: pos for pos, item in enumerate(layout)}

    # Generate one operator per entry.
    step_ops: list[list[Operator]] = []
    tail_ops: list[Operator] = []
    prev_pos: dict = {}
    current: list[Operator] = []
    for (kind, payload), _items in zip(entries, entry_items):
        if kind == "access":
            step = payload
            s = bound_rank[step.var]
            layout = layouts[s]
            emits = [gen.item_expr(item, prev_pos, step.var) for item in layout]
            if any(e is None for e in emits):
                return None
            arity = len(step.schema.attribute_names)
            identity = emits == [f"r[{i}]" for i in range(arity)]
            emit_src = "r" if identity else _tuple_src(emits)
            if step.key_positions:
                key_exprs = [
                    gen.term_expr(term, prev_pos, None) for term in step.key_terms
                ]
                if any(k is None for k in key_exprs):
                    return None
                if all(not free_tuple_vars(term) for term in step.key_terms):
                    # Constant key: one lookup shared by the batch.
                    key_fn = gen.define(
                        "_key",
                        f"def _key():\n    return {_tuple_src(key_exprs)}\n",
                    )
                    fn = gen.define(
                        "_lookup",
                        "def _lookup(bucket, batch):\n"
                        f"    return [{emit_src} for e in batch for r in bucket]\n",
                    )
                    op: Operator = IndexLookup(
                        step.source, step.key_positions, key_fn, fn
                    )
                else:
                    scalar = len(key_exprs) == 1
                    key_src = key_exprs[0] if scalar else _tuple_src(key_exprs)
                    fn = gen.define(
                        "_join",
                        "def _join(get, batch, EMPTY):\n"
                        f"    return [{emit_src} for e in batch "
                        f"for r in get({key_src}, EMPTY)]\n",
                    )
                    op = HashJoin(step.source, step.key_positions, scalar, fn)
            else:
                body = f"    return [{emit_src} for e in batch for r in rows]\n"
                if identity:
                    # The common leading scan copies nothing.
                    body = (
                        "    if len(batch) == 1:\n"
                        "        return list(rows)\n" + body
                    )
                fn = gen.define("_scan", "def _scan(rows, batch):\n" + body)
                op = Scan(step.source, fn, step.pushdown)
            current = [op]
            step_ops.append(current)
            prev_pos = positions(layout)
        elif kind == "filter":
            step = payload
            conds = [gen.cmp_expr(conj, prev_pos) for conj in step.filter_conjs]
            if any(c is None for c in conds):
                return None
            fn = gen.define(
                "_filter",
                "def _filter(batch):\n"
                f"    return [e for e in batch if {' and '.join(conds)}]\n",
            )
            current.append(Filter(step.filter_descs, fn))
        elif kind == "step_residual":
            step = payload
            pos = prev_pos.get(("row", step.var))
            if pos is None:
                return None
            current.append(
                ResidualFilter(
                    conjoin(step.residual_preds),
                    [(step.var, schemas[step.var], pos)],
                )
            )
        elif kind == "residual":
            pos_of = prev_pos
            var_rows = []
            for var in sorted(free_tuple_vars(payload)):
                if var not in schemas:
                    continue
                pos = pos_of.get(("row", var))
                if pos is None:
                    return None
                var_rows.append((var, schemas[var], pos))
            tail_ops.append(ResidualFilter(payload, var_rows))
        else:  # project
            if target_terms is None:
                expr = gen.row_expr(steps[0].var, prev_pos, None)
                if expr is None:
                    return None
                exprs = [expr]
                single = True
            else:
                exprs = [
                    gen.term_expr(term, prev_pos, None) for term in target_terms
                ]
                if any(e is None for e in exprs):
                    return None
                single = False
            identity = (
                not single
                and len(exprs) == len(prev_pos)
                and exprs == [f"e[{i}]" for i in range(len(exprs))]
            )
            if identity:
                fn = None
            else:
                out_src = exprs[0] if single else _tuple_src(exprs)
                fn = gen.define(
                    "_project",
                    "def _project(batch):\n"
                    f"    return [{out_src} for e in batch]\n",
                )
            tail_ops.append(Project(target_desc, fn))

    # Attach the optimizer's cumulative estimates for explain().
    for s, ops in enumerate(step_ops):
        ops[-1].est_rows = steps[s].est_cumulative
    tail_ops[-1].est_rows = est_out
    return BranchPipeline(step_ops, tail_ops)


# ---------------------------------------------------------------------------
# Columnar lowering: struct-of-arrays carries with operator fusion
# ---------------------------------------------------------------------------
#
# A columnar batch is ``(n, slots)``: ``n`` is the row count and each
# slot is a list of *source rows* (one slot per still-live binding
# variable, in binding order), all aligned — slot_i[t] is the row the
# t-th carry binds for that variable.  This is a late-materialized
# struct-of-arrays layout: no attribute value is copied between
# operators; a join expands each live slot with C-level kernels
# (map/itemgetter column slices, chain/repeat expansion, compress
# filtering) and only the final projection materializes result tuples —
# fused into the producing access or filter operator whenever no
# residual predicate follows it.

#: C-level kernels shared by every generated columnar function.
_COLUMNAR_NS = {
    "_fi": chain.from_iterable,
    "_rep": repeat,
    "_cmp": compress,
    "_ig": itemgetter,
    "_len": len,
    "_list": list,
    "_map": map,
    "_zip": zip,
    "_range": range,
    "_sum": sum,
}


class _ColGen(_CodeGen):
    """Generates columnar kernels over slot-of-rows carries.

    ``touched`` accumulates the bound variables whose slot expressions
    the generated source actually referenced — the fused-emit pass
    resets it, generates its target/condition sources, and zips exactly
    the touched slots (structural liveness, no source re-parsing).
    """

    def __init__(self, schemas, params: dict) -> None:
        super().__init__(schemas, params)
        self.ns.update(_COLUMNAR_NS)
        self.touched: set[str] = set()

    def col_term(self, term: ast.Term, names: dict, cur_var: str | None):
        """Python source for a term; bound rows are reachable through
        ``names[var]`` (loop variables or group-key subscripts), the
        current step's source row through ``r``."""
        if isinstance(term, ast.Const):
            return self.const(term.value)
        if isinstance(term, ast.ParamRef):
            return f"_params[{term.name!r}]"
        if isinstance(term, ast.AttrRef):
            schema = self.schemas.get(term.var)
            if schema is None:
                return None
            idx = schema.index_of(term.attr)
            if term.var == cur_var:
                return f"r[{idx}]"
            base = names.get(term.var)
            if base is None:
                return None
            self.touched.add(term.var)
            return f"{base}[{idx}]"
        if isinstance(term, ast.VarRef):
            if term.var == cur_var:
                return "r"
            base = names.get(term.var)
            if base is not None:
                self.touched.add(term.var)
            return base
        if isinstance(term, ast.Arith):
            left = self.col_term(term.left, names, cur_var)
            right = self.col_term(term.right, names, cur_var)
            op = _ARITH_SRC.get(term.op)
            if left is None or right is None or op is None:
                return None
            return f"({left} {op} {right})"
        if isinstance(term, ast.TupleCons):
            items = [self.col_term(i, names, cur_var) for i in term.items]
            if any(i is None for i in items):
                return None
            return _tuple_src(items)
        return None

    def col_cmp(self, conj: ast.Cmp, names: dict, cur_var: str | None = None):
        left = self.col_term(conj.left, names, cur_var)
        right = self.col_term(conj.right, names, cur_var)
        op = _CMP_SRC.get(conj.op)
        if left is None or right is None or op is None:
            return None
        return f"({left} {op} {right})"


def lower_branch_columnar(
    steps,
    residual: ast.Pred,
    schemas,
    target_terms,
    target_desc: str,
    params: dict,
    est_out: float | None = None,
) -> BranchPipeline | None:
    """Lower priced loop steps into the columnar operator pipeline.

    Returns None when some term cannot be expressed as generated code
    (the executor then falls back to the row-major pipeline, and from
    there to tuple-at-a-time interpretation).
    """
    if not steps:
        return None
    gen = _ColGen(schemas, params)
    bound_rank = {step.var: s for s, step in enumerate(steps)}
    bound_vars = set(bound_rank)

    def term_reads(term: ast.Term):
        vars_ = free_tuple_vars(term)
        if not vars_ <= bound_vars:
            return None
        return vars_

    # --- G2: cost-gated pushdown of selective single-variable filters ---
    # A HashJoin step whose priced filter selectivity clears the
    # FILTER_PUSH_SEL gate filters its buckets per distinct key at probe
    # time; the conjuncts leave the Filter operator entirely.
    step_conjs: dict[int, list] = {}
    step_push: dict[int, tuple] = {}
    for s, step in enumerate(steps):
        kept: list = []
        push_srcs: list[str] = []
        push_descs: list[str] = []
        sel = getattr(step, "est_filter_sel", None)
        hash_join = bool(step.key_positions) and any(
            free_tuple_vars(t) for t in step.key_terms
        )
        allow = hash_join and sel is not None and sel <= FILTER_PUSH_SEL
        for conj, desc in zip(step.filter_conjs, step.filter_descs):
            src = None
            if allow and (
                free_tuple_vars(conj.left) | free_tuple_vars(conj.right)
            ) <= {step.var}:
                src = gen.col_cmp(conj, {}, step.var)
            if src is None:
                kept.append((conj, desc))
            else:
                push_srcs.append(src)
                push_descs.append(desc)
        step_conjs[s] = kept
        if push_srcs:
            fn = gen.define(
                "_push", "def _push(r):\n    return " + " and ".join(push_srcs) + "\n"
            )
            step_push[s] = (fn, ", ".join(push_descs))

    # --- the pipeline's entries, each with the variables it reads ---
    entries: list[tuple] = []
    for s, step in enumerate(steps):
        reads: set = set()
        for term in step.key_terms:
            vars_ = term_reads(term)
            if vars_ is None:
                return None
            reads |= vars_
        entries.append(("access", s, reads))
        if step_conjs[s]:
            freads: set = set()
            for conj, _desc in step_conjs[s]:
                left = term_reads(conj.left)
                right = term_reads(conj.right)
                if left is None or right is None:
                    return None
                freads |= left | right
            entries.append(("filter", s, freads))
        for pred in step.residual_preds:
            entries.append(("step_residual", (s, pred), {step.var}))
    has_residual = not isinstance(residual, ast.TruePred)
    if has_residual:
        for conj in conjuncts(residual):
            entries.append(
                ("residual", conj, {v for v in free_tuple_vars(conj) if v in bound_vars})
            )
    if target_terms is None:
        proj_reads = {steps[0].var}
    else:
        proj_reads = set()
        for term in target_terms:
            vars_ = term_reads(term)
            if vars_ is None:
                return None
            proj_reads |= vars_
    entries.append(("project", target_terms, proj_reads))

    # --- fusion: Project (and the final step's filter) folds into the
    # producing access operator exactly when no residual follows it ---
    last = len(steps) - 1
    fuse = not has_residual and not steps[last].residual_preds
    fused_conds: list = []
    if fuse:
        fused_conds = step_conjs[last]
        entries = [
            e
            for e in entries
            if e[0] != "project" and not (e[0] == "filter" and e[1] == last)
        ]
        kind, payload, reads = entries[-1]
        extra = set(proj_reads)
        for conj, _desc in fused_conds:
            left = term_reads(conj.left)
            right = term_reads(conj.right)
            if left is None or right is None:
                return None
            extra |= left | right
        entries[-1] = (kind, payload, reads | extra)

    # --- liveness: after entry k a slot survives iff some later entry
    # reads its variable ---
    n_entries = len(entries)
    after: list[set] = [set()] * n_entries
    running: set = set()
    for k in range(n_entries - 1, -1, -1):
        after[k] = set(running)
        running |= entries[k][2]

    # --- generation -----------------------------------------------------

    def unpack_src(indices) -> str:
        return "".join(f"    s{i} = slots[{i}]\n" for i in sorted(set(indices)))

    def key_columns(step, slot_of, names):
        """Source expressions for the probe-key columns, or None."""
        cols = []
        for term in step.key_terms:
            vars_ = free_tuple_vars(term)
            if (
                isinstance(term, ast.AttrRef)
                and term.var in slot_of
                and schemas.get(term.var) is not None
            ):
                idx = schemas[term.var].index_of(term.attr)
                cols.append(f"_map(_ig({idx}), s{slot_of[term.var]})")
            elif not vars_:
                expr = gen.col_term(term, {}, None)
                if expr is None:
                    return None
                cols.append(f"_rep({expr})")
            else:
                read = sorted(vars_, key=lambda v: slot_of.get(v, -1))
                if any(v not in slot_of for v in read):
                    return None
                expr = gen.col_term(term, names, None)
                if expr is None:
                    return None
                if len(read) == 1:
                    j = slot_of[read[0]]
                    cols.append(f"[{expr} for e{j} in s{j}]")
                else:
                    unp = ", ".join(f"e{slot_of[v]}" for v in read)
                    srcs = ", ".join(f"s{slot_of[v]}" for v in read)
                    cols.append(f"[{expr} for {unp} in _zip({srcs})]")
        return cols

    def emit_comprehension(step, slot_of, names, conds_pairs, arg_rows: str, n_known):
        """The fused final pass: access + filter + project in one loop."""
        var = step.var
        gen.touched = set()
        if target_terms is None:
            root = steps[0].var
            if root == var:
                target = "r"
            else:
                target = names.get(root)
                if target is None:
                    return None
                gen.touched.add(root)
        else:
            exprs = [gen.col_term(t, names, var) for t in target_terms]
            if any(e is None for e in exprs):
                return None
            target = _tuple_src(exprs)
        cond_srcs = []
        for conj, _desc in conds_pairs:
            src = gen.col_cmp(conj, names, var)
            if src is None:
                return None
            cond_srcs.append(src)
        cond = f" if {' and '.join(cond_srcs)}" if cond_srcs else ""
        read = [v for v in sorted(slot_of, key=slot_of.get) if v in gen.touched]
        if arg_rows == "_b":  # hash-join buckets aligned with the batch
            if read:
                unp = ", ".join(f"e{slot_of[v]}" for v in read)
                srcs = ", ".join(f"s{slot_of[v]}" for v in read)
                return (
                    f"    return [{target} for {unp}, _bk in _zip({srcs}, _b) "
                    f"for r in _bk{cond}]\n"
                )
            return f"    return [{target} for _bk in _b for r in _bk{cond}]\n"
        # scan / constant-key bucket: one shared row source
        if read:
            unp = ", ".join(f"e{slot_of[v]}" for v in read)
            srcs = ", ".join(f"s{slot_of[v]}" for v in read)
            if len(read) == 1:
                j = slot_of[read[0]]
                return (
                    f"    return [{target} for e{j} in s{j} "
                    f"for r in {arg_rows}{cond}]\n"
                )
            return (
                f"    return [{target} for {unp} in _zip({srcs}) "
                f"for r in {arg_rows}{cond}]\n"
            )
        if n_known:  # leading step: exactly one incoming carry
            if target == "r" and not cond and arg_rows == "rows":
                return "    return rows if type(rows) is list else _list(rows)\n"
            return f"    return [{target} for r in {arg_rows}{cond}]\n"
        return (
            f"    return [{target} for _t in _range(n) for r in {arg_rows}{cond}]\n"
        )

    def gen_access(k, s, layout_before, layout_after, final):
        step = steps[s]
        var = step.var
        slot_of = {v: i for i, v in enumerate(layout_before)}
        names = {v: f"e{slot_of[v]}" for v in slot_of}
        const_key = bool(step.key_positions) and all(
            not free_tuple_vars(t) for t in step.key_terms
        )
        is_join = bool(step.key_positions) and not const_key
        parents = [v for v in layout_after if v != var]
        conds_pairs = fused_conds if final else []

        if is_join:
            cols = key_columns(step, slot_of, names)
            if cols is None or not layout_before:
                return None
            key = cols[0] if len(cols) == 1 else f"_zip({', '.join(cols)})"
            scalar = len(cols) == 1
            body = "    n, slots = batch\n"
            body += unpack_src(slot_of.values())
            if final:
                body += f"    _b = _map(get, {key}, _rep(EMPTY))\n"
                tail = emit_comprehension(step, slot_of, names, conds_pairs, "_b", False)
                if tail is None:
                    return None
                body += tail
            else:
                body += f"    _b = _list(_map(get, {key}, _rep(EMPTY)))\n"
                body += "    _c = _list(_map(_len, _b))\n"
                outs = []
                for v in layout_after:
                    if v == var:
                        body += "    on = _list(_fi(_b))\n"
                        outs.append("on")
                    else:
                        j = slot_of[v]
                        body += f"    o{j} = _list(_fi(_map(_rep, s{j}, _c)))\n"
                        outs.append(f"o{j}")
                if outs:
                    body += f"    return (_len({outs[0]}), [{', '.join(outs)}])\n"
                else:
                    body += "    return (_sum(_c), [])\n"
            fn = gen.define("_join", "def _join(get, batch, EMPTY):\n" + body)
            push_fn, push_desc = step_push.get(s, (None, ""))
            return HashJoin(
                step.source, step.key_positions, scalar, fn, push_fn, push_desc
            )

        # Scan or constant-key IndexLookup: one shared row source.
        arg = "bucket" if const_key else "rows"
        body = "    n, slots = batch\n"
        body += unpack_src(slot_of.values())
        leading = s == 0
        if final:
            tail = emit_comprehension(step, slot_of, names, conds_pairs, arg, leading)
            if tail is None:
                return None
            body += tail
        elif leading:
            if var in layout_after:
                body += (
                    f"    {arg} = {arg} if type({arg}) is list else _list({arg})\n"
                    f"    return (_len({arg}), [{arg}])\n"
                )
            else:
                body += f"    return (_len({arg}), [])\n"
        else:
            body += f"    {arg} = {arg} if type({arg}) is list else _list({arg})\n"
            body += f"    _nr = _len({arg})\n"
            outs = []
            for v in layout_after:
                if v == var:
                    body += f"    on = {arg} * n\n"
                    outs.append("on")
                else:
                    j = slot_of[v]
                    body += f"    o{j} = _list(_fi(_map(_rep, s{j}, _rep(_nr))))\n"
                    outs.append(f"o{j}")
            body += f"    return (n * _nr, [{', '.join(outs)}])\n"
        if const_key:
            key_exprs = [gen.term_expr(t, {}, None) for t in step.key_terms]
            if any(e is None for e in key_exprs):
                return None
            key_fn = gen.define(
                "_key", f"def _key():\n    return {_tuple_src(key_exprs)}\n"
            )
            fn = gen.define("_lookup", "def _lookup(bucket, batch):\n" + body)
            return IndexLookup(step.source, step.key_positions, key_fn, fn)
        fn = gen.define("_scan", "def _scan(rows, batch):\n" + body)
        return Scan(step.source, fn, step.pushdown)

    def gen_filter(s, layout_before, layout_after):
        slot_of = {v: i for i, v in enumerate(layout_before)}
        names = {v: f"e{slot_of[v]}" for v in slot_of}
        conds = []
        read: set = set()
        descs = []
        for conj, desc in step_conjs[s]:
            src = gen.col_cmp(conj, names, None)
            if src is None:
                return None
            conds.append(src)
            read |= free_tuple_vars(conj.left) | free_tuple_vars(conj.right)
            descs.append(desc)
        keep = [slot_of[v] for v in layout_after]
        cond = " and ".join(conds)
        body = "    n, slots = batch\n"
        read_idx = sorted(slot_of[v] for v in read if v in slot_of)
        body += unpack_src(set(read_idx) | {slot_of[v] for v in layout_after})
        if not read_idx:
            kept = ", ".join(f"s{j}" for j in keep)
            body += (
                f"    if {cond}:\n        return (n, [{kept}])\n"
                f"    return (0, [{', '.join('[]' for _ in keep) }])\n"
            )
        else:
            if len(read_idx) == 1:
                j = read_idx[0]
                body += f"    _m = [{cond} for e{j} in s{j}]\n"
            else:
                unp = ", ".join(f"e{j}" for j in read_idx)
                srcs = ", ".join(f"s{j}" for j in read_idx)
                body += f"    _m = [{cond} for {unp} in _zip({srcs})]\n"
            outs = []
            for j in keep:
                body += f"    o{j} = _list(_cmp(s{j}, _m))\n"
                outs.append(f"o{j}")
            if outs:
                body += f"    return (_len({outs[0]}), [{', '.join(outs)}])\n"
            else:
                body += "    return (_sum(_m), [])\n"
        fn = gen.define("_filter", "def _filter(batch):\n" + body)
        return Filter(tuple(descs), fn)

    def gen_project(layout_before):
        slot_of = {v: i for i, v in enumerate(layout_before)}
        names = {v: f"e{slot_of[v]}" for v in slot_of}
        body = "    n, slots = batch\n"
        if target_terms is None:
            root = steps[0].var
            if root not in slot_of:
                return None
            body += f"    return slots[{slot_of[root]}]\n"
        else:
            exprs = [gen.col_term(t, names, None) for t in target_terms]
            if any(e is None for e in exprs):
                return None
            target = _tuple_src(exprs)
            read = sorted(
                {v for t in target_terms for v in free_tuple_vars(t)},
                key=lambda v: slot_of.get(v, -1),
            )
            if not read:
                body += f"    return [{target}] * n\n"
            elif len(read) == 1:
                j = slot_of[read[0]]
                body += f"    return [{target} for e{j} in slots[{j}]]\n"
            else:
                unp = ", ".join(f"e{slot_of[v]}" for v in read)
                srcs = ", ".join(f"slots[{slot_of[v]}]" for v in read)
                body += f"    return [{target} for {unp} in _zip({srcs})]\n"
        fn = gen.define("_project", "def _project(batch):\n" + body)
        return Project(target_desc, fn)

    step_ops: list[list[Operator]] = []
    tail_ops: list[Operator] = []
    layout: list[str] = []
    current: list[Operator] = []
    for k, (kind, payload, reads) in enumerate(entries):
        if kind == "access":
            s = payload
            final_here = fuse and s == last
            if final_here:
                layout_after: list[str] = []
            else:
                layout_after = [
                    st.var for st in steps[: s + 1] if st.var in after[k]
                ]
            op = gen_access(k, s, layout, layout_after, final_here)
            if op is None:
                return None
            current = [op]
            step_ops.append(current)
            layout = layout_after
        elif kind == "filter":
            s = payload
            layout_after = [st.var for st in steps[: s + 1] if st.var in after[k]]
            op = gen_filter(s, layout, layout_after)
            if op is None:
                return None
            current.append(op)
            layout = layout_after
        elif kind in ("step_residual", "residual"):
            if kind == "step_residual":
                s, pred = payload
                read_vars = [steps[s].var]
                bound_here = steps[: s + 1]
            else:
                pred = payload
                read_vars = sorted(reads, key=lambda v: bound_rank[v])
                bound_here = steps
            layout_after = [st.var for st in bound_here if st.var in after[k]]
            slot_of = {v: i for i, v in enumerate(layout)}
            if any(v not in slot_of for v in read_vars):
                return None
            var_rows = [(v, schemas[v], slot_of[v]) for v in read_vars]
            keep_slots = [slot_of[v] for v in layout_after]
            probe = _residual_probe(pred, var_rows, gen)
            op = BatchedResidualFilter(pred, var_rows, keep_slots, probe)
            if kind == "step_residual":
                current.append(op)
            else:
                tail_ops.append(op)
            layout = layout_after
        else:  # standalone project (a residual precedes it)
            op = gen_project(layout)
            if op is None:
                return None
            tail_ops.append(op)

    for s, ops in enumerate(step_ops):
        ops[-1].est_rows = steps[s].est_cumulative
    if tail_ops:
        tail_ops[-1].est_rows = est_out
    else:
        step_ops[-1][-1].est_rows = est_out
    return BranchPipeline(step_ops, tail_ops, columnar=True, fused=fuse)


# ---------------------------------------------------------------------------
# Vector kernels: dictionary-encoded columns, int-id carries
# ---------------------------------------------------------------------------
#
# Vector batches are ``(n, islots)`` pairs whose slots carry **row
# indexes** — plain lists, or int64 numpy arrays on the fast path — into
# per-step encoded tables, instead of lists of Python row objects.
# Every kernel works on dense int ids: equality joins probe dense
# id-indexed group tables (through a cached translation array when the
# two columns' dictionaries differ), comparison filters evaluate one
# verdict per *dictionary value* rather than per row, and projection
# deduplicates id tuples before decoding only the distinct survivors.
#
# Unlike the columnar pipeline these operators are plain classes (no
# generated code), so a fully-vector pipeline pickles: sources travel as
# :class:`SourceRef` handles that drop the Source object at the process
# boundary, and a shipped pipeline resolves its tables exclusively
# through ``ctx.encoded_overrides`` (per-shard encoded buffers, keyed by
# step index).  Shapes the vector lowering does not cover fall back —
# per-branch to the columnar kernels, and per-operator through the
# :class:`VectorMaterialize` boundary, which rebuilds the PR 4 row-slot
# carry so residual predicates and whole-row targets reuse the grouped
# residual machinery unchanged.

_EMPTY_BUCKET: tuple = ()

#: Ordered comparisons evaluated per dictionary value (see _filter_lut);
#: = and <> compare ids directly and never build a table.
_CMP_FNS = {"<": lt, "<=": le, ">": gt, ">=": ge}

#: Normalizing ``const OP attr`` to ``attr OP' const``.
_SWAPPED_CMP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


class SourceRef:
    """A vector operator's handle to one binding step's source.

    ``key`` is the step's index in the branch — the stable identity the
    sharded executor uses to attach per-shard encoded tables through
    ``ctx.encoded_overrides`` (``id(source)`` does not survive pickling;
    a step index does).  The Source object itself is dropped on pickle:
    a shipped operator resolves *only* through the overrides.
    """

    __slots__ = ("key", "source", "pushdown")

    def __init__(self, key: int, source) -> None:
        self.key = key
        self.source = source
        #: Storage pushdown for scan-access steps (plans.ScanPushdown or
        #: None): a cold store-backed relation resolves to a partial
        #: encoded table holding only matching partitions' live columns.
        self.pushdown = None

    def __getstate__(self):
        # A bare ``self.key`` would be falsy for step 0 and pickle would
        # skip ``__setstate__`` entirely — always wrap in a tuple.
        # Pushdown is dropped with the source: shipped operators resolve
        # exclusively through the per-shard encoded overrides.
        return (self.key,)

    def __setstate__(self, state) -> None:
        self.key = state[0]
        self.source = None
        self.pushdown = None


def _encode_apply(rows, schema) -> EncodedTable:
    """Encode a fixpoint variable's rows with per-execution dictionaries.

    Fixpoint values have no stored :class:`Relation` whose persistent
    dictionaries they could borrow, so each (rows, ref) pair encodes
    with fresh ones; joins against stored relations bridge through the
    usual id-translation tables, which hash decoded values.
    """
    rows = rows if isinstance(rows, list) else list(rows)
    dicts = tuple(Dictionary() for _ in schema.attribute_names)
    return EncodedTable.from_rows(rows, dicts)


def _encoded_table(ctx, ref: SourceRef) -> EncodedTable:
    """Resolve the encoded table a vector operator reads.

    Resolution order: shipped per-shard buffers (``encoded_overrides``,
    keyed by step index), then row-level source overrides (sharding's
    in-process pools, serving snapshots) encoded on demand with the
    relation's persistent dictionaries and cached per execution context,
    then fixpoint variables (encoded per delta), then the relation's own
    version-cached encoded view.
    """
    shipped = ctx.encoded_overrides
    if shipped is not None:
        table = shipped.get(ref.key)
        if table is not None:
            return table
    source = ref.source
    overrides = ctx.source_overrides
    if overrides is not None:
        shard = overrides.get(id(source))
        if shard is not None:
            rows = shard[0]
            cache = ctx.vector_cache
            key = ("enc", ref.key)
            entry = cache.get(key)
            if entry is None or entry[0] is not rows:
                if source.kind == "apply":
                    table = _encode_apply(rows, source.schema)
                else:
                    relation = ctx.db.relation(source.name)
                    table = EncodedTable.from_rows(rows, relation.dictionaries())
                entry = (rows, table)
                cache[key] = entry
            return entry[1]
    if source.kind == "apply":
        rows = ctx.apply_values.get(source.token)
        if rows is None:
            raise EvaluationError(f"unbound fixpoint variable {source.token!r}")
        cache = ctx.vector_cache
        key = ("apply", ref.key)
        entry = cache.get(key)
        if entry is None or entry[0] is not rows:
            entry = (rows, _encode_apply(rows, source.schema))
            cache[key] = entry
        return entry[1]
    relation = ctx.db.relation(source.name)
    pushdown = ref.pushdown
    if pushdown is not None:
        store = relation.cold_store
        if store is not None:
            # Scan-access pushdown: a partial encoded table holding only
            # the matching partitions' rows, dead columns left undecoded.
            # Cached per ref identity (two branches share step indexes,
            # not refs) with the ref held against id() reuse.
            cache = ctx.vector_cache
            key = ("pscan", id(ref))
            entry = cache.get(key)
            if entry is None or entry[0] is not ref or entry[1] is not store:
                table = store.encoded_scan(
                    pushdown.projection, pushdown.selection, ctx.params
                )
                entry = (ref, store, table)
                cache[key] = entry
            return entry[2]
    return relation.encoded()


def _translation(ctx, src, dst):
    """Per-execution cached id-translation table between dictionaries.

    Both dictionaries only ever append, so a cached table can only be
    stale by being too short; the length stamps force a rebuild after
    either side grows, and the identity checks guard against ``id()``
    reuse after garbage collection.
    """
    if src is dst:
        return None
    cache = ctx.vector_cache
    key = ("xl", id(src), id(dst))
    entry = cache.get(key)
    if (
        entry is None
        or entry[0] is not src
        or entry[1] is not dst
        or entry[2] != len(src.values)
        or entry[3] != len(dst.values)
    ):
        entry = (src, dst, len(src.values), len(dst.values), translation(src, dst))
        cache[key] = entry
    return entry[4]


def _filter_lut(ctx, dictionary, op: str, value) -> bytearray:
    """One comparison verdict per dictionary value, cached per execution.

    The bytearray doubles as a numpy bool buffer (``frombuffer`` is zero
    copy), so both kernel paths gather verdicts by id.  Rebuilt when the
    dictionary has grown since the cached build — never wrong in
    between, because ids are append-only.
    """
    cache = ctx.vector_cache
    key = ("lut", id(dictionary), op, value)
    entry = cache.get(key)
    if (
        entry is None
        or entry[0] is not dictionary
        or entry[1] != len(dictionary.values)
    ):
        cmp = _CMP_FNS[op]
        lut = bytearray(cmp(v, value) for v in dictionary.values)
        entry = (dictionary, len(lut), lut)
        cache[key] = entry
    return entry[2]


def _np_slot(np, slot):
    """A slot as an int64 numpy array (no copy when it already is one)."""
    if isinstance(slot, np.ndarray):
        return slot
    return np.array(slot, dtype=np.int64)


def _list_slot(slot):
    """A slot as a plain list of ints (no copy when it already is one)."""
    return slot if type(slot) is list else slot.tolist()


def _spec_value(spec, ctx):
    """Resolve a ``("const", v)`` / ``("param", name)`` value spec."""
    return spec[1] if spec[0] == "const" else ctx.params[spec[1]]


class VectorScan(Operator):
    """Leading scan over an encoded table: every row index, once."""

    __slots__ = ("ref", "keep")

    def __init__(self, ref: SourceRef, desc: str, keep: bool) -> None:
        super().__init__(f"VSCAN {desc}")
        self.ref = ref
        self.keep = keep

    def run(self, ctx, batch):
        table = _encoded_table(ctx, self.ref)
        ctx.stats.rows_scanned += table.n
        if not self.keep:
            return (table.n, [])
        np = get_numpy()
        if np is not None:
            return (table.n, [np.arange(table.n, dtype=np.int64)])
        return (table.n, [list(range(table.n))])


class VectorConstLookup(Operator):
    """Constant/parameter key access: one dense-id bucket for the batch.

    The key value resolves to an id through the column's dictionary
    (unseen value → id -1 → empty bucket, no scan at all); the bucket is
    a slice of the build table's probe structure shared by every
    incoming carry row.
    """

    __slots__ = ("ref", "position", "spec", "out_plan")

    def __init__(self, ref, desc, position, spec, out_plan) -> None:
        super().__init__(f"VLOOKUP {desc}[{position}]")
        self.ref = ref
        self.position = position
        self.spec = spec
        #: Output slot plan: -1 emits this step's matches, ``j >= 0``
        #: expands the incoming slot ``j`` alongside them.
        self.out_plan = out_plan

    def run(self, ctx, batch):
        n, slots = batch
        table = _encoded_table(ctx, self.ref)
        ctx.stats.index_lookups += 1
        vid = table.columns[self.position].dictionary.lookup(
            _spec_value(self.spec, ctx)
        )
        np = get_numpy()
        if np is not None:
            order, starts, counts = table.csr(self.position)
            if 0 <= vid < len(counts):
                start = starts[vid]
                bucket = order[start : start + counts[vid]]
            else:
                bucket = order[:0]
            m = len(bucket)
            ctx.stats.rows_scanned += m * n
            outs = []
            for item in self.out_plan:
                if item < 0:
                    outs.append(bucket if n == 1 else np.tile(bucket, n))
                else:
                    outs.append(np.repeat(_np_slot(np, slots[item]), m))
            return (n * m, outs)
        groups = table.groups(self.position)
        bucket = groups[vid] if 0 <= vid < len(groups) else _EMPTY_BUCKET
        m = len(bucket)
        ctx.stats.rows_scanned += m * n
        outs = []
        for item in self.out_plan:
            if item < 0:
                outs.append(list(bucket) * n)
            else:
                outs.append(
                    list(
                        chain.from_iterable(
                            map(repeat, _list_slot(slots[item]), repeat(m))
                        )
                    )
                )
        return (n * m, outs)


class VectorHashJoin(Operator):
    """Equality join as an int-id probe into a dense group table.

    Probe-side ids translate into the build column's id space through a
    cached per-dictionary-pair translation array (None when both sides
    share one dictionary — a self-join column, where ids already agree);
    misses are -1 and fall out of the bounds check for free.  The numpy
    path expands matches with repeat/cumsum arithmetic over the build
    side's CSR layout — no per-row Python at all.
    """

    __slots__ = (
        "ref",
        "build_pos",
        "probe_ref",
        "probe_pos",
        "probe_slot",
        "out_plan",
    )

    def __init__(
        self, ref, desc, build_pos, probe_ref, probe_pos, probe_slot, out_plan
    ) -> None:
        super().__init__(f"VJOIN {desc}[{build_pos}]")
        self.ref = ref
        self.build_pos = build_pos
        self.probe_ref = probe_ref
        self.probe_pos = probe_pos
        self.probe_slot = probe_slot
        self.out_plan = out_plan

    def run(self, ctx, batch):
        n, slots = batch
        build = _encoded_table(ctx, self.ref)
        probe = _encoded_table(ctx, self.probe_ref)
        ctx.stats.index_lookups += n
        pcol = probe.columns[self.probe_pos]
        trans = _translation(
            ctx, pcol.dictionary, build.columns[self.build_pos].dictionary
        )
        np = get_numpy()
        if np is not None:
            order, starts, counts = build.csr(self.build_pos)
            ng = len(counts)
            slot = _np_slot(np, slots[self.probe_slot])
            if ng == 0 or len(slot) == 0:
                empty = np.empty(0, dtype=np.int64)
                return (0, [empty for _ in self.out_plan])
            keys = pcol.np_ids()[slot]
            if trans is not None:
                keys = np.frombuffer(trans, dtype=np.int64)[keys]
                valid = (keys >= 0) & (keys < ng)
            else:
                # Ids are non-negative; the shared dictionary may still
                # have grown past this build table's probe structure.
                valid = keys < ng
            safe = np.where(valid, keys, 0)
            c = np.where(valid, counts[safe], 0)
            total = int(c.sum())
            ctx.stats.rows_scanned += total
            if total == 0:
                empty = np.empty(0, dtype=np.int64)
                return (0, [empty for _ in self.out_plan])
            base = np.repeat(starts[safe], c)
            csum = np.cumsum(c)
            offs = np.arange(total, dtype=np.int64) - np.repeat(csum - c, c)
            self_idx = order[base + offs]
            outs = []
            for item in self.out_plan:
                if item < 0:
                    outs.append(self_idx)
                else:
                    outs.append(np.repeat(_np_slot(np, slots[item]), c))
            return (total, outs)
        groups = build.groups(self.build_pos)
        ng = len(groups)
        pids = pcol.ids
        slot = _list_slot(slots[self.probe_slot])
        counts_out: list = []
        cadd = counts_out.append
        self_out: list = []
        extend = self_out.extend
        if trans is None:
            for i in slot:
                g = pids[i]
                if g < ng:
                    bucket = groups[g]
                    cadd(len(bucket))
                    extend(bucket)
                else:
                    cadd(0)
        else:
            for i in slot:
                g = trans[pids[i]]
                if 0 <= g < ng:
                    bucket = groups[g]
                    cadd(len(bucket))
                    extend(bucket)
                else:
                    cadd(0)
        outs = []
        for item in self.out_plan:
            if item < 0:
                outs.append(self_out)
            else:
                outs.append(
                    list(
                        chain.from_iterable(
                            map(repeat, _list_slot(slots[item]), counts_out)
                        )
                    )
                )
        total = len(self_out)
        ctx.stats.rows_scanned += total
        return (total, outs)


class VectorFilter(Operator):
    """Single-column comparisons evaluated in id space.

    Equality and inequality compare ids directly — one dictionary lookup
    per batch, with id -1 meaning "value never encoded", which matches
    nothing (``=``) or everything (``<>``).  Ordered comparisons gather
    from a cached per-dictionary verdict table (:func:`_filter_lut`):
    one comparison per distinct value, not per row.
    """

    __slots__ = ("conds", "keep_plan")

    def __init__(self, conds, keep_plan, descs) -> None:
        super().__init__(f"VFILTER [{', '.join(descs)}]")
        #: (slot, ref, column position, op, value spec) per conjunct.
        self.conds = conds
        self.keep_plan = keep_plan

    def run(self, ctx, batch):
        n, slots = batch
        np = get_numpy()
        if np is not None:
            mask = None
            for slot_idx, ref, position, op, spec in self.conds:
                col = _encoded_table(ctx, ref).columns[position]
                ids = col.np_ids()[_np_slot(np, slots[slot_idx])]
                value = _spec_value(spec, ctx)
                if op == "=":
                    m = ids == col.dictionary.lookup(value)
                elif op == "<>":
                    m = ids != col.dictionary.lookup(value)
                else:
                    lut = _filter_lut(ctx, col.dictionary, op, value)
                    m = np.frombuffer(lut, dtype=np.bool_)[ids]
                mask = m if mask is None else mask & m
            outs = [_np_slot(np, slots[j])[mask] for j in self.keep_plan]
            return (int(mask.sum()), outs)
        mask = None
        for slot_idx, ref, position, op, spec in self.conds:
            col = _encoded_table(ctx, ref).columns[position]
            ids = col.ids
            slot = _list_slot(slots[slot_idx])
            value = _spec_value(spec, ctx)
            if op == "=":
                vid = col.dictionary.lookup(value)
                m = [ids[i] == vid for i in slot]
            elif op == "<>":
                vid = col.dictionary.lookup(value)
                m = [ids[i] != vid for i in slot]
            else:
                lut = _filter_lut(ctx, col.dictionary, op, value)
                m = [lut[ids[i]] for i in slot]
            mask = m if mask is None else [a and b for a, b in zip(mask, m)]
        outs = [list(compress(_list_slot(slots[j]), mask)) for j in self.keep_plan]
        total = len(outs[0]) if outs else sum(1 for v in mask if v)
        return (total, outs)


class VectorMaterialize(Operator):
    """Boundary to the columnar tail: index slots become row slots.

    Emits the PR 4 columnar carry — parallel lists of raw source rows —
    so residual predicates and whole-row targets reuse the existing
    grouped residual machinery and row-space projection unchanged.
    Reads the tables' raw ``rows``, so pipelines containing it never
    ship across a process boundary.
    """

    __slots__ = ("specs",)

    def __init__(self, specs) -> None:
        super().__init__("VMATERIALIZE")
        #: (index slot, ref) pairs in output slot order.
        self.specs = specs

    def run(self, ctx, batch):
        n, slots = batch
        outs = []
        for slot_idx, ref in self.specs:
            rows = _encoded_table(ctx, ref).rows
            outs.append([rows[i] for i in _list_slot(slots[slot_idx])])
        return (n, outs)


class VectorProject(Operator):
    """Projection with duplicate elimination in id space.

    Target tuples are gathered as id tuples, deduplicated as ints — the
    numpy path packs multi-column ids into a single int64 key when the
    dictionary widths fit, then takes ``np.unique`` — and only the
    distinct survivors are decoded back to values.  Dedup cost becomes
    proportional to the distinct count, not the join fan-out.
    """

    __slots__ = ("terms", "single")

    def __init__(self, desc: str, terms, single: bool) -> None:
        super().__init__(f"VPROJECT {desc}  (id dedup)")
        #: ("col", slot, ref, position) | ("row", slot, ref) |
        #: ("const", value spec), in target order.
        self.terms = terms
        self.single = single

    def run(self, ctx, batch):
        n, slots = batch
        if self.single:
            _kind, slot_idx, ref = self.terms[0]
            rows = _encoded_table(ctx, ref).rows
            out = list({rows[i] for i in _list_slot(slots[slot_idx])})
            ctx.stats.tuples_emitted += len(out)
            return out
        proto: list = [None] * len(self.terms)
        dyn: list = []  # (target position, slot, decode list, id keys)
        for pos, term in enumerate(self.terms):
            kind = term[0]
            if kind == "const":
                proto[pos] = _spec_value(term[1], ctx)
            elif kind == "col":
                _k, slot_idx, ref, cpos = term
                col = _encoded_table(ctx, ref).columns[cpos]
                dyn.append((pos, slot_idx, col.dictionary.values, col))
            else:  # "row": dedup by row index, decode through raw rows
                _k, slot_idx, ref = term
                dyn.append((pos, slot_idx, _encoded_table(ctx, ref).rows, None))
        if not dyn:
            out = [tuple(proto)] if n else []
            ctx.stats.tuples_emitted += len(out)
            return out
        np = get_numpy()
        if np is not None:
            arrs = []
            for _pos, slot_idx, _dec, col in dyn:
                slot = _np_slot(np, slots[slot_idx])
                arrs.append(slot if col is None else col.np_ids()[slot])
            id_cols = self._distinct_np(np, arrs, dyn)
            if id_cols is not None:
                out = []
                append = out.append
                decoders = [(pos, dec) for pos, _slot, dec, _col in dyn]
                for gs in zip(*(a.tolist() for a in id_cols)):
                    for (pos, dec), g in zip(decoders, gs):
                        proto[pos] = dec[g]
                    append(tuple(proto))
                ctx.stats.tuples_emitted += len(out)
                return out
            key_lists = [a.tolist() for a in arrs]
        else:
            key_lists = []
            for _pos, slot_idx, _dec, col in dyn:
                slot = _list_slot(slots[slot_idx])
                if col is None:
                    key_lists.append(slot)
                else:
                    ids = col.ids
                    key_lists.append([ids[i] for i in slot])
        seen: set = set()
        add = seen.add
        out = []
        append = out.append
        decoders = [(pos, dec) for pos, _slot, dec, _col in dyn]
        if len(key_lists) == 1:
            for g in key_lists[0]:
                if g not in seen:
                    add(g)
                    pos, dec = decoders[0]
                    proto[pos] = dec[g]
                    append(tuple(proto))
        else:
            for gs in zip(*key_lists):
                if gs not in seen:
                    add(gs)
                    for (pos, dec), g in zip(decoders, gs):
                        proto[pos] = dec[g]
                    append(tuple(proto))
        ctx.stats.tuples_emitted += len(out)
        return out

    @staticmethod
    def _distinct_np(np, arrs, dyn):
        """Distinct id rows as per-term arrays, or None when the packed
        key would overflow int64 (caller falls back to tuple hashing)."""
        if len(arrs) == 1:
            return [np.unique(arrs[0])]
        bits = []
        for (_pos, _slot, dec, _col), _a in zip(dyn, arrs):
            width = max(len(dec), 1)
            bits.append((width - 1).bit_length())
        if sum(bits) > 62:
            return None
        key = arrs[0].astype(np.int64, copy=True)
        for a, b in zip(arrs[1:], bits[1:]):
            key <<= b
            key |= a
        distinct = np.unique(key)
        cols = []
        rem = distinct
        for b in reversed(bits[1:]):
            cols.append(rem & ((1 << b) - 1))
            rem = rem >> b
        cols.append(rem)
        cols.reverse()
        return cols


class VectorTailProject(Operator):
    """Projection over materialized row slots (the fallback tail)."""

    __slots__ = ("terms", "single")

    def __init__(self, desc: str, terms, single: bool) -> None:
        super().__init__(f"VPROJECT {desc}")
        #: ("attr", slot, index) | ("row", slot) | ("const", value spec).
        self.terms = terms
        self.single = single

    def run(self, ctx, batch):
        n, slots = batch
        if self.single:
            out = list(slots[self.terms[0][1]])
            ctx.stats.tuples_emitted += len(out)
            return out
        proto: list = [None] * len(self.terms)
        attrs = []
        rowts = []
        for pos, term in enumerate(self.terms):
            if term[0] == "attr":
                attrs.append((pos, slots[term[1]], term[2]))
            elif term[0] == "row":
                rowts.append((pos, slots[term[1]]))
            else:
                proto[pos] = _spec_value(term[1], ctx)
        out = []
        append = out.append
        for k in range(n):
            for pos, col, idx in attrs:
                proto[pos] = col[k][idx]
            for pos, col in rowts:
                proto[pos] = col[k]
            append(tuple(proto))
        ctx.stats.tuples_emitted += len(out)
        return out


def _const_spec(term, params):
    """``("const", v)`` / ``("param", name)`` for an environment-free term."""
    if isinstance(term, ast.Const):
        return ("const", term.value)
    if isinstance(term, ast.ParamRef):
        return ("param", term.name)
    return None


def _vector_cond(conj, bound_rank, s, schemas, params):
    """Normalize a filter conjunct to ``(var, position, op, spec)``.

    Accepts single-column ``attr OP const/param`` comparisons with the
    attribute on either side (the operator is mirrored when the constant
    is on the left); anything else returns None and the branch keeps the
    columnar kernels.
    """
    if not isinstance(conj, ast.Cmp) or conj.op not in _SWAPPED_CMP:
        return None
    for attr_side, other, op in (
        (conj.left, conj.right, conj.op),
        (conj.right, conj.left, _SWAPPED_CMP[conj.op]),
    ):
        if isinstance(attr_side, ast.AttrRef):
            rank = bound_rank.get(attr_side.var)
            schema = schemas.get(attr_side.var)
            if rank is None or rank > s or schema is None:
                continue
            spec = _const_spec(other, params)
            if spec is None:
                continue
            return (attr_side.var, schema.index_of(attr_side.attr), op, spec)
    return None


def lower_branch_vector(
    steps,
    residual: ast.Pred,
    schemas,
    target_terms,
    target_desc: str,
    params: dict,
    est_out: float | None = None,
) -> BranchPipeline | None:
    """Lower priced loop steps into the vector (int-id) pipeline.

    Coverage rules — anything outside them returns None and the branch
    falls back to the columnar pipeline (then row-major, then tuple):

    * every step reads a stored relation, except that a fixpoint
      variable may supply the *leading scan* (its delta rows encode per
      execution, so shippable delta branches can ship); apply sources
      anywhere else — and computed ranges anywhere — keep the columnar
      kernels;
    * accesses are a leading scan, a single-column constant/parameter
      key, or a single-column equality join keyed on one attribute of
      an earlier binding;
    * step filters are single-column ``attr OP const/param`` comparisons;
    * residual predicates (step-level ones only on the last step) run on
      the columnar side of a :class:`VectorMaterialize` boundary;
    * targets are attributes, constants, parameters, or whole rows
      (whole rows and residuals need raw rows, so those pipelines are
      not shippable).
    """
    if not steps:
        return None
    bound_rank = {step.var: s for s, step in enumerate(steps)}

    refs = [SourceRef(s, step.source) for s, step in enumerate(steps)]
    accesses: list[tuple] = []
    filters: list[list] = []
    last = len(steps) - 1
    for s, step in enumerate(steps):
        source = step.source
        if source.kind != "relation" and not (
            source.kind == "apply"
            and s == 0
            and not step.key_positions
            and source.schema is not None
        ):
            return None
        kp = step.key_positions
        if not kp:
            if s != 0:
                return None  # mid-pipeline cross product: keep columnar
            # The leading scan is the one access whose whole-table read a
            # storage backend can narrow: hand its pushdown to the ref so
            # every operator of this step resolves the same partial table.
            refs[s].pushdown = step.pushdown
            accesses.append(("scan",))
        elif len(kp) == 1:
            term = step.key_terms[0]
            if isinstance(term, ast.AttrRef):
                prank = bound_rank.get(term.var)
                pschema = schemas.get(term.var)
                if prank is None or prank >= s or pschema is None:
                    return None
                accesses.append(
                    ("join", kp[0], term.var, pschema.index_of(term.attr))
                )
            else:
                spec = _const_spec(term, params)
                if spec is None:
                    return None
                accesses.append(("const", kp[0], spec))
        else:
            return None
        conds = []
        for conj, desc in zip(step.filter_conjs, step.filter_descs):
            norm = _vector_cond(conj, bound_rank, s, schemas, params)
            if norm is None:
                return None
            conds.append((*norm, desc))
        filters.append(conds)
        if step.residual_preds and s != last:
            return None

    # --- targets --------------------------------------------------------
    needs_rows = False
    if target_terms is None:
        proj: list = []
        proj_reads = {steps[0].var}
        needs_rows = True
    else:
        proj = []
        proj_reads = set()
        for term in target_terms:
            if isinstance(term, ast.AttrRef):
                schema = schemas.get(term.var)
                if term.var not in bound_rank or schema is None:
                    return None
                proj.append(("col", term.var, schema.index_of(term.attr)))
                proj_reads.add(term.var)
            elif isinstance(term, ast.VarRef):
                if term.var not in bound_rank:
                    return None
                proj.append(("row", term.var))
                proj_reads.add(term.var)
                needs_rows = True
            else:
                spec = _const_spec(term, params)
                if spec is None:
                    return None
                proj.append(("const", spec))

    # --- entries + liveness (same discipline as the columnar lowering) --
    entries: list[tuple] = []
    for s, step in enumerate(steps):
        acc = accesses[s]
        entries.append(("access", s, {acc[2]} if acc[0] == "join" else set()))
        if filters[s]:
            entries.append(("filter", s, {c[0] for c in filters[s]}))
    has_residual = not isinstance(residual, ast.TruePred)
    tail_preds = list(steps[last].residual_preds)
    tail_mode = has_residual or bool(tail_preds)
    if tail_mode:
        tail_reads = set(proj_reads)
        if tail_preds:
            tail_reads.add(steps[last].var)
        if has_residual:
            for conj in conjuncts(residual):
                tail_reads |= {
                    v for v in free_tuple_vars(conj) if v in bound_rank
                }
        entries.append(("tail", None, tail_reads))
    else:
        entries.append(("project", None, proj_reads))

    n_entries = len(entries)
    after: list[set] = [set()] * n_entries
    running: set = set()
    for k in range(n_entries - 1, -1, -1):
        after[k] = set(running)
        running |= entries[k][2]

    # --- generation -----------------------------------------------------
    step_ops: list[list[Operator]] = []
    tail_ops: list[Operator] = []
    layout: list[str] = []
    current: list[Operator] = []
    for k, (kind, payload, _reads) in enumerate(entries):
        if kind == "access":
            s = payload
            step = steps[s]
            acc = accesses[s]
            slot_of = {v: i for i, v in enumerate(layout)}
            layout_after = [st.var for st in steps[: s + 1] if st.var in after[k]]
            desc = step.source.describe()
            if acc[0] == "scan":
                op = VectorScan(refs[s], desc, keep=step.var in layout_after)
            else:
                out_plan = tuple(
                    -1 if v == step.var else slot_of[v] for v in layout_after
                )
                if acc[0] == "const":
                    op = VectorConstLookup(refs[s], desc, acc[1], acc[2], out_plan)
                else:
                    _j, pos, pvar, ppos = acc
                    op = VectorHashJoin(
                        refs[s],
                        desc,
                        pos,
                        refs[bound_rank[pvar]],
                        ppos,
                        slot_of[pvar],
                        out_plan,
                    )
            current = [op]
            step_ops.append(current)
            layout = layout_after
        elif kind == "filter":
            s = payload
            slot_of = {v: i for i, v in enumerate(layout)}
            layout_after = [st.var for st in steps[: s + 1] if st.var in after[k]]
            conds = tuple(
                (slot_of[var], refs[bound_rank[var]], pos, op_, spec)
                for var, pos, op_, spec, _desc in filters[s]
            )
            descs = [c[-1] for c in filters[s]]
            op = VectorFilter(
                conds, tuple(slot_of[v] for v in layout_after), descs
            )
            current.append(op)
            layout = layout_after
        elif kind == "tail":
            slot_of = {v: i for i, v in enumerate(layout)}
            current.append(
                VectorMaterialize(
                    tuple((slot_of[v], refs[bound_rank[v]]) for v in layout)
                )
            )
            row_slot = {v: i for i, v in enumerate(layout)}
            keep = list(range(len(layout)))
            gen = _ColGen(schemas, params)
            for pred in tail_preds:
                var = steps[last].var
                if var not in row_slot:
                    return None
                var_rows = [(var, schemas[var], row_slot[var])]
                probe = _residual_probe(pred, var_rows, gen)
                current.append(BatchedResidualFilter(pred, var_rows, keep, probe))
            if has_residual:
                for conj in conjuncts(residual):
                    read_vars = sorted(
                        (v for v in free_tuple_vars(conj) if v in bound_rank),
                        key=lambda v: bound_rank[v],
                    )
                    if any(v not in row_slot for v in read_vars):
                        return None
                    var_rows = [(v, schemas[v], row_slot[v]) for v in read_vars]
                    probe = _residual_probe(conj, var_rows, gen)
                    tail_ops.append(
                        BatchedResidualFilter(conj, var_rows, keep, probe)
                    )
            tproj = _vector_tail_project(
                target_terms, steps, row_slot, schemas, params, target_desc
            )
            if tproj is None:
                return None
            tail_ops.append(tproj)
        else:  # pure-vector projection
            slot_of = {v: i for i, v in enumerate(layout)}
            if target_terms is None:
                root = steps[0].var
                if root not in slot_of:
                    return None
                terms: tuple = (("row", slot_of[root], refs[bound_rank[root]]),)
                op = VectorProject(target_desc, terms, single=True)
            else:
                items: list = []
                for item in proj:
                    if item[0] == "col":
                        _c, var, idx = item
                        items.append(
                            ("col", slot_of[var], refs[bound_rank[var]], idx)
                        )
                    elif item[0] == "row":
                        _c, var = item
                        items.append(("row", slot_of[var], refs[bound_rank[var]]))
                    else:
                        items.append(item)
                op = VectorProject(target_desc, tuple(items), single=False)
            tail_ops.append(op)

    for s, ops in enumerate(step_ops):
        ops[-1].est_rows = steps[s].est_cumulative
    if tail_ops:
        tail_ops[-1].est_rows = est_out
    else:
        step_ops[-1][-1].est_rows = est_out
    return BranchPipeline(
        step_ops,
        tail_ops,
        columnar=True,
        fused=False,
        shippable=not tail_mode and not needs_rows,
    )


def _vector_tail_project(
    target_terms, steps, row_slot, schemas, params, target_desc
):
    """Build the row-space projection closing a materialized tail."""
    if target_terms is None:
        j = row_slot.get(steps[0].var)
        if j is None:
            return None
        return VectorTailProject(target_desc, (("row", j),), single=True)
    terms = []
    for term in target_terms:
        if isinstance(term, ast.AttrRef):
            j = row_slot.get(term.var)
            schema = schemas.get(term.var)
            if j is None or schema is None:
                return None
            terms.append(("attr", j, schema.index_of(term.attr)))
        elif isinstance(term, ast.VarRef):
            j = row_slot.get(term.var)
            if j is None:
                return None
            terms.append(("row", j))
        else:
            spec = _const_spec(term, params)
            if spec is None:
                return None
            terms.append(("const", spec))
    return VectorTailProject(target_desc, tuple(terms), single=False)
