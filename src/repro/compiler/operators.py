"""Batched physical operators: the set-at-a-time execution layer.

The planner (:mod:`repro.compiler.plans`) picks a join order and an
access path per binding; this module is what those choices *run as*.
Instead of interpreting the loop nest tuple variable by tuple variable —
a recursive call, an environment-dict mutation, and several counter
increments per binding — each :class:`~repro.compiler.plans.BranchPlan`
is lowered once into a linear pipeline of physical operators that pass
**batches of rows** between them:

* :class:`Scan` — the whole source as one batch (doubles as the
  cross-product step when a binding has no usable key);
* :class:`IndexLookup` — a single hash probe with a constant key,
  shared by the entire batch;
* :class:`HashJoin` — the step's source hashed *once* on the key
  positions (relations reuse their version-cached indexes, fixpoint
  deltas are built once per iteration), then probed per batch row;
* :class:`Filter` — compiled comparison conjuncts over the batch;
* :class:`ResidualFilter` — the leftover predicate (quantifiers,
  memberships) checked through the reference evaluator, batch-applied;
* :class:`Project` — positional target extraction;
* :class:`Dedup` — the per-query union with duplicate elimination;
* :class:`DeltaApply` — the semi-naive ``produced - known`` subtraction
  the fixpoint driver applies per iteration.

Two decisions make the batches fast in Python:

1. **Flat carry layouts** (projection pushdown through the pipeline).
   A batch row is not a tuple of whole bound rows but a flat tuple of
   exactly the values still *live* — the attributes later joins key on,
   later filters compare, and the target list projects, plus whole rows
   only where the residual predicate needs them.  Liveness is computed
   per pipeline boundary, so an attribute is dropped the step after its
   last use.

2. **Operator code generation.**  Each operator's inner loop is a
   single generated list comprehension with attribute access inlined as
   constant indexing (``e[2]``, ``r[1]``) — no per-value closure calls.
   Generated sources are tiny (one ``def`` per operator), built once at
   compile time, and fall back to the tuple-at-a-time interpreter when
   a term cannot be expressed (then the plan keeps ``pipeline=None``).

Every operator accumulates the **actual row count** it produced, which
``explain()`` reports next to the optimizer's estimates — the batched
counterpart of the per-step est-vs-actual report of the tuple
interpreter (which survives as ``executor="tuple"`` so benchmark E16
can measure what the batches buy).
"""

from __future__ import annotations

from ..calculus import ast
from ..calculus.analysis import free_tuple_vars
from ..calculus.rewrite import conjoin

#: Shared empty bucket for missed hash probes inside generated loops.
_EMPTY: tuple = ()

#: Arithmetic / comparison operators as Python source fragments.
_ARITH_SRC = {"+": "+", "-": "-", "*": "*", "DIV": "//", "MOD": "%"}
_CMP_SRC = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------


class Operator:
    """One node of a branch's physical pipeline.

    ``actual_rows`` accumulates the operator's output cardinality over
    every execution of the owning plan; ``explain()`` divides by the
    execution count so the reported actuals stay commensurable with the
    per-execution estimates.
    """

    __slots__ = ("label", "est_rows", "actual_rows", "executions")

    def __init__(self, label: str, est_rows: float | None = None) -> None:
        self.label = label
        self.est_rows = est_rows
        self.actual_rows = 0
        self.executions = 0

    def describe(self) -> str:
        return self.label

    def explain_line(self, per: int | None = None) -> str:
        """``LABEL [est=.. act=..]``; ``per`` overrides the divisor for
        the accumulated actuals (defaults to this operator's own runs)."""
        runs = per if per is not None else self.executions
        act = f"{self.actual_rows / runs:.1f}" if runs else "-"
        if self.est_rows is not None:
            return f"{self.describe()}  [est={self.est_rows:.1f} act={act}]"
        return f"{self.describe()}  [act={act}]"


class Scan(Operator):
    """Emit every source row once per incoming batch row.

    As the leading operator (batch ``[()]``) this is a plain scan;
    mid-pipeline it is the cross-product fallback for a binding with no
    usable equality key.  ``fn(rows, batch)`` is generated code emitting
    the step's carry layout.
    """

    __slots__ = ("source", "fn")

    def __init__(self, source, fn) -> None:
        super().__init__(f"SCAN {source.describe()}")
        self.source = source
        self.fn = fn

    def run(self, ctx, batch: list) -> list:
        if not batch:
            return batch
        rows, _ = self.source.rows_and_indexable(ctx)
        ctx.stats.rows_scanned += len(rows) * len(batch)
        return self.fn(rows, batch)


class IndexLookup(Operator):
    """One hash probe with an environment-independent (constant) key.

    The bucket is fetched once and shared by the whole batch — the
    batched form of a constant-restricted scan.
    """

    __slots__ = ("source", "positions", "key_fn", "fn")

    def __init__(self, source, positions: tuple[int, ...], key_fn, fn) -> None:
        super().__init__(f"INDEXLOOKUP {source.describe()}{list(positions)}")
        self.source = source
        self.positions = positions
        self.key_fn = key_fn
        self.fn = fn

    def run(self, ctx, batch: list) -> list:
        if not batch:
            return batch
        _rows, index_provider = self.source.rows_and_indexable(ctx)
        index = index_provider(self.positions)
        bucket = index.lookup(self.key_fn())
        ctx.stats.index_lookups += 1
        ctx.stats.rows_scanned += len(bucket) * len(batch)
        return self.fn(bucket, batch)


class HashJoin(Operator):
    """Hash the step's whole source on the key positions, probe per row.

    The build side is the *entire* input: stored relations answer with
    their version-cached hash indexes, fixpoint variables (deltas, new
    values) are hashed once per execution context — there is no
    per-tuple index maintenance anywhere in the loop.  ``fn`` is the
    generated probe loop; single-column keys probe a scalar-keyed view
    of the buckets to avoid a key-tuple allocation per batch row.
    """

    __slots__ = ("source", "positions", "scalar", "fn")

    def __init__(self, source, positions: tuple[int, ...], scalar: bool, fn) -> None:
        super().__init__(f"HASHJOIN {source.describe()} build{list(positions)}")
        self.source = source
        self.positions = positions
        self.scalar = scalar
        self.fn = fn

    def run(self, ctx, batch: list) -> list:
        if not batch:
            return batch
        _rows, index_provider = self.source.rows_and_indexable(ctx)
        index = index_provider(self.positions)
        buckets = index.scalar_buckets() if self.scalar else index.buckets
        stats = ctx.stats
        stats.index_lookups += len(batch)
        out = self.fn(buckets.get, batch, _EMPTY)
        stats.rows_scanned += len(out)
        return out


class Filter(Operator):
    """Generated comparison conjuncts applied over the whole batch."""

    __slots__ = ("fn",)

    def __init__(self, descs: tuple[str, ...], fn) -> None:
        super().__init__(f"FILTER [{', '.join(descs)}]")
        self.fn = fn

    def run(self, ctx, batch: list) -> list:
        if not batch:
            return batch
        return self.fn(batch)


class ResidualFilter(Operator):
    """The leftover predicate, checked through the reference evaluator.

    Quantifiers, memberships, and anything else the plan compiler could
    not turn into keys or generated filters run here, batch-applied
    with one rich environment per surviving row.  The carry layout
    keeps whole rows for exactly the variables this predicate reads.
    """

    __slots__ = ("pred", "var_rows")

    def __init__(self, pred: ast.Pred, var_rows) -> None:
        from ..calculus.pretty import render_pred

        super().__init__(f"RESIDUAL {render_pred(pred)}")
        #: (var, schema, carry position of the var's whole row) triples.
        self.var_rows = tuple(var_rows)

        self.pred = pred

    def run(self, ctx, batch: list) -> list:
        if not batch:
            return batch
        ctx.stats.residual_checks += len(batch)
        evaluator = ctx.evaluator
        pred = self.pred
        var_rows = self.var_rows
        out = []
        append = out.append
        for envt in batch:
            env = {var: (envt[pos], schema) for var, schema, pos in var_rows}
            if evaluator.eval_pred(pred, env):
                append(envt)
        return out


class Project(Operator):
    """Positional target extraction (or the identity branch's one row).

    When liveness has already reduced the carry to exactly the target
    tuple, the projection is the identity and the batch passes through
    untouched.
    """

    __slots__ = ("fn",)

    def __init__(self, desc: str, fn) -> None:
        super().__init__(f"PROJECT {desc}")
        self.fn = fn  # None => identity

    def run(self, ctx, batch: list) -> list:
        out = batch if self.fn is None else self.fn(batch)
        ctx.stats.tuples_emitted += len(out)
        return out


class Dedup(Operator):
    """Union with duplicate elimination: set semantics over the branches."""

    def __init__(self) -> None:
        super().__init__("DEDUP")

    def absorb(self, batch: list, out: set) -> None:
        before = len(out)
        out.update(batch)
        self.actual_rows += len(out) - before
        self.executions += 1


class DeltaApply(Operator):
    """``produced - known``: the semi-naive differential application.

    The fixpoint driver routes every per-iteration result through one of
    these per fixpoint variable, so the explain report shows how many
    genuinely fresh tuples each iteration wave contributed.
    """

    def __init__(self, label: str) -> None:
        super().__init__(f"DELTAAPPLY {label}")

    def apply(self, produced: set, known) -> set:
        fresh = produced - known
        self.actual_rows += len(fresh)
        self.executions += 1
        return fresh


# ---------------------------------------------------------------------------
# Lowering: priced loop steps -> generated operator pipeline
# ---------------------------------------------------------------------------
#
# Carry layouts are tuples of *items*: ("attr", var, idx) carries one
# attribute value, ("row", var) carries a whole bound row (needed only
# by residual predicates and VarRef targets).  An attr item is dropped
# from a layout whenever the same variable's whole row is live there.


def _term_items(term: ast.Term, schemas) -> list | None:
    """The carry items a term reads, or None when untranslatable."""
    if isinstance(term, (ast.Const, ast.ParamRef)):
        return []
    if isinstance(term, ast.AttrRef):
        schema = schemas.get(term.var)
        if schema is None:
            return None
        return [("attr", term.var, schema.index_of(term.attr))]
    if isinstance(term, ast.VarRef):
        if term.var not in schemas:
            return None
        return [("row", term.var)]
    if isinstance(term, ast.Arith):
        left = _term_items(term.left, schemas)
        right = _term_items(term.right, schemas)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(term, ast.TupleCons):
        out: list = []
        for item in term.items:
            sub = _term_items(item, schemas)
            if sub is None:
                return None
            out.extend(sub)
        return out
    return None


class _CodeGen:
    """Generates operator inner loops against flat carry layouts."""

    def __init__(self, schemas, params: dict) -> None:
        self.schemas = schemas
        self.ns: dict = {"_params": params}
        self._n = 0

    def const(self, value) -> str:
        """Bind a constant into the namespace (no repr round-trips)."""
        name = f"_c{self._n}"
        self._n += 1
        self.ns[name] = value
        return name

    def define(self, name: str, src: str):
        exec(src, self.ns)  # noqa: S102 - compile-time codegen, own AST only
        return self.ns[name]

    # -- expressions --------------------------------------------------------

    def term_expr(self, term: ast.Term, pos_of: dict, cur_var: str | None):
        """Python source for a term, or None when untranslatable."""
        if isinstance(term, ast.Const):
            return self.const(term.value)
        if isinstance(term, ast.ParamRef):
            return f"_params[{term.name!r}]"
        if isinstance(term, ast.AttrRef):
            schema = self.schemas.get(term.var)
            if schema is None:
                return None
            return self.attr_expr(term.var, schema.index_of(term.attr), pos_of, cur_var)
        if isinstance(term, ast.VarRef):
            return self.row_expr(term.var, pos_of, cur_var)
        if isinstance(term, ast.Arith):
            left = self.term_expr(term.left, pos_of, cur_var)
            right = self.term_expr(term.right, pos_of, cur_var)
            op = _ARITH_SRC.get(term.op)
            if left is None or right is None or op is None:
                return None
            return f"({left} {op} {right})"
        if isinstance(term, ast.TupleCons):
            items = [self.term_expr(i, pos_of, cur_var) for i in term.items]
            if any(i is None for i in items):
                return None
            return _tuple_src(items)
        return None

    def attr_expr(self, var: str, idx: int, pos_of: dict, cur_var: str | None):
        if var == cur_var:
            return f"r[{idx}]"
        pos = pos_of.get(("attr", var, idx))
        if pos is not None:
            return f"e[{pos}]"
        pos = pos_of.get(("row", var))
        if pos is not None:
            return f"e[{pos}][{idx}]"
        return None

    def row_expr(self, var: str, pos_of: dict, cur_var: str | None):
        if var == cur_var:
            return "r"
        pos = pos_of.get(("row", var))
        return f"e[{pos}]" if pos is not None else None

    def item_expr(self, item, pos_of: dict, cur_var: str | None):
        if item[0] == "row":
            return self.row_expr(item[1], pos_of, cur_var)
        return self.attr_expr(item[1], item[2], pos_of, cur_var)

    def cmp_expr(self, conj: ast.Cmp, pos_of: dict):
        left = self.term_expr(conj.left, pos_of, None)
        right = self.term_expr(conj.right, pos_of, None)
        op = _CMP_SRC.get(conj.op)
        if left is None or right is None or op is None:
            return None
        return f"({left} {op} {right})"


def _tuple_src(exprs: list[str]) -> str:
    if not exprs:
        return "()"
    return "(" + ", ".join(exprs) + ",)"


class BranchPipeline:
    """The lowered physical form of one branch plan.

    ``step_ops[i]`` holds the access operator (plus optional filter) of
    the ``i``-th binding step, so the executor can keep the per-step
    actual binding counts the tuple interpreter reports; ``tail_ops``
    are the residual filter (when present) and the projection.
    """

    __slots__ = ("step_ops", "tail_ops")

    def __init__(self, step_ops, tail_ops) -> None:
        self.step_ops = step_ops
        self.tail_ops = tail_ops

    def operators(self):
        for ops in self.step_ops:
            yield from ops
        yield from self.tail_ops

    def explain(self, indent: str = "") -> str:
        return "\n".join(
            f"{indent}{op.explain_line()}" for op in self.operators()
        )


def lower_branch(
    steps,
    residual: ast.Pred,
    schemas,
    target_terms,
    target_desc: str,
    params: dict,
    est_out: float | None = None,
) -> BranchPipeline | None:
    """Lower priced loop steps into the batched operator pipeline.

    Returns None when some term cannot be expressed as generated code
    (the plan then falls back to tuple-at-a-time execution).
    """
    if not steps:
        return None
    gen = _CodeGen(schemas, params)
    has_residual = not isinstance(residual, ast.TruePred)

    # The pipeline's entries, each with the carry items it reads.
    entries: list[tuple[str, object]] = []
    entry_items: list[list] = []
    access_entry: dict[int, int] = {}
    for s, step in enumerate(steps):
        items: list = []
        for term in step.key_terms:
            sub = _term_items(term, schemas)
            if sub is None:
                return None
            items.extend(sub)
        access_entry[s] = len(entries)
        entries.append(("access", step))
        entry_items.append(items)
        if step.filter_conjs:
            items = []
            for conj in step.filter_conjs:
                left = _term_items(conj.left, schemas)
                right = _term_items(conj.right, schemas)
                if left is None or right is None:
                    return None
                items.extend(left + right)
            entries.append(("filter", step))
            entry_items.append(items)
        if step.residual_preds:
            # Single-variable residuals (memberships, quantifiers) run
            # right after their step binds; they read the whole row.
            entries.append(("step_residual", step))
            entry_items.append([("row", step.var)])
    if has_residual:
        entries.append(("residual", residual))
        entry_items.append(
            [("row", v) for v in sorted(free_tuple_vars(residual)) if v in schemas]
        )
    if target_terms is None:
        project_items: list | None = [("row", steps[0].var)]
    else:
        project_items = []
        for term in target_terms:
            sub = _term_items(term, schemas)
            if sub is None:
                return None
            project_items.extend(sub)
    entries.append(("project", target_terms))
    entry_items.append(project_items)

    # Liveness: the carry layout after step s holds every item some
    # later entry reads, restricted to variables already bound; whole
    # rows subsume their attribute items.
    bound_rank = {step.var: s for s, step in enumerate(steps)}
    layouts: list[tuple] = []
    for s in range(len(steps)):
        k = access_entry[s]
        ordered: dict = {}
        for j in range(k + 1, len(entries)):
            for item in entry_items[j]:
                if bound_rank.get(item[1], len(steps)) <= s:
                    ordered.setdefault(item, None)
        rows_live = {item[1] for item in ordered if item[0] == "row"}
        layouts.append(
            tuple(
                item
                for item in ordered
                if item[0] == "row" or item[1] not in rows_live
            )
        )

    def positions(layout: tuple) -> dict:
        return {item: pos for pos, item in enumerate(layout)}

    # Generate one operator per entry.
    step_ops: list[list[Operator]] = []
    tail_ops: list[Operator] = []
    prev_pos: dict = {}
    current: list[Operator] = []
    for (kind, payload), items in zip(entries, entry_items):
        if kind == "access":
            step = payload
            s = bound_rank[step.var]
            layout = layouts[s]
            emits = [gen.item_expr(item, prev_pos, step.var) for item in layout]
            if any(e is None for e in emits):
                return None
            arity = len(step.schema.attribute_names)
            identity = emits == [f"r[{i}]" for i in range(arity)]
            emit_src = "r" if identity else _tuple_src(emits)
            if step.key_positions:
                key_exprs = [
                    gen.term_expr(term, prev_pos, None) for term in step.key_terms
                ]
                if any(k is None for k in key_exprs):
                    return None
                if all(not free_tuple_vars(term) for term in step.key_terms):
                    # Constant key: one lookup shared by the batch.
                    key_fn = gen.define(
                        "_key",
                        f"def _key():\n    return {_tuple_src(key_exprs)}\n",
                    )
                    fn = gen.define(
                        "_lookup",
                        "def _lookup(bucket, batch):\n"
                        f"    return [{emit_src} for e in batch for r in bucket]\n",
                    )
                    op: Operator = IndexLookup(
                        step.source, step.key_positions, key_fn, fn
                    )
                else:
                    scalar = len(key_exprs) == 1
                    key_src = key_exprs[0] if scalar else _tuple_src(key_exprs)
                    fn = gen.define(
                        "_join",
                        "def _join(get, batch, EMPTY):\n"
                        f"    return [{emit_src} for e in batch "
                        f"for r in get({key_src}, EMPTY)]\n",
                    )
                    op = HashJoin(step.source, step.key_positions, scalar, fn)
            else:
                body = f"    return [{emit_src} for e in batch for r in rows]\n"
                if identity:
                    # The common leading scan copies nothing.
                    body = (
                        "    if len(batch) == 1:\n"
                        "        return list(rows)\n" + body
                    )
                fn = gen.define("_scan", "def _scan(rows, batch):\n" + body)
                op = Scan(step.source, fn)
            current = [op]
            step_ops.append(current)
            prev_pos = positions(layout)
        elif kind == "filter":
            step = payload
            conds = [gen.cmp_expr(conj, prev_pos) for conj in step.filter_conjs]
            if any(c is None for c in conds):
                return None
            fn = gen.define(
                "_filter",
                "def _filter(batch):\n"
                f"    return [e for e in batch if {' and '.join(conds)}]\n",
            )
            current.append(Filter(step.filter_descs, fn))
        elif kind == "step_residual":
            step = payload
            pos = prev_pos.get(("row", step.var))
            if pos is None:
                return None
            current.append(
                ResidualFilter(
                    conjoin(step.residual_preds),
                    [(step.var, schemas[step.var], pos)],
                )
            )
        elif kind == "residual":
            pos_of = prev_pos
            var_rows = []
            for var in sorted(free_tuple_vars(payload)):
                if var not in schemas:
                    continue
                pos = pos_of.get(("row", var))
                if pos is None:
                    return None
                var_rows.append((var, schemas[var], pos))
            tail_ops.append(ResidualFilter(payload, var_rows))
        else:  # project
            if target_terms is None:
                expr = gen.row_expr(steps[0].var, prev_pos, None)
                if expr is None:
                    return None
                exprs = [expr]
                single = True
            else:
                exprs = [
                    gen.term_expr(term, prev_pos, None) for term in target_terms
                ]
                if any(e is None for e in exprs):
                    return None
                single = False
            identity = (
                not single
                and len(exprs) == len(prev_pos)
                and exprs == [f"e[{i}]" for i in range(len(exprs))]
            )
            if identity:
                fn = None
            else:
                out_src = exprs[0] if single else _tuple_src(exprs)
                fn = gen.define(
                    "_project",
                    "def _project(batch):\n"
                    f"    return [{out_src} for e in batch]\n",
                )
            tail_ops.append(Project(target_desc, fn))

    # Attach the optimizer's cumulative estimates for explain().
    for s, ops in enumerate(step_ops):
        ops[-1].est_rows = steps[s].est_cumulative
    tail_ops[-1].est_rows = est_out
    return BranchPipeline(step_ops, tail_ops)
