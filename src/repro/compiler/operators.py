"""Batched physical operators: the set-at-a-time execution layer.

The planner (:mod:`repro.compiler.plans`) picks a join order and an
access path per binding; this module is what those choices *run as*.
Instead of interpreting the loop nest tuple variable by tuple variable —
a recursive call, an environment-dict mutation, and several counter
increments per binding — each :class:`~repro.compiler.plans.BranchPlan`
is lowered once into a linear pipeline of physical operators that pass
**batches of rows** between them:

* :class:`Scan` — the whole source as one batch (doubles as the
  cross-product step when a binding has no usable key);
* :class:`IndexLookup` — a single hash probe with a constant key,
  shared by the entire batch;
* :class:`HashJoin` — the step's source hashed *once* on the key
  positions (relations reuse their version-cached indexes, fixpoint
  deltas are built once per iteration), then probed per batch row;
* :class:`Filter` — compiled comparison conjuncts over the batch;
* :class:`ResidualFilter` — the leftover predicate (quantifiers,
  memberships) checked through the reference evaluator, batch-applied;
* :class:`Project` — positional target extraction;
* :class:`Dedup` — the per-query union with duplicate elimination;
* :class:`DeltaApply` — the semi-naive ``produced - known`` subtraction
  the fixpoint driver applies per iteration.

Two batch layouts are generated from the same priced plans:

1. **Columnar (struct-of-arrays) carries** — the default
   (``executor="batch"``, :func:`lower_branch_columnar`).  A batch is
   ``(n, slots)``: one aligned list of *source rows* per still-live
   binding variable (liveness computed per pipeline boundary, exactly
   as before, but at variable granularity — values are never copied
   between operators).  Generated kernels compose C-level primitives:
   ``map``/``itemgetter`` column slices feed the hash probes,
   ``chain``/``repeat`` expand surviving slots, ``compress`` applies
   filter masks — and the projection **fuses into the producing
   HashJoin / Scan / Filter** whenever no residual predicate follows,
   so result tuples are materialized exactly once, in the final fused
   pass.  Residual quantifiers and memberships run **batched**: rows
   are grouped by the bindings the predicate reads and each distinct
   group is decided once per batch — via one grouped index probe for
   the recognized ``Some``/``InRel`` shapes, via a memoized reference-
   evaluator call otherwise.  The cost model gates the physical
   details: selective single-variable filters (priced selectivity ≤
   :data:`FILTER_PUSH_SEL`) push into the join's probe as
   per-distinct-key build-side filtering.

2. **Row-major flat carries** — PR 3's layout, kept as
   ``executor="rowbatch"`` so benchmark E17 can measure what the
   columnar conversion buys.  A batch row is a flat tuple of exactly
   the live values; each operator is one generated list comprehension
   with attribute access inlined as constant indexing.

Both lower lazily and degrade gracefully: an untranslatable term falls
from columnar to row-major to the tuple-at-a-time interpreter
(``executor="tuple"``, benchmark E16's baseline).

Every operator accumulates the **actual row count** it produced, which
``explain()`` reports next to the optimizer's estimates — the batched
counterpart of the per-step est-vs-actual report of the tuple
interpreter.
"""

from __future__ import annotations

from itertools import chain, compress, repeat
from operator import itemgetter

from ..calculus import ast
from ..calculus.analysis import free_tuple_vars
from ..calculus.rewrite import conjoin, conjuncts

#: Shared empty bucket for missed hash probes inside generated loops.
_EMPTY: tuple = ()

#: G2 fusion gate: a single-variable comparison filter is pushed into the
#: probe side of its HashJoin (per-distinct-key build-side filtering)
#: when the cost model estimates it keeps at most this fraction of rows.
#: Unselective filters stay as standalone compress-based Filter passes,
#: where one C-level sweep beats re-filtering every probed bucket.
FILTER_PUSH_SEL = 0.25


def _batch_len(batch) -> int:
    """Row count of a batch in either carry layout.

    Row-major batches are plain lists of carry tuples; columnar batches
    are ``(n, slots)`` pairs (slots are parallel per-step row lists); a
    finished pipeline's output is the plain result list.
    """
    return batch[0] if type(batch) is tuple else len(batch)

#: Arithmetic / comparison operators as Python source fragments.
_ARITH_SRC = {"+": "+", "-": "-", "*": "*", "DIV": "//", "MOD": "%"}
_CMP_SRC = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------


class Operator:
    """One node of a branch's physical pipeline.

    ``actual_rows`` accumulates the operator's output cardinality over
    every execution of the owning plan; ``explain()`` divides by the
    execution count so the reported actuals stay commensurable with the
    per-execution estimates.
    """

    __slots__ = ("label", "est_rows", "actual_rows", "executions")

    def __init__(self, label: str, est_rows: float | None = None) -> None:
        self.label = label
        self.est_rows = est_rows
        self.actual_rows = 0
        self.executions = 0

    def describe(self) -> str:
        return self.label

    def explain_line(self, per: int | None = None) -> str:
        """``LABEL [est=.. act=..]``; ``per`` overrides the divisor for
        the accumulated actuals (defaults to this operator's own runs)."""
        runs = per if per is not None else self.executions
        act = f"{self.actual_rows / runs:.1f}" if runs else "-"
        if self.est_rows is not None:
            return f"{self.describe()}  [est={self.est_rows:.1f} act={act}]"
        return f"{self.describe()}  [act={act}]"


class Scan(Operator):
    """Emit every source row once per incoming batch row.

    As the leading operator (batch ``[()]``) this is a plain scan;
    mid-pipeline it is the cross-product fallback for a binding with no
    usable equality key.  ``fn(rows, batch)`` is generated code emitting
    the step's carry layout.
    """

    __slots__ = ("source", "fn")

    def __init__(self, source, fn) -> None:
        super().__init__(f"SCAN {source.describe()}")
        self.source = source
        self.fn = fn

    def run(self, ctx, batch):
        if not batch:
            return batch
        rows, _ = self.source.rows_and_indexable(ctx)
        ctx.stats.rows_scanned += len(rows) * _batch_len(batch)
        return self.fn(rows, batch)


class IndexLookup(Operator):
    """One hash probe with an environment-independent (constant) key.

    The bucket is fetched once and shared by the whole batch — the
    batched form of a constant-restricted scan.
    """

    __slots__ = ("source", "positions", "key_fn", "fn")

    def __init__(self, source, positions: tuple[int, ...], key_fn, fn) -> None:
        super().__init__(f"INDEXLOOKUP {source.describe()}{list(positions)}")
        self.source = source
        self.positions = positions
        self.key_fn = key_fn
        self.fn = fn

    def run(self, ctx, batch):
        if not batch:
            return batch
        _rows, index_provider = self.source.rows_and_indexable(ctx)
        index = index_provider(self.positions)
        bucket = index.lookup(self.key_fn())
        ctx.stats.index_lookups += 1
        ctx.stats.rows_scanned += len(bucket) * _batch_len(batch)
        return self.fn(bucket, batch)


class HashJoin(Operator):
    """Hash the step's whole source on the key positions, probe per row.

    The build side is the *entire* input: stored relations answer with
    their version-cached hash indexes, fixpoint variables (deltas, new
    values) are hashed once per execution context — there is no
    per-tuple index maintenance anywhere in the loop.  ``fn`` is the
    generated probe loop; single-column keys probe a scalar-keyed view
    of the buckets to avoid a key-tuple allocation per batch row.

    When the cost model gates a selective single-variable filter into
    the join (``push_fn``), the probe goes through a per-execution
    memo of *filtered* buckets: each distinct key's bucket is filtered
    once per execution, so repeated probes (and every downstream slot
    expansion) see only surviving rows.
    """

    __slots__ = ("source", "positions", "scalar", "fn", "push_fn")

    def __init__(
        self,
        source,
        positions: tuple[int, ...],
        scalar: bool,
        fn,
        push_fn=None,
        push_desc: str = "",
    ) -> None:
        label = f"HASHJOIN {source.describe()} build{list(positions)}"
        if push_fn is not None:
            label += f" pushfilter[{push_desc}]"
        super().__init__(label)
        self.source = source
        self.positions = positions
        self.scalar = scalar
        self.fn = fn
        self.push_fn = push_fn

    def run(self, ctx, batch):
        if not batch:
            return batch
        _rows, index_provider = self.source.rows_and_indexable(ctx)
        index = index_provider(self.positions)
        buckets = index.scalar_buckets() if self.scalar else index.buckets
        get = buckets.get
        if self.push_fn is not None:
            get = self._pushed_get(ctx, buckets)
        stats = ctx.stats
        stats.index_lookups += _batch_len(batch)
        out = self.fn(get, batch, _EMPTY)
        stats.rows_scanned += _batch_len(out)
        return out

    def _pushed_get(self, ctx, buckets):
        """A ``get`` over filtered buckets, memoized per distinct key.

        The memo lives on the execution context keyed by this operator
        *object* (not its id — a recycled id after garbage collection
        must never inherit another operator's filter), holding a strong
        reference to the bucket dict it was filtered from and checked by
        identity — so an index rebuilt after a relation mutation (or a
        fresh per-iteration delta index) starts a fresh memo, while
        repeated executions against the same index pay the filter once
        per key.
        """
        entry = ctx.pushed_buckets.get(self)
        if entry is None or entry[0] is not buckets:
            memo: dict = {}
            ctx.pushed_buckets[self] = (buckets, memo)
        else:
            memo = entry[1]
        keep = self.push_fn
        raw_get = buckets.get
        memo_get = memo.get

        def get(key, default):
            bucket = memo_get(key)
            if bucket is None:
                raw = raw_get(key)
                bucket = memo[key] = (
                    [r for r in raw if keep(r)] if raw else default
                )
            return bucket

        return get


class Filter(Operator):
    """Generated comparison conjuncts applied over the whole batch."""

    __slots__ = ("fn",)

    def __init__(self, descs: tuple[str, ...], fn) -> None:
        super().__init__(f"FILTER [{', '.join(descs)}]")
        self.fn = fn

    def run(self, ctx, batch: list) -> list:
        if not batch:
            return batch
        return self.fn(batch)


class ResidualFilter(Operator):
    """The leftover predicate, checked through the reference evaluator.

    Quantifiers, memberships, and anything else the plan compiler could
    not turn into keys or generated filters run here, batch-applied
    with one rich environment per surviving row.  The carry layout
    keeps whole rows for exactly the variables this predicate reads.
    """

    __slots__ = ("pred", "var_rows")

    def __init__(self, pred: ast.Pred, var_rows) -> None:
        from ..calculus.pretty import render_pred

        super().__init__(f"RESIDUAL {render_pred(pred)}")
        #: (var, schema, carry position of the var's whole row) triples.
        self.var_rows = tuple(var_rows)

        self.pred = pred

    def run(self, ctx, batch: list) -> list:
        if not batch:
            return batch
        ctx.stats.residual_checks += len(batch)
        ctx.stats.residual_evals += len(batch)  # one evaluator call per row
        evaluator = ctx.evaluator
        pred = self.pred
        var_rows = self.var_rows
        out = []
        append = out.append
        for envt in batch:
            env = {var: (envt[pos], schema) for var, schema, pos in var_rows}
            if evaluator.eval_pred(pred, env):
                append(envt)
        return out


class ResidualProbe:
    """A recognized residual shape that reduces to one grouped index probe.

    ``Some``-quantifiers whose body is a conjunction of equalities linking
    quantified attributes to outer terms become a semi-join: resolve the
    (environment-free) range once per execution, hash it once on the
    correlated positions, and the per-group verdict is a bucket-existence
    check.  ``All``-quantifiers whose body is a *disjunction of
    inequalities* (``<>`` comparisons, or negated equalities) reduce by
    complement — ``ALL s (s.a <> t1 OR ...)`` is ``NOT SOME s (s.a = t1
    AND ...)`` — to the same probe with the verdict flipped (an
    anti-join).  ``InRel`` memberships become one set-membership per
    group.  ``Not`` of any of these flips the verdict.  Attribute
    positions are looked up from the resolved range's schema at
    probe-build time, so the plan does not need the range schema at
    compile time.
    """

    __slots__ = ("kind", "rexpr", "attrs", "key_fn", "negate")

    def __init__(self, kind: str, rexpr, attrs: tuple[str, ...], key_fn, negate: bool):
        self.kind = kind  # "some" | "inrel"
        self.rexpr = rexpr
        self.attrs = attrs
        self.key_fn = key_fn
        self.negate = negate

    def checker(self, ctx):
        """Build the per-group verdict closure for one execution."""
        value = ctx.evaluator.resolve_range(self.rexpr, {})
        rows = value.rows
        key_fn = self.key_fn
        negate = self.negate
        if self.kind == "inrel":
            members = ctx.member_set(self.rexpr, rows)

            def check(group):
                element = key_fn(group)
                if type(element) is not tuple:
                    element = (element,)
                return (element in members) is not negate

            return check
        rexpr = self.rexpr
        if (
            isinstance(rexpr, ast.RelRef)
            and rexpr.name not in ctx.params
            and rexpr.name in ctx.db
        ):
            # Stored relation: the version-aware index cache, so an
            # in-place mutation between executions on a reused context
            # can never serve a stale probe table.
            index = ctx.db.relation(rexpr.name).index_on(self.attrs)
        else:
            positions = tuple(value.schema.index_of(a) for a in self.attrs)
            index = ctx.residual_index(rexpr, rows, positions)
        ctx.stats.index_lookups += 1
        buckets = index.probe_table(scalar=len(self.attrs) == 1)

        def check(group):
            return (key_fn(group) in buckets) is not negate

        return check


def _static_residual_range(rexpr) -> bool:
    """True when a residual's range needs no enclosing environment.

    Fixpoint variables are fine (the execution context binds them per
    iteration); correlated ranges referencing outer tuple variables are
    not — those keep the grouped-evaluator fallback, which passes the
    group's environment through.
    """
    return not any(
        isinstance(node, (ast.AttrRef, ast.VarRef)) for node in ast.walk(rexpr)
    )


class BatchedResidualFilter(ResidualFilter):
    """Columnar residual check: grouped, memoized, and probe-accelerated.

    Instead of one reference-evaluator call per batch row, rows are
    grouped by the bound values the predicate actually reads (the rows
    of ``var_rows``); each distinct group is checked **once per batch**
    (the memo) through either a :class:`ResidualProbe` (quantifier and
    membership shapes — one grouped index probe, no evaluator at all) or
    the evaluator fallback (fully general: correlated ranges, universal
    quantifiers, disjunctions).  Joins multiply rows but not distinct
    bindings, so the memo turns per-row predicate cost into per-distinct
    cost; surviving rows are compressed out of every live slot at C
    level.
    """

    __slots__ = ("keep_slots", "probe")

    def __init__(self, pred: ast.Pred, var_rows, keep_slots, probe=None) -> None:
        super().__init__(pred, var_rows)
        self.keep_slots = tuple(keep_slots)
        self.probe = probe
        if probe is not None:
            self.label += "  (grouped index probe)"
        else:
            self.label += "  (memoized per batch)"

    def _checker(self, ctx):
        if self.probe is not None:
            return self.probe.checker(ctx)
        evaluator = ctx.evaluator
        pred = self.pred
        stats = ctx.stats
        var_rows = self.var_rows
        if len(var_rows) == 1:
            var, schema, _pos = var_rows[0]

            def check(row):
                stats.residual_evals += 1
                return evaluator.eval_pred(pred, {var: (row, schema)})

            return check
        metas = tuple((var, schema) for var, schema, _pos in var_rows)

        def check(rows):
            stats.residual_evals += 1
            env = {var: (row, schema) for (var, schema), row in zip(metas, rows)}
            return evaluator.eval_pred(pred, env)

        return check

    def run(self, ctx, batch):
        n, slots = batch
        keep = self.keep_slots
        if n == 0:
            return (0, [slots[i] for i in keep])
        ctx.stats.residual_checks += n
        var_rows = self.var_rows
        if len(var_rows) == 1:
            groups = slots[var_rows[0][2]]
        elif var_rows:
            groups = zip(*[slots[pos] for _var, _schema, pos in var_rows])
        else:
            # The predicate reads no bound variable: one verdict decides
            # the whole batch.
            groups = repeat((), n)
        check = self._checker(ctx)
        memo: dict = {}
        memo_get = memo.get
        mask = []
        add = mask.append
        for group in groups:
            verdict = memo_get(group)
            if verdict is None:
                verdict = memo[group] = check(group)
            add(verdict)
        kept = [list(compress(slots[i], mask)) for i in keep]
        survivors = len(kept[0]) if kept else sum(mask)
        return (survivors, kept)


def _disjuncts(pred: ast.Pred) -> tuple:
    """The top-level disjuncts of ``pred`` (flattening nested ORs)."""
    if isinstance(pred, ast.Or):
        out: list = []
        for part in pred.parts:
            out.extend(_disjuncts(part))
        return tuple(out)
    return (pred,)


def _probe_key(equalities, qvar: str, names: dict, gen):
    """Compile the correlated probe key of a quantifier body.

    ``equalities`` are ``(left, right)`` pairs that must each equate one
    attribute of the quantified variable with a term over outer
    bindings; returns ``(attrs, key_fn)`` or None when any pair does not
    fit the shape.
    """
    attrs: list[str] = []
    exprs: list[str] = []
    for left, right in equalities:
        matched = False
        for qside, outer in ((left, right), (right, left)):
            if (
                isinstance(qside, ast.AttrRef)
                and qside.var == qvar
                and qvar not in free_tuple_vars(outer)
            ):
                expr = gen.col_term(outer, names, None)
                if expr is not None:
                    attrs.append(qside.attr)
                    exprs.append(expr)
                    matched = True
                    break
        if not matched:
            return None
    if not attrs:
        return None
    key_src = exprs[0] if len(exprs) == 1 else _tuple_src(exprs)
    key_fn = gen.define("_rkey", f"def _rkey(k):\n    return {key_src}\n")
    return tuple(attrs), key_fn


def _residual_probe(pred: ast.Pred, var_rows, gen) -> ResidualProbe | None:
    """Recognize a probe-reducible residual, compiling its key extractor.

    ``var_rows`` fixes the group-key layout: a single ``(var, schema,
    slot)`` triple means the group is that variable's row; several mean a
    tuple of rows in that order.  Returns None when the predicate needs
    the evaluator fallback.
    """
    negate = False
    if isinstance(pred, ast.Not):
        negate = True
        pred = pred.pred
    if len(var_rows) == 1:
        names = {var_rows[0][0]: "k"}
    else:
        names = {vr[0]: f"k[{i}]" for i, vr in enumerate(var_rows)}
    if isinstance(pred, ast.InRel):
        if not _static_residual_range(pred.range):
            return None
        expr = gen.col_term(pred.element, names, None)
        if expr is None:
            return None
        key_fn = gen.define("_rkey", f"def _rkey(k):\n    return {expr}\n")
        return ResidualProbe("inrel", pred.range, (), key_fn, negate)
    if isinstance(pred, ast.Some) and len(pred.vars) == 1:
        qvar = pred.vars[0]
        if qvar in names or not _static_residual_range(pred.range):
            return None
        equalities = []
        for conj in conjuncts(pred.pred):
            if not (isinstance(conj, ast.Cmp) and conj.op == "="):
                return None
            equalities.append((conj.left, conj.right))
        key = _probe_key(equalities, qvar, names, gen)
        if key is None:
            return None
        attrs, key_fn = key
        return ResidualProbe("some", pred.range, attrs, key_fn, negate)
    if isinstance(pred, ast.All) and len(pred.vars) == 1:
        # Complement probe (ROADMAP follow-up): a universal whose body is
        # a disjunction of inequalities is the negation of an existential
        # over the complementary equalities —
        #   ALL s IN R (s.a <> t1 OR s.b <> t2)
        #     ==  NOT SOME s IN R (s.a = t1 AND s.b = t2)
        # — one grouped anti-join probe per batch, no evaluator calls.
        qvar = pred.vars[0]
        if qvar in names or not _static_residual_range(pred.range):
            return None
        equalities = []
        for disj in _disjuncts(pred.pred):
            if isinstance(disj, ast.Not) and (
                isinstance(disj.pred, ast.Cmp) and disj.pred.op == "="
            ):
                equalities.append((disj.pred.left, disj.pred.right))
            elif isinstance(disj, ast.Cmp) and disj.op == "<>":
                equalities.append((disj.left, disj.right))
            else:
                return None
        key = _probe_key(equalities, qvar, names, gen)
        if key is None:
            return None
        attrs, key_fn = key
        return ResidualProbe("some", pred.range, attrs, key_fn, not negate)
    return None


class Project(Operator):
    """Positional target extraction (or the identity branch's one row).

    When liveness has already reduced the carry to exactly the target
    tuple, the projection is the identity and the batch passes through
    untouched.
    """

    __slots__ = ("fn",)

    def __init__(self, desc: str, fn) -> None:
        super().__init__(f"PROJECT {desc}")
        self.fn = fn  # None => identity

    def run(self, ctx, batch: list) -> list:
        out = batch if self.fn is None else self.fn(batch)
        ctx.stats.tuples_emitted += len(out)
        return out


class Dedup(Operator):
    """Union with duplicate elimination: set semantics over the branches."""

    def __init__(self) -> None:
        super().__init__("DEDUP")

    def absorb(self, batch: list, out: set) -> None:
        before = len(out)
        out.update(batch)
        self.actual_rows += len(out) - before
        self.executions += 1


class DeltaApply(Operator):
    """``produced - known``: the semi-naive differential application.

    The fixpoint driver routes every per-iteration result through one of
    these per fixpoint variable, so the explain report shows how many
    genuinely fresh tuples each iteration wave contributed.
    """

    def __init__(self, label: str) -> None:
        super().__init__(f"DELTAAPPLY {label}")

    def apply(self, produced: set, known) -> set:
        fresh = produced - known
        self.actual_rows += len(fresh)
        self.executions += 1
        return fresh


# ---------------------------------------------------------------------------
# Lowering: priced loop steps -> generated operator pipeline
# ---------------------------------------------------------------------------
#
# Carry layouts are tuples of *items*: ("attr", var, idx) carries one
# attribute value, ("row", var) carries a whole bound row (needed only
# by residual predicates and VarRef targets).  An attr item is dropped
# from a layout whenever the same variable's whole row is live there.


def _term_items(term: ast.Term, schemas) -> list | None:
    """The carry items a term reads, or None when untranslatable."""
    if isinstance(term, (ast.Const, ast.ParamRef)):
        return []
    if isinstance(term, ast.AttrRef):
        schema = schemas.get(term.var)
        if schema is None:
            return None
        return [("attr", term.var, schema.index_of(term.attr))]
    if isinstance(term, ast.VarRef):
        if term.var not in schemas:
            return None
        return [("row", term.var)]
    if isinstance(term, ast.Arith):
        left = _term_items(term.left, schemas)
        right = _term_items(term.right, schemas)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(term, ast.TupleCons):
        out: list = []
        for item in term.items:
            sub = _term_items(item, schemas)
            if sub is None:
                return None
            out.extend(sub)
        return out
    return None


class _CodeGen:
    """Generates operator inner loops against flat carry layouts."""

    def __init__(self, schemas, params: dict) -> None:
        self.schemas = schemas
        self.ns: dict = {"_params": params}
        self._n = 0

    def const(self, value) -> str:
        """Bind a constant into the namespace (no repr round-trips)."""
        name = f"_c{self._n}"
        self._n += 1
        self.ns[name] = value
        return name

    def define(self, name: str, src: str):
        exec(src, self.ns)  # noqa: S102 - compile-time codegen, own AST only
        return self.ns[name]

    # -- expressions --------------------------------------------------------

    def term_expr(self, term: ast.Term, pos_of: dict, cur_var: str | None):
        """Python source for a term, or None when untranslatable."""
        if isinstance(term, ast.Const):
            return self.const(term.value)
        if isinstance(term, ast.ParamRef):
            return f"_params[{term.name!r}]"
        if isinstance(term, ast.AttrRef):
            schema = self.schemas.get(term.var)
            if schema is None:
                return None
            return self.attr_expr(term.var, schema.index_of(term.attr), pos_of, cur_var)
        if isinstance(term, ast.VarRef):
            return self.row_expr(term.var, pos_of, cur_var)
        if isinstance(term, ast.Arith):
            left = self.term_expr(term.left, pos_of, cur_var)
            right = self.term_expr(term.right, pos_of, cur_var)
            op = _ARITH_SRC.get(term.op)
            if left is None or right is None or op is None:
                return None
            return f"({left} {op} {right})"
        if isinstance(term, ast.TupleCons):
            items = [self.term_expr(i, pos_of, cur_var) for i in term.items]
            if any(i is None for i in items):
                return None
            return _tuple_src(items)
        return None

    def attr_expr(self, var: str, idx: int, pos_of: dict, cur_var: str | None):
        if var == cur_var:
            return f"r[{idx}]"
        pos = pos_of.get(("attr", var, idx))
        if pos is not None:
            return f"e[{pos}]"
        pos = pos_of.get(("row", var))
        if pos is not None:
            return f"e[{pos}][{idx}]"
        return None

    def row_expr(self, var: str, pos_of: dict, cur_var: str | None):
        if var == cur_var:
            return "r"
        pos = pos_of.get(("row", var))
        return f"e[{pos}]" if pos is not None else None

    def item_expr(self, item, pos_of: dict, cur_var: str | None):
        if item[0] == "row":
            return self.row_expr(item[1], pos_of, cur_var)
        return self.attr_expr(item[1], item[2], pos_of, cur_var)

    def cmp_expr(self, conj: ast.Cmp, pos_of: dict):
        left = self.term_expr(conj.left, pos_of, None)
        right = self.term_expr(conj.right, pos_of, None)
        op = _CMP_SRC.get(conj.op)
        if left is None or right is None or op is None:
            return None
        return f"({left} {op} {right})"


def _tuple_src(exprs: list[str]) -> str:
    if not exprs:
        return "()"
    return "(" + ", ".join(exprs) + ",)"


class BranchPipeline:
    """The lowered physical form of one branch plan.

    ``step_ops[i]`` holds the access operator (plus optional filter) of
    the ``i``-th binding step, so the executor can keep the per-step
    actual binding counts the tuple interpreter reports; ``tail_ops``
    are the residual filter (when present) and the projection.

    ``columnar`` marks pipelines whose carries are struct-of-arrays
    slots; ``fused`` marks pipelines whose final access/filter operator
    emits the projected result directly (no standalone Project pass).
    """

    __slots__ = ("step_ops", "tail_ops", "columnar", "fused")

    def __init__(self, step_ops, tail_ops, columnar=False, fused=False) -> None:
        self.step_ops = step_ops
        self.tail_ops = tail_ops
        self.columnar = columnar
        self.fused = fused

    def operators(self):
        for ops in self.step_ops:
            yield from ops
        yield from self.tail_ops

    def explain(self, indent: str = "") -> str:
        return "\n".join(
            f"{indent}{op.explain_line()}" for op in self.operators()
        )


def lower_branch(
    steps,
    residual: ast.Pred,
    schemas,
    target_terms,
    target_desc: str,
    params: dict,
    est_out: float | None = None,
) -> BranchPipeline | None:
    """Lower priced loop steps into the batched operator pipeline.

    Returns None when some term cannot be expressed as generated code
    (the plan then falls back to tuple-at-a-time execution).
    """
    if not steps:
        return None
    gen = _CodeGen(schemas, params)
    has_residual = not isinstance(residual, ast.TruePred)

    # The pipeline's entries, each with the carry items it reads.
    entries: list[tuple[str, object]] = []
    entry_items: list[list] = []
    access_entry: dict[int, int] = {}
    for s, step in enumerate(steps):
        items: list = []
        for term in step.key_terms:
            sub = _term_items(term, schemas)
            if sub is None:
                return None
            items.extend(sub)
        access_entry[s] = len(entries)
        entries.append(("access", step))
        entry_items.append(items)
        if step.filter_conjs:
            items = []
            for conj in step.filter_conjs:
                left = _term_items(conj.left, schemas)
                right = _term_items(conj.right, schemas)
                if left is None or right is None:
                    return None
                items.extend(left + right)
            entries.append(("filter", step))
            entry_items.append(items)
        if step.residual_preds:
            # Single-variable residuals (memberships, quantifiers) run
            # right after their step binds; they read the whole row.
            entries.append(("step_residual", step))
            entry_items.append([("row", step.var)])
    if has_residual:
        entries.append(("residual", residual))
        entry_items.append(
            [("row", v) for v in sorted(free_tuple_vars(residual)) if v in schemas]
        )
    if target_terms is None:
        project_items: list | None = [("row", steps[0].var)]
    else:
        project_items = []
        for term in target_terms:
            sub = _term_items(term, schemas)
            if sub is None:
                return None
            project_items.extend(sub)
    entries.append(("project", target_terms))
    entry_items.append(project_items)

    # Liveness: the carry layout after step s holds every item some
    # later entry reads, restricted to variables already bound; whole
    # rows subsume their attribute items.
    bound_rank = {step.var: s for s, step in enumerate(steps)}
    layouts: list[tuple] = []
    for s in range(len(steps)):
        k = access_entry[s]
        ordered: dict = {}
        for j in range(k + 1, len(entries)):
            for item in entry_items[j]:
                if bound_rank.get(item[1], len(steps)) <= s:
                    ordered.setdefault(item, None)
        rows_live = {item[1] for item in ordered if item[0] == "row"}
        layouts.append(
            tuple(
                item
                for item in ordered
                if item[0] == "row" or item[1] not in rows_live
            )
        )

    def positions(layout: tuple) -> dict:
        return {item: pos for pos, item in enumerate(layout)}

    # Generate one operator per entry.
    step_ops: list[list[Operator]] = []
    tail_ops: list[Operator] = []
    prev_pos: dict = {}
    current: list[Operator] = []
    for (kind, payload), _items in zip(entries, entry_items):
        if kind == "access":
            step = payload
            s = bound_rank[step.var]
            layout = layouts[s]
            emits = [gen.item_expr(item, prev_pos, step.var) for item in layout]
            if any(e is None for e in emits):
                return None
            arity = len(step.schema.attribute_names)
            identity = emits == [f"r[{i}]" for i in range(arity)]
            emit_src = "r" if identity else _tuple_src(emits)
            if step.key_positions:
                key_exprs = [
                    gen.term_expr(term, prev_pos, None) for term in step.key_terms
                ]
                if any(k is None for k in key_exprs):
                    return None
                if all(not free_tuple_vars(term) for term in step.key_terms):
                    # Constant key: one lookup shared by the batch.
                    key_fn = gen.define(
                        "_key",
                        f"def _key():\n    return {_tuple_src(key_exprs)}\n",
                    )
                    fn = gen.define(
                        "_lookup",
                        "def _lookup(bucket, batch):\n"
                        f"    return [{emit_src} for e in batch for r in bucket]\n",
                    )
                    op: Operator = IndexLookup(
                        step.source, step.key_positions, key_fn, fn
                    )
                else:
                    scalar = len(key_exprs) == 1
                    key_src = key_exprs[0] if scalar else _tuple_src(key_exprs)
                    fn = gen.define(
                        "_join",
                        "def _join(get, batch, EMPTY):\n"
                        f"    return [{emit_src} for e in batch "
                        f"for r in get({key_src}, EMPTY)]\n",
                    )
                    op = HashJoin(step.source, step.key_positions, scalar, fn)
            else:
                body = f"    return [{emit_src} for e in batch for r in rows]\n"
                if identity:
                    # The common leading scan copies nothing.
                    body = (
                        "    if len(batch) == 1:\n"
                        "        return list(rows)\n" + body
                    )
                fn = gen.define("_scan", "def _scan(rows, batch):\n" + body)
                op = Scan(step.source, fn)
            current = [op]
            step_ops.append(current)
            prev_pos = positions(layout)
        elif kind == "filter":
            step = payload
            conds = [gen.cmp_expr(conj, prev_pos) for conj in step.filter_conjs]
            if any(c is None for c in conds):
                return None
            fn = gen.define(
                "_filter",
                "def _filter(batch):\n"
                f"    return [e for e in batch if {' and '.join(conds)}]\n",
            )
            current.append(Filter(step.filter_descs, fn))
        elif kind == "step_residual":
            step = payload
            pos = prev_pos.get(("row", step.var))
            if pos is None:
                return None
            current.append(
                ResidualFilter(
                    conjoin(step.residual_preds),
                    [(step.var, schemas[step.var], pos)],
                )
            )
        elif kind == "residual":
            pos_of = prev_pos
            var_rows = []
            for var in sorted(free_tuple_vars(payload)):
                if var not in schemas:
                    continue
                pos = pos_of.get(("row", var))
                if pos is None:
                    return None
                var_rows.append((var, schemas[var], pos))
            tail_ops.append(ResidualFilter(payload, var_rows))
        else:  # project
            if target_terms is None:
                expr = gen.row_expr(steps[0].var, prev_pos, None)
                if expr is None:
                    return None
                exprs = [expr]
                single = True
            else:
                exprs = [
                    gen.term_expr(term, prev_pos, None) for term in target_terms
                ]
                if any(e is None for e in exprs):
                    return None
                single = False
            identity = (
                not single
                and len(exprs) == len(prev_pos)
                and exprs == [f"e[{i}]" for i in range(len(exprs))]
            )
            if identity:
                fn = None
            else:
                out_src = exprs[0] if single else _tuple_src(exprs)
                fn = gen.define(
                    "_project",
                    "def _project(batch):\n"
                    f"    return [{out_src} for e in batch]\n",
                )
            tail_ops.append(Project(target_desc, fn))

    # Attach the optimizer's cumulative estimates for explain().
    for s, ops in enumerate(step_ops):
        ops[-1].est_rows = steps[s].est_cumulative
    tail_ops[-1].est_rows = est_out
    return BranchPipeline(step_ops, tail_ops)


# ---------------------------------------------------------------------------
# Columnar lowering: struct-of-arrays carries with operator fusion
# ---------------------------------------------------------------------------
#
# A columnar batch is ``(n, slots)``: ``n`` is the row count and each
# slot is a list of *source rows* (one slot per still-live binding
# variable, in binding order), all aligned — slot_i[t] is the row the
# t-th carry binds for that variable.  This is a late-materialized
# struct-of-arrays layout: no attribute value is copied between
# operators; a join expands each live slot with C-level kernels
# (map/itemgetter column slices, chain/repeat expansion, compress
# filtering) and only the final projection materializes result tuples —
# fused into the producing access or filter operator whenever no
# residual predicate follows it.

#: C-level kernels shared by every generated columnar function.
_COLUMNAR_NS = {
    "_fi": chain.from_iterable,
    "_rep": repeat,
    "_cmp": compress,
    "_ig": itemgetter,
    "_len": len,
    "_list": list,
    "_map": map,
    "_zip": zip,
    "_range": range,
    "_sum": sum,
}


class _ColGen(_CodeGen):
    """Generates columnar kernels over slot-of-rows carries.

    ``touched`` accumulates the bound variables whose slot expressions
    the generated source actually referenced — the fused-emit pass
    resets it, generates its target/condition sources, and zips exactly
    the touched slots (structural liveness, no source re-parsing).
    """

    def __init__(self, schemas, params: dict) -> None:
        super().__init__(schemas, params)
        self.ns.update(_COLUMNAR_NS)
        self.touched: set[str] = set()

    def col_term(self, term: ast.Term, names: dict, cur_var: str | None):
        """Python source for a term; bound rows are reachable through
        ``names[var]`` (loop variables or group-key subscripts), the
        current step's source row through ``r``."""
        if isinstance(term, ast.Const):
            return self.const(term.value)
        if isinstance(term, ast.ParamRef):
            return f"_params[{term.name!r}]"
        if isinstance(term, ast.AttrRef):
            schema = self.schemas.get(term.var)
            if schema is None:
                return None
            idx = schema.index_of(term.attr)
            if term.var == cur_var:
                return f"r[{idx}]"
            base = names.get(term.var)
            if base is None:
                return None
            self.touched.add(term.var)
            return f"{base}[{idx}]"
        if isinstance(term, ast.VarRef):
            if term.var == cur_var:
                return "r"
            base = names.get(term.var)
            if base is not None:
                self.touched.add(term.var)
            return base
        if isinstance(term, ast.Arith):
            left = self.col_term(term.left, names, cur_var)
            right = self.col_term(term.right, names, cur_var)
            op = _ARITH_SRC.get(term.op)
            if left is None or right is None or op is None:
                return None
            return f"({left} {op} {right})"
        if isinstance(term, ast.TupleCons):
            items = [self.col_term(i, names, cur_var) for i in term.items]
            if any(i is None for i in items):
                return None
            return _tuple_src(items)
        return None

    def col_cmp(self, conj: ast.Cmp, names: dict, cur_var: str | None = None):
        left = self.col_term(conj.left, names, cur_var)
        right = self.col_term(conj.right, names, cur_var)
        op = _CMP_SRC.get(conj.op)
        if left is None or right is None or op is None:
            return None
        return f"({left} {op} {right})"


def lower_branch_columnar(
    steps,
    residual: ast.Pred,
    schemas,
    target_terms,
    target_desc: str,
    params: dict,
    est_out: float | None = None,
) -> BranchPipeline | None:
    """Lower priced loop steps into the columnar operator pipeline.

    Returns None when some term cannot be expressed as generated code
    (the executor then falls back to the row-major pipeline, and from
    there to tuple-at-a-time interpretation).
    """
    if not steps:
        return None
    gen = _ColGen(schemas, params)
    bound_rank = {step.var: s for s, step in enumerate(steps)}
    bound_vars = set(bound_rank)

    def term_reads(term: ast.Term):
        vars_ = free_tuple_vars(term)
        if not vars_ <= bound_vars:
            return None
        return vars_

    # --- G2: cost-gated pushdown of selective single-variable filters ---
    # A HashJoin step whose priced filter selectivity clears the
    # FILTER_PUSH_SEL gate filters its buckets per distinct key at probe
    # time; the conjuncts leave the Filter operator entirely.
    step_conjs: dict[int, list] = {}
    step_push: dict[int, tuple] = {}
    for s, step in enumerate(steps):
        kept: list = []
        push_srcs: list[str] = []
        push_descs: list[str] = []
        sel = getattr(step, "est_filter_sel", None)
        hash_join = bool(step.key_positions) and any(
            free_tuple_vars(t) for t in step.key_terms
        )
        allow = hash_join and sel is not None and sel <= FILTER_PUSH_SEL
        for conj, desc in zip(step.filter_conjs, step.filter_descs):
            src = None
            if allow and (
                free_tuple_vars(conj.left) | free_tuple_vars(conj.right)
            ) <= {step.var}:
                src = gen.col_cmp(conj, {}, step.var)
            if src is None:
                kept.append((conj, desc))
            else:
                push_srcs.append(src)
                push_descs.append(desc)
        step_conjs[s] = kept
        if push_srcs:
            fn = gen.define(
                "_push", "def _push(r):\n    return " + " and ".join(push_srcs) + "\n"
            )
            step_push[s] = (fn, ", ".join(push_descs))

    # --- the pipeline's entries, each with the variables it reads ---
    entries: list[tuple] = []
    for s, step in enumerate(steps):
        reads: set = set()
        for term in step.key_terms:
            vars_ = term_reads(term)
            if vars_ is None:
                return None
            reads |= vars_
        entries.append(("access", s, reads))
        if step_conjs[s]:
            freads: set = set()
            for conj, _desc in step_conjs[s]:
                left = term_reads(conj.left)
                right = term_reads(conj.right)
                if left is None or right is None:
                    return None
                freads |= left | right
            entries.append(("filter", s, freads))
        for pred in step.residual_preds:
            entries.append(("step_residual", (s, pred), {step.var}))
    has_residual = not isinstance(residual, ast.TruePred)
    if has_residual:
        for conj in conjuncts(residual):
            entries.append(
                ("residual", conj, {v for v in free_tuple_vars(conj) if v in bound_vars})
            )
    if target_terms is None:
        proj_reads = {steps[0].var}
    else:
        proj_reads = set()
        for term in target_terms:
            vars_ = term_reads(term)
            if vars_ is None:
                return None
            proj_reads |= vars_
    entries.append(("project", target_terms, proj_reads))

    # --- fusion: Project (and the final step's filter) folds into the
    # producing access operator exactly when no residual follows it ---
    last = len(steps) - 1
    fuse = not has_residual and not steps[last].residual_preds
    fused_conds: list = []
    if fuse:
        fused_conds = step_conjs[last]
        entries = [
            e
            for e in entries
            if e[0] != "project" and not (e[0] == "filter" and e[1] == last)
        ]
        kind, payload, reads = entries[-1]
        extra = set(proj_reads)
        for conj, _desc in fused_conds:
            left = term_reads(conj.left)
            right = term_reads(conj.right)
            if left is None or right is None:
                return None
            extra |= left | right
        entries[-1] = (kind, payload, reads | extra)

    # --- liveness: after entry k a slot survives iff some later entry
    # reads its variable ---
    n_entries = len(entries)
    after: list[set] = [set()] * n_entries
    running: set = set()
    for k in range(n_entries - 1, -1, -1):
        after[k] = set(running)
        running |= entries[k][2]

    # --- generation -----------------------------------------------------

    def unpack_src(indices) -> str:
        return "".join(f"    s{i} = slots[{i}]\n" for i in sorted(set(indices)))

    def key_columns(step, slot_of, names):
        """Source expressions for the probe-key columns, or None."""
        cols = []
        for term in step.key_terms:
            vars_ = free_tuple_vars(term)
            if (
                isinstance(term, ast.AttrRef)
                and term.var in slot_of
                and schemas.get(term.var) is not None
            ):
                idx = schemas[term.var].index_of(term.attr)
                cols.append(f"_map(_ig({idx}), s{slot_of[term.var]})")
            elif not vars_:
                expr = gen.col_term(term, {}, None)
                if expr is None:
                    return None
                cols.append(f"_rep({expr})")
            else:
                read = sorted(vars_, key=lambda v: slot_of.get(v, -1))
                if any(v not in slot_of for v in read):
                    return None
                expr = gen.col_term(term, names, None)
                if expr is None:
                    return None
                if len(read) == 1:
                    j = slot_of[read[0]]
                    cols.append(f"[{expr} for e{j} in s{j}]")
                else:
                    unp = ", ".join(f"e{slot_of[v]}" for v in read)
                    srcs = ", ".join(f"s{slot_of[v]}" for v in read)
                    cols.append(f"[{expr} for {unp} in _zip({srcs})]")
        return cols

    def emit_comprehension(step, slot_of, names, conds_pairs, arg_rows: str, n_known):
        """The fused final pass: access + filter + project in one loop."""
        var = step.var
        gen.touched = set()
        if target_terms is None:
            root = steps[0].var
            if root == var:
                target = "r"
            else:
                target = names.get(root)
                if target is None:
                    return None
                gen.touched.add(root)
        else:
            exprs = [gen.col_term(t, names, var) for t in target_terms]
            if any(e is None for e in exprs):
                return None
            target = _tuple_src(exprs)
        cond_srcs = []
        for conj, _desc in conds_pairs:
            src = gen.col_cmp(conj, names, var)
            if src is None:
                return None
            cond_srcs.append(src)
        cond = f" if {' and '.join(cond_srcs)}" if cond_srcs else ""
        read = [v for v in sorted(slot_of, key=slot_of.get) if v in gen.touched]
        if arg_rows == "_b":  # hash-join buckets aligned with the batch
            if read:
                unp = ", ".join(f"e{slot_of[v]}" for v in read)
                srcs = ", ".join(f"s{slot_of[v]}" for v in read)
                return (
                    f"    return [{target} for {unp}, _bk in _zip({srcs}, _b) "
                    f"for r in _bk{cond}]\n"
                )
            return f"    return [{target} for _bk in _b for r in _bk{cond}]\n"
        # scan / constant-key bucket: one shared row source
        if read:
            unp = ", ".join(f"e{slot_of[v]}" for v in read)
            srcs = ", ".join(f"s{slot_of[v]}" for v in read)
            if len(read) == 1:
                j = slot_of[read[0]]
                return (
                    f"    return [{target} for e{j} in s{j} "
                    f"for r in {arg_rows}{cond}]\n"
                )
            return (
                f"    return [{target} for {unp} in _zip({srcs}) "
                f"for r in {arg_rows}{cond}]\n"
            )
        if n_known:  # leading step: exactly one incoming carry
            if target == "r" and not cond and arg_rows == "rows":
                return "    return rows if type(rows) is list else _list(rows)\n"
            return f"    return [{target} for r in {arg_rows}{cond}]\n"
        return (
            f"    return [{target} for _t in _range(n) for r in {arg_rows}{cond}]\n"
        )

    def gen_access(k, s, layout_before, layout_after, final):
        step = steps[s]
        var = step.var
        slot_of = {v: i for i, v in enumerate(layout_before)}
        names = {v: f"e{slot_of[v]}" for v in slot_of}
        const_key = bool(step.key_positions) and all(
            not free_tuple_vars(t) for t in step.key_terms
        )
        is_join = bool(step.key_positions) and not const_key
        parents = [v for v in layout_after if v != var]
        conds_pairs = fused_conds if final else []

        if is_join:
            cols = key_columns(step, slot_of, names)
            if cols is None or not layout_before:
                return None
            key = cols[0] if len(cols) == 1 else f"_zip({', '.join(cols)})"
            scalar = len(cols) == 1
            body = "    n, slots = batch\n"
            body += unpack_src(slot_of.values())
            if final:
                body += f"    _b = _map(get, {key}, _rep(EMPTY))\n"
                tail = emit_comprehension(step, slot_of, names, conds_pairs, "_b", False)
                if tail is None:
                    return None
                body += tail
            else:
                body += f"    _b = _list(_map(get, {key}, _rep(EMPTY)))\n"
                body += "    _c = _list(_map(_len, _b))\n"
                outs = []
                for v in layout_after:
                    if v == var:
                        body += "    on = _list(_fi(_b))\n"
                        outs.append("on")
                    else:
                        j = slot_of[v]
                        body += f"    o{j} = _list(_fi(_map(_rep, s{j}, _c)))\n"
                        outs.append(f"o{j}")
                if outs:
                    body += f"    return (_len({outs[0]}), [{', '.join(outs)}])\n"
                else:
                    body += "    return (_sum(_c), [])\n"
            fn = gen.define("_join", "def _join(get, batch, EMPTY):\n" + body)
            push_fn, push_desc = step_push.get(s, (None, ""))
            return HashJoin(
                step.source, step.key_positions, scalar, fn, push_fn, push_desc
            )

        # Scan or constant-key IndexLookup: one shared row source.
        arg = "bucket" if const_key else "rows"
        body = "    n, slots = batch\n"
        body += unpack_src(slot_of.values())
        leading = s == 0
        if final:
            tail = emit_comprehension(step, slot_of, names, conds_pairs, arg, leading)
            if tail is None:
                return None
            body += tail
        elif leading:
            if var in layout_after:
                body += (
                    f"    {arg} = {arg} if type({arg}) is list else _list({arg})\n"
                    f"    return (_len({arg}), [{arg}])\n"
                )
            else:
                body += f"    return (_len({arg}), [])\n"
        else:
            body += f"    {arg} = {arg} if type({arg}) is list else _list({arg})\n"
            body += f"    _nr = _len({arg})\n"
            outs = []
            for v in layout_after:
                if v == var:
                    body += f"    on = {arg} * n\n"
                    outs.append("on")
                else:
                    j = slot_of[v]
                    body += f"    o{j} = _list(_fi(_map(_rep, s{j}, _rep(_nr))))\n"
                    outs.append(f"o{j}")
            body += f"    return (n * _nr, [{', '.join(outs)}])\n"
        if const_key:
            key_exprs = [gen.term_expr(t, {}, None) for t in step.key_terms]
            if any(e is None for e in key_exprs):
                return None
            key_fn = gen.define(
                "_key", f"def _key():\n    return {_tuple_src(key_exprs)}\n"
            )
            fn = gen.define("_lookup", "def _lookup(bucket, batch):\n" + body)
            return IndexLookup(step.source, step.key_positions, key_fn, fn)
        fn = gen.define("_scan", "def _scan(rows, batch):\n" + body)
        return Scan(step.source, fn)

    def gen_filter(s, layout_before, layout_after):
        slot_of = {v: i for i, v in enumerate(layout_before)}
        names = {v: f"e{slot_of[v]}" for v in slot_of}
        conds = []
        read: set = set()
        descs = []
        for conj, desc in step_conjs[s]:
            src = gen.col_cmp(conj, names, None)
            if src is None:
                return None
            conds.append(src)
            read |= free_tuple_vars(conj.left) | free_tuple_vars(conj.right)
            descs.append(desc)
        keep = [slot_of[v] for v in layout_after]
        cond = " and ".join(conds)
        body = "    n, slots = batch\n"
        read_idx = sorted(slot_of[v] for v in read if v in slot_of)
        body += unpack_src(set(read_idx) | {slot_of[v] for v in layout_after})
        if not read_idx:
            kept = ", ".join(f"s{j}" for j in keep)
            body += (
                f"    if {cond}:\n        return (n, [{kept}])\n"
                f"    return (0, [{', '.join('[]' for _ in keep) }])\n"
            )
        else:
            if len(read_idx) == 1:
                j = read_idx[0]
                body += f"    _m = [{cond} for e{j} in s{j}]\n"
            else:
                unp = ", ".join(f"e{j}" for j in read_idx)
                srcs = ", ".join(f"s{j}" for j in read_idx)
                body += f"    _m = [{cond} for {unp} in _zip({srcs})]\n"
            outs = []
            for j in keep:
                body += f"    o{j} = _list(_cmp(s{j}, _m))\n"
                outs.append(f"o{j}")
            if outs:
                body += f"    return (_len({outs[0]}), [{', '.join(outs)}])\n"
            else:
                body += "    return (_sum(_m), [])\n"
        fn = gen.define("_filter", "def _filter(batch):\n" + body)
        return Filter(tuple(descs), fn)

    def gen_project(layout_before):
        slot_of = {v: i for i, v in enumerate(layout_before)}
        names = {v: f"e{slot_of[v]}" for v in slot_of}
        body = "    n, slots = batch\n"
        if target_terms is None:
            root = steps[0].var
            if root not in slot_of:
                return None
            body += f"    return slots[{slot_of[root]}]\n"
        else:
            exprs = [gen.col_term(t, names, None) for t in target_terms]
            if any(e is None for e in exprs):
                return None
            target = _tuple_src(exprs)
            read = sorted(
                {v for t in target_terms for v in free_tuple_vars(t)},
                key=lambda v: slot_of.get(v, -1),
            )
            if not read:
                body += f"    return [{target}] * n\n"
            elif len(read) == 1:
                j = slot_of[read[0]]
                body += f"    return [{target} for e{j} in slots[{j}]]\n"
            else:
                unp = ", ".join(f"e{slot_of[v]}" for v in read)
                srcs = ", ".join(f"slots[{slot_of[v]}]" for v in read)
                body += f"    return [{target} for {unp} in _zip({srcs})]\n"
        fn = gen.define("_project", "def _project(batch):\n" + body)
        return Project(target_desc, fn)

    step_ops: list[list[Operator]] = []
    tail_ops: list[Operator] = []
    layout: list[str] = []
    current: list[Operator] = []
    for k, (kind, payload, reads) in enumerate(entries):
        if kind == "access":
            s = payload
            final_here = fuse and s == last
            if final_here:
                layout_after: list[str] = []
            else:
                layout_after = [
                    st.var for st in steps[: s + 1] if st.var in after[k]
                ]
            op = gen_access(k, s, layout, layout_after, final_here)
            if op is None:
                return None
            current = [op]
            step_ops.append(current)
            layout = layout_after
        elif kind == "filter":
            s = payload
            layout_after = [st.var for st in steps[: s + 1] if st.var in after[k]]
            op = gen_filter(s, layout, layout_after)
            if op is None:
                return None
            current.append(op)
            layout = layout_after
        elif kind in ("step_residual", "residual"):
            if kind == "step_residual":
                s, pred = payload
                read_vars = [steps[s].var]
                bound_here = steps[: s + 1]
            else:
                pred = payload
                read_vars = sorted(reads, key=lambda v: bound_rank[v])
                bound_here = steps
            layout_after = [st.var for st in bound_here if st.var in after[k]]
            slot_of = {v: i for i, v in enumerate(layout)}
            if any(v not in slot_of for v in read_vars):
                return None
            var_rows = [(v, schemas[v], slot_of[v]) for v in read_vars]
            keep_slots = [slot_of[v] for v in layout_after]
            probe = _residual_probe(pred, var_rows, gen)
            op = BatchedResidualFilter(pred, var_rows, keep_slots, probe)
            if kind == "step_residual":
                current.append(op)
            else:
                tail_ops.append(op)
            layout = layout_after
        else:  # standalone project (a residual precedes it)
            op = gen_project(layout)
            if op is None:
                return None
            tail_ops.append(op)

    for s, ops in enumerate(step_ops):
        ops[-1].est_rows = steps[s].est_cumulative
    if tail_ops:
        tail_ops[-1].est_rows = est_out
    else:
        step_ops[-1][-1].est_rows = est_out
    return BranchPipeline(step_ops, tail_ops, columnar=True, fused=fuse)
