"""Quant graphs and augmented quant graphs (section 4, Fig. 3).

A *quant graph* [JaKo 83] represents a relational calculus query: one
node per tuple variable (with its range), a directed arc per join term
and per enforced quantifier nesting.  The *augmented* quant graph adds

* a special head node per constructor, with attribute arcs from the head
  to the range variables supplying each result attribute, and
* application arcs from every variable node whose range is a constructor
  application to the corresponding constructor's head node — after which
  the structure is "the equivalent of a clause interconnectivity graph
  [Sick 76]" and cycles identify recursion.

``render_ascii`` reproduces the flavour of the paper's Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..calculus import ast
from ..calculus.analysis import free_tuple_vars
from ..calculus.pretty import render_range, render_term
from ..calculus.rewrite import conjuncts
from ..relational import Database
from .graphutils import Digraph, connected_components, recursive_nodes


@dataclass(frozen=True)
class QGNode:
    """A node: a tuple variable with its range, or a constructor head."""

    id: str
    kind: str  # "var" | "head"
    label: str


@dataclass(frozen=True)
class QGArc:
    """A directed arc with its role and display label."""

    src: str
    dst: str
    kind: str  # "join" | "quant" | "attr" | "apply"
    label: str = ""


@dataclass
class QuantGraph:
    """The (augmented) quant graph of one or more constructor bodies."""

    nodes: dict[str, QGNode] = field(default_factory=dict)
    arcs: list[QGArc] = field(default_factory=list)

    # -- construction ---------------------------------------------------------

    def add_node(self, node: QGNode) -> None:
        self.nodes.setdefault(node.id, node)

    def add_arc(self, arc: QGArc) -> None:
        self.arcs.append(arc)

    # -- analysis --------------------------------------------------------------

    def digraph(self, kinds: tuple[str, ...] = ("join", "quant", "attr", "apply")) -> Digraph:
        graph = Digraph()
        for node_id in self.nodes:
            graph.add_node(node_id)
        for arc in self.arcs:
            if arc.kind in kinds:
                graph.add_edge(arc.src, arc.dst)
        return graph

    def components(self) -> list[set[str]]:
        """Undirected connected components — the compiler's preliminary
        partitioning of constructor definitions (type-checking level)."""
        return connected_components(
            self.nodes, [(a.src, a.dst) for a in self.arcs]
        )

    def recursive_heads(self) -> set[str]:
        """Head nodes on a cycle — these require fixpoint evaluation."""
        cyclic = recursive_nodes(self.digraph())
        return {n for n in cyclic if self.nodes[n].kind == "head"}

    def is_recursive(self) -> bool:
        return bool(recursive_nodes(self.digraph()))

    # -- display -----------------------------------------------------------------

    def render_ascii(self) -> str:
        lines: list[str] = []
        for node in self.nodes.values():
            marker = "HEAD" if node.kind == "head" else "var "
            lines.append(f"[{marker}] {node.id}: {node.label}")
        for arc in self.arcs:
            label = f"  ({arc.label})" if arc.label else ""
            lines.append(f"    {arc.src} --{arc.kind}--> {arc.dst}{label}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def _range_label(rng: ast.RangeExpr) -> str:
    return render_range(rng)


def _join_arcs(graph: QuantGraph, scope_prefix: str, pred: ast.Pred) -> None:
    """Join and quantifier arcs for a predicate, variables prefixed."""
    for conj in conjuncts(pred):
        if isinstance(conj, ast.Cmp):
            vars_in = sorted(free_tuple_vars(conj))
            if len(vars_in) == 2:
                a, b = vars_in
                graph.add_arc(
                    QGArc(
                        f"{scope_prefix}{a}",
                        f"{scope_prefix}{b}",
                        "join",
                        render_term(conj.left) + conj.op + render_term(conj.right),
                    )
                )
        elif isinstance(conj, (ast.Some, ast.All)):
            outer_vars = sorted(free_tuple_vars(conj))
            for qvar in conj.vars:
                node_id = f"{scope_prefix}{qvar}"
                graph.add_node(QGNode(node_id, "var", _binding_label(qvar, conj.range)))
                _apply_arc_if_constructed(graph, node_id, conj.range)
                for outer in outer_vars:
                    graph.add_arc(
                        QGArc(f"{scope_prefix}{outer}", node_id, "quant",
                              "SOME" if isinstance(conj, ast.Some) else "ALL")
                    )
            _join_arcs(graph, scope_prefix, conj.pred)


def _binding_label(var: str, rng: ast.RangeExpr) -> str:
    return f"EACH {var} IN {_range_label(rng)}"


def _apply_arc_if_constructed(graph: QuantGraph, node_id: str, rng: ast.RangeExpr) -> None:
    if isinstance(rng, ast.Constructed):
        graph.add_arc(QGArc(node_id, f"head:{rng.constructor}", "apply", "applies"))
    elif isinstance(rng, ast.ApplyVar):
        key = rng.token
        constructor = getattr(key, "constructor", str(key))
        graph.add_arc(QGArc(node_id, f"head:{constructor}", "apply", "applies"))


def build_query_graph(db: Database, query: ast.Query, prefix: str = "q") -> QuantGraph:
    """The plain quant graph of one query (one scope per branch)."""
    graph = QuantGraph()
    for bi, branch in enumerate(query.branches):
        scope = f"{prefix}{bi}."
        for binding in branch.bindings:
            node_id = f"{scope}{binding.var}"
            graph.add_node(QGNode(node_id, "var", _binding_label(binding.var, binding.range)))
            _apply_arc_if_constructed(graph, node_id, binding.range)
        _join_arcs(graph, scope, branch.pred)
    return graph


def build_constructor_graph(db: Database, constructor) -> QuantGraph:
    """The augmented quant graph of one constructor definition (Fig. 3)."""
    graph = QuantGraph()
    head_id = f"head:{constructor.name}"
    graph.add_node(
        QGNode(
            head_id,
            "head",
            f"CONSTRUCTOR {constructor.name} FOR {constructor.formal_rel}: "
            f"{constructor.rel_type.name} -> {constructor.result_type.name}",
        )
    )
    result_attrs = constructor.result_type.element.attribute_names
    for bi, branch in enumerate(constructor.body.branches):
        scope = f"{constructor.name}.{bi}."
        for binding in branch.bindings:
            node_id = f"{scope}{binding.var}"
            graph.add_node(QGNode(node_id, "var", _binding_label(binding.var, binding.range)))
            _apply_arc_if_constructed(graph, node_id, binding.range)
        _join_arcs(graph, scope, branch.pred)
        # Attribute arcs: which variable supplies each result attribute.
        if branch.targets is None:
            var = branch.bindings[0].var
            for attr in result_attrs:
                graph.add_arc(QGArc(head_id, f"{scope}{var}", "attr", attr))
        else:
            for attr, target in zip(result_attrs, branch.targets):
                if isinstance(target, ast.AttrRef):
                    graph.add_arc(
                        QGArc(head_id, f"{scope}{target.var}", "attr",
                              f"{attr}={target.var}.{target.attr}")
                    )
    return graph


def build_interconnectivity_graph(db: Database, constructors) -> QuantGraph:
    """Augmented quant graphs of several constructors, merged — the clause
    interconnectivity graph whose cycles identify recursion (step 2/3)."""
    merged = QuantGraph()
    for constructor in constructors:
        graph = build_constructor_graph(db, constructor)
        for node in graph.nodes.values():
            merged.add_node(node)
        for arc in graph.arcs:
            merged.add_arc(arc)
    return merged
