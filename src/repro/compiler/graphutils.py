"""Minimal directed-graph algorithms for the compiler.

Implemented from scratch (Tarjan's strongly-connected components and
undirected connected components) so the production code carries no
third-party graph dependency; networkx appears only in the test suite as
an independent oracle.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

Node = Hashable
Edge = tuple[Node, Node]


class Digraph:
    """A small adjacency-list directed graph over hashable nodes."""

    def __init__(self) -> None:
        self.succ: dict[Node, list[Node]] = {}

    def add_node(self, node: Node) -> None:
        self.succ.setdefault(node, [])

    def add_edge(self, src: Node, dst: Node) -> None:
        self.add_node(src)
        self.add_node(dst)
        if dst not in self.succ[src]:
            self.succ[src].append(dst)

    @property
    def nodes(self) -> list[Node]:
        return list(self.succ)

    def edges(self) -> list[Edge]:
        return [(s, d) for s, ds in self.succ.items() for d in ds]

    def has_edge(self, src: Node, dst: Node) -> bool:
        return dst in self.succ.get(src, ())


def strongly_connected_components(graph: Digraph) -> list[list[Node]]:
    """Tarjan's algorithm, iterative (no recursion-depth limit).

    Components are returned in reverse topological order (every edge out
    of a later component points into an earlier one).
    """
    index: dict[Node, int] = {}
    lowlink: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    components: list[list[Node]] = []
    counter = 0

    for root in graph.nodes:
        if root in index:
            continue
        work: list[tuple[Node, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            successors = graph.succ[node]
            advanced = False
            for i in range(child_index, len(successors)):
                succ = successors[i]
                if succ not in index:
                    work.append((node, i + 1))
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component: list[Node] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def recursive_nodes(graph: Digraph) -> set[Node]:
    """Nodes on some cycle: in a multi-node SCC, or with a self-loop."""
    out: set[Node] = set()
    for component in strongly_connected_components(graph):
        if len(component) > 1:
            out.update(component)
        elif graph.has_edge(component[0], component[0]):
            out.add(component[0])
    return out


def connected_components(nodes: Iterable[Node], edges: Iterable[Edge]) -> list[set[Node]]:
    """Undirected connected components (the compiler's partitioning)."""
    parent: dict[Node, Node] = {n: n for n in nodes}

    def find(node: Node) -> Node:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for src, dst in edges:
        parent.setdefault(src, src)
        parent.setdefault(dst, dst)
        ra, rb = find(src), find(dst)
        if ra != rb:
            parent[ra] = rb

    groups: dict[Node, set[Node]] = {}
    for node in parent:
        groups.setdefault(find(node), set()).add(node)
    return list(groups.values())


def topological_order(graph: Digraph) -> list[Node]:
    """Kahn's algorithm; raises ValueError on cycles."""
    indegree: dict[Node, int] = {n: 0 for n in graph.nodes}
    for _src, dst in graph.edges():
        indegree[dst] += 1
    queue = [n for n, d in indegree.items() if d == 0]
    order: list[Node] = []
    while queue:
        node = queue.pop()
        order.append(node)
        for succ in graph.succ[node]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                queue.append(succ)
    if len(order) != len(graph.nodes):
        raise ValueError("graph has a cycle")
    return order
