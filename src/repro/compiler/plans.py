"""Compiled query plans: the set-oriented execution engine of section 4.

The reference evaluator interprets ASTs tuple variable by tuple variable;
this module *compiles* a query instead, which is what the paper's query
compilation level produces for non-recursive (sub)queries and for the
branch bodies inside generated fixpoint programs:

* each branch becomes a :class:`BranchPlan` — an ordered loop nest whose
  steps use **hash-index lookups** whenever an equality conjunct links
  the step's variable to already-bound variables or constants, and scan
  otherwise (greedy ordering picks indexed steps first);
* equality conjuncts on constants and on bound variables are consumed by
  the access path; any remaining predicate parts (quantifiers,
  inequalities, memberships) run as residual filters;
* targets compile to positional extractors.

Executing a plan needs an :class:`ExecutionContext` carrying the
database, parameters, and the current fixpoint-variable values; the
context also owns per-execution hash indexes over those values and the
operation counters the benchmarks report (rows scanned, index lookups,
tuples emitted).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..calculus import ast
from ..calculus.analysis import free_tuple_vars
from ..calculus.evaluator import Evaluator, RangeValue
from ..calculus.rewrite import conjoin, conjuncts
from ..errors import EvaluationError
from ..relational import Database, HashIndex, Relation
from ..types import RecordType


@dataclass
class PlanStats:
    """Operation counters for compiled execution."""

    rows_scanned: int = 0
    index_lookups: int = 0
    residual_checks: int = 0
    tuples_emitted: int = 0
    iterations: int = 0


class ExecutionContext:
    """Everything a plan needs at run time."""

    def __init__(
        self,
        db: Database,
        params: dict[str, object] | None = None,
        apply_values: dict[object, set] | None = None,
        stats: PlanStats | None = None,
    ) -> None:
        self.db = db
        self.params = dict(params or {})
        self.apply_values = dict(apply_values or {})
        self.stats = stats if stats is not None else PlanStats()
        self._set_indexes: dict[tuple[int, tuple[int, ...]], HashIndex] = {}
        # The residual evaluator shares params/apply values with the plan.
        self.evaluator = Evaluator(db, self.params, self.apply_values)

    def index_rows(self, token: object, rows, positions: tuple[int, ...]) -> HashIndex:
        """A per-execution hash index over a materialized row set."""
        key = (id(rows), positions)
        index = self._set_indexes.get(key)
        if index is None:
            index = HashIndex(positions, rows)
            self._set_indexes[key] = index
        return index


# ---------------------------------------------------------------------------
# Sources
# ---------------------------------------------------------------------------


@dataclass
class Source:
    """Where a loop step's rows come from."""

    kind: str  # "relation" | "apply" | "computed"
    name: str = ""
    token: object = None
    rexpr: ast.RangeExpr | None = None
    schema: RecordType | None = None

    def rows_and_indexable(self, ctx: ExecutionContext):
        """Returns (rows, index_provider) where index_provider(positions)
        yields a HashIndex or None."""
        if self.kind == "relation":
            relation = ctx.db.relation(self.name)
            return relation.raw(), lambda pos: relation.index_on(
                tuple(relation.element_type.attribute_names[i] for i in pos)
            )
        if self.kind == "apply":
            rows = ctx.apply_values.get(self.token)
            if rows is None:
                raise EvaluationError(f"unbound fixpoint variable {self.token!r}")
            return rows, lambda pos: ctx.index_rows(self.token, rows, pos)
        # "computed": selected ranges, inline queries — resolved through
        # the reference evaluator once per execution (they are static).
        value = ctx.evaluator.resolve_range(self.rexpr, {})
        rows = value.rows if isinstance(value.rows, (set, frozenset)) else set(value.rows)
        return rows, lambda pos: ctx.index_rows(self.rexpr, rows, pos)

    def describe(self) -> str:
        if self.kind == "relation":
            return self.name
        if self.kind == "apply":
            return f"@{getattr(self.token, 'constructor', self.token)}"
        from ..calculus.pretty import render_range

        return render_range(self.rexpr)


def _source_for(db: Database, rexpr: ast.RangeExpr, params: dict) -> Source:
    if isinstance(rexpr, ast.RelRef):
        name = rexpr.name
        if name in params or name in db:
            # Parameters bound to Relations are resolved at run time via
            # the computed path so rebinding works; plain relations scan.
            if name in db:
                return Source("relation", name=name, schema=db[name].element_type)
        return Source("computed", rexpr=rexpr)
    if isinstance(rexpr, ast.ApplyVar):
        return Source("apply", token=rexpr.token, schema=rexpr.schema)
    return Source("computed", rexpr=rexpr)


# ---------------------------------------------------------------------------
# Terms compiled against an environment of raw rows
# ---------------------------------------------------------------------------


def _compile_value(term: ast.Term, schemas: dict[str, RecordType], params: dict):
    """term -> callable(env: dict[var, row]) -> value, or None if dynamic."""
    if isinstance(term, ast.Const):
        value = term.value
        return lambda env: value
    if isinstance(term, ast.ParamRef):
        name = term.name
        return lambda env: params[name]
    if isinstance(term, ast.AttrRef):
        schema = schemas.get(term.var)
        if schema is None:
            return None
        idx = schema.index_of(term.attr)
        var = term.var
        return lambda env: env[var][idx]
    if isinstance(term, ast.Arith):
        left = _compile_value(term.left, schemas, params)
        right = _compile_value(term.right, schemas, params)
        if left is None or right is None:
            return None
        op = term.op
        if op == "+":
            return lambda env: left(env) + right(env)
        if op == "-":
            return lambda env: left(env) - right(env)
        if op == "*":
            return lambda env: left(env) * right(env)
        if op == "DIV":
            return lambda env: left(env) // right(env)
        if op == "MOD":
            return lambda env: left(env) % right(env)
    if isinstance(term, ast.TupleCons):
        items = [_compile_value(i, schemas, params) for i in term.items]
        if any(i is None for i in items):
            return None
        return lambda env: tuple(fn(env) for fn in items)
    return None


def _term_vars(term: ast.Term) -> set[str]:
    return free_tuple_vars(term)


# ---------------------------------------------------------------------------
# Branch compilation
# ---------------------------------------------------------------------------


@dataclass
class LoopStep:
    """One level of the loop nest."""

    var: str
    source: Source
    schema: RecordType
    # Index access: attribute positions in this step's rows, paired with
    # value closures over the already-bound environment.
    key_positions: tuple[int, ...] = ()
    key_values: tuple = ()
    # Cheap compiled filters evaluated on (env incl. this var).
    filters: tuple = ()
    filter_descs: tuple[str, ...] = ()

    def describe(self) -> str:
        access = "scan"
        if self.key_positions:
            access = f"index{list(self.key_positions)}"
        filters = f" filter[{', '.join(self.filter_descs)}]" if self.filters else ""
        return f"EACH {self.var} IN {self.source.describe()} via {access}{filters}"


@dataclass
class BranchPlan:
    steps: list[LoopStep]
    residual: ast.Pred
    target_fn: object
    target_desc: str
    schemas: dict[str, RecordType]

    def execute(self, ctx: ExecutionContext, out: set) -> None:
        stats = ctx.stats
        residual = self.residual
        has_residual = not isinstance(residual, ast.TruePred)
        schemas = self.schemas
        evaluator = ctx.evaluator

        def run(depth: int, env: dict) -> None:
            if depth == len(self.steps):
                if has_residual:
                    stats.residual_checks += 1
                    rich_env = {
                        v: (row, schemas[v]) for v, row in env.items()
                    }
                    if not evaluator.eval_pred(residual, rich_env):
                        return
                out.add(self.target_fn(env))
                stats.tuples_emitted += 1
                return
            step = self.steps[depth]
            rows, index_provider = step.source.rows_and_indexable(ctx)
            if step.key_positions:
                key = tuple(fn(env) for fn in step.key_values)
                index = index_provider(step.key_positions)
                candidates = index.lookup(key)
                stats.index_lookups += 1
            else:
                candidates = rows
            var = step.var
            for row in candidates:
                stats.rows_scanned += 1
                ok = True
                env[var] = row
                for flt in step.filters:
                    if not flt(env):
                        ok = False
                        break
                if ok:
                    run(depth + 1, env)
            env.pop(var, None)

        run(0, {})

    def explain(self, indent: str = "") -> str:
        lines = [f"{indent}{step.describe()}" for step in self.steps]
        if not isinstance(self.residual, ast.TruePred):
            from ..calculus.pretty import render_pred

            lines.append(f"{indent}RESIDUAL {render_pred(self.residual)}")
        lines.append(f"{indent}EMIT {self.target_desc}")
        return "\n".join(lines)


@dataclass
class QueryPlan:
    """Union of branch plans with duplicate elimination (set semantics)."""

    branches: list[BranchPlan]

    def execute(self, ctx: ExecutionContext) -> set[tuple]:
        out: set[tuple] = set()
        for branch in self.branches:
            branch.execute(ctx, out)
        return out

    def explain(self) -> str:
        parts = []
        for i, branch in enumerate(self.branches):
            parts.append(f"BRANCH {i}:")
            parts.append(branch.explain(indent="  "))
        return "\n".join(parts)


def _static_schema_of(db: Database, rexpr: ast.RangeExpr, params: dict) -> RecordType:
    evaluator = Evaluator(db, params)
    return evaluator.infer_schema(rexpr, {})


def compile_branch(
    db: Database, branch: ast.Branch, params: dict | None = None
) -> BranchPlan:
    params = params or {}
    schemas: dict[str, RecordType] = {}
    sources: dict[str, Source] = {}
    for binding in branch.bindings:
        schema = _static_schema_of(db, binding.range, params)
        schemas[binding.var] = schema
        source = _source_for(db, binding.range, params)
        source.schema = schema
        sources[binding.var] = source

    binding_vars = [b.var for b in branch.bindings]
    # Split conjuncts into: equalities usable for index access, cheap
    # compiled filters, and residual predicates.  Attribute-to-attribute
    # equalities are recorded in both orientations under one group id, so
    # whichever side gets bound later can serve as the index key.
    equalities: list[tuple[int, str, int, ast.Term]] = []  # (group, var, pos, other)
    cheap: list[tuple[set[str], object, str]] = []
    residual: list[ast.Pred] = []
    from ..calculus.pretty import render_pred

    for group, conj in enumerate(conjuncts(branch.pred)):
        handled = False
        if isinstance(conj, ast.Cmp) and conj.op == "=":
            for left, right in ((conj.left, conj.right), (conj.right, conj.left)):
                if (
                    isinstance(left, ast.AttrRef)
                    and left.var in schemas
                    and not (_term_vars(right) - set(binding_vars))
                ):
                    pos = schemas[left.var].index_of(left.attr)
                    equalities.append((group, left.var, pos, right))
                    handled = True
        if handled:
            continue
        vars_needed = _term_vars(conj)
        if vars_needed <= set(binding_vars) and isinstance(conj, ast.Cmp):
            fn = _compile_cmp(conj, schemas, params)
            if fn is not None:
                cheap.append((vars_needed, fn, render_pred(conj)))
                continue
        residual.append(conj)

    # Greedy ordering: repeatedly pick the binding with the most equality
    # keys computable from what is already bound (constants count).  Ties
    # prefer fixpoint-variable (delta) sources: inside semi-naive loops the
    # delta is the small side and should drive the loop nest.
    ordered: list[str] = []
    remaining = list(binding_vars)
    while remaining:
        best = None
        best_score = (-1, False)
        for var in remaining:
            keys = [
                (pos, other)
                for (_g, v, pos, other) in equalities
                if v == var and _term_vars(other) <= set(ordered)
            ]
            is_apply = sources[var].kind == "apply"
            score = (len(keys), is_apply)
            if best is None or score > best_score:
                best, best_score = var, score
        ordered.append(best)
        remaining.remove(best)

    steps: list[LoopStep] = []
    consumed: set[int] = set()  # consumed group ids
    for var in ordered:
        bound_before = set(ordered[: ordered.index(var)])
        key_positions: list[int] = []
        key_values: list = []
        step_filters: list = []
        step_descs: list[str] = []
        for group, v, pos, other in equalities:
            if group in consumed or v != var:
                continue
            if _term_vars(other) <= bound_before:
                value_fn = _compile_value(other, schemas, params)
                if value_fn is not None:
                    key_positions.append(pos)
                    key_values.append(value_fn)
                    consumed.add(group)
        # cheap filters whose variables are all bound once var is bound
        for needed, fn, desc in cheap:
            if var in needed and needed <= bound_before | {var}:
                step_filters.append(fn)
                step_descs.append(desc)
        steps.append(
            LoopStep(
                var=var,
                source=sources[var],
                schema=schemas[var],
                key_positions=tuple(key_positions),
                key_values=tuple(key_values),
                filters=tuple(step_filters),
                filter_descs=tuple(step_descs),
            )
        )

    # Equalities not consumed as keys become cheap filters at the first step
    # where both sides are bound.  Only one orientation per group is placed.
    placed_groups: set[int] = set()
    for group, v, pos, other in equalities:
        if group in consumed or group in placed_groups:
            continue
        placed_groups.add(group)
        left = ast.AttrRef(v, schemas[v].attribute_names[pos])
        fn = _compile_cmp(ast.Cmp("=", left, other), schemas, params)
        if fn is None:
            residual.append(ast.Cmp("=", left, other))
            continue
        needed = {v} | _term_vars(other)
        placed = False
        # place at the first step where all needed variables are bound
        for i, step in enumerate(steps):
            bound = {s.var for s in steps[: i + 1]}
            if needed <= bound:
                step.filters = step.filters + (fn,)
                step.filter_descs = step.filter_descs + (f"{v}[{pos}] = ...",)
                placed = True
                break
        if not placed:
            residual.append(ast.Cmp("=", left, other))

    # Targets
    if branch.targets is None:
        var = branch.bindings[0].var
        target_fn = lambda env: env[var]
        target_desc = var
    else:
        extractors = [_compile_value(t, schemas, params) for t in branch.targets]
        if any(e is None for e in extractors):
            raise EvaluationError("untranslatable target term in branch")
        target_fn = lambda env: tuple(fn(env) for fn in extractors)
        from ..calculus.pretty import render_term

        target_desc = "<" + ", ".join(render_term(t) for t in branch.targets) + ">"

    return BranchPlan(
        steps=steps,
        residual=conjoin(tuple(residual)),
        target_fn=target_fn,
        target_desc=target_desc,
        schemas=schemas,
    )


def _compile_cmp(conj: ast.Cmp, schemas, params):
    left = _compile_value(conj.left, schemas, params)
    right = _compile_value(conj.right, schemas, params)
    if left is None or right is None:
        return None
    op = conj.op
    if op == "=":
        return lambda env: left(env) == right(env)
    if op == "<>":
        return lambda env: left(env) != right(env)
    if op == "<":
        return lambda env: left(env) < right(env)
    if op == "<=":
        return lambda env: left(env) <= right(env)
    if op == ">":
        return lambda env: left(env) > right(env)
    if op == ">=":
        return lambda env: left(env) >= right(env)
    return None


def compile_query(
    db: Database, query: ast.Query, params: dict | None = None
) -> QueryPlan:
    """Compile every branch of a query into an executable plan."""
    return QueryPlan([compile_branch(db, branch, params) for branch in query.branches])


def run_query(
    db: Database,
    query: ast.Query,
    params: dict | None = None,
    apply_values: dict | None = None,
    stats: PlanStats | None = None,
) -> set[tuple]:
    """Compile and execute a query in one call."""
    plan = compile_query(db, query, params)
    ctx = ExecutionContext(db, params, apply_values, stats)
    return plan.execute(ctx)
