"""Compiled query plans: the set-oriented execution engine of section 4.

The reference evaluator interprets ASTs tuple variable by tuple variable;
this module *compiles* a query instead, which is what the paper's query
compilation level produces for non-recursive (sub)queries and for the
branch bodies inside generated fixpoint programs:

* each branch becomes a :class:`BranchPlan` — an ordered loop nest whose
  steps use **hash-index lookups** whenever an equality conjunct links
  the step's variable to already-bound variables or constants, and scan
  otherwise;
* the loop-nest order and the index-vs-scan choice are made by a
  :class:`CostModel` over table statistics (cardinalities, distinct
  counts, index selectivities — see :mod:`repro.relational.stats`):
  exact dynamic programming over join orders for narrow branches,
  greedy cheapest-next for wide ones.  The legacy orderings remain
  available (``optimizer="greedy"`` scores by key count,
  ``optimizer="syntactic"`` keeps the written binding order) so the
  benchmarks can measure what the statistics buy;
* equality conjuncts on constants and on bound variables are consumed by
  the access path; any remaining predicate parts (quantifiers,
  inequalities, memberships) run as residual filters;
* targets compile to positional extractors.

Executing a plan needs an :class:`ExecutionContext` carrying the
database, parameters, and the current fixpoint-variable values; the
context also owns per-execution hash indexes over those values and the
operation counters the benchmarks report (rows scanned, index lookups,
tuples emitted).  Every plan's :meth:`~BranchPlan.explain` reports the
optimizer's *estimated* row counts next to the *actual* counts observed
during execution, so estimation quality is testable.

Plans *execute* through the batched physical-operator pipelines of
:mod:`repro.compiler.operators`, dispatched by name through the
:mod:`repro.compiler.executors` backend registry.  The default
(``executor="batch"``) lowers each branch into **columnar
struct-of-arrays** pipelines — aligned per-variable row slots expanded
by C-level kernels, grouped residual probes, and projection fused into
the producing join or filter — with fusion decisions cost-gated by the
:class:`CostModel`.  ``executor="sharded"`` runs the same columnar
pipelines hash-partitioned across a worker pool
(:mod:`repro.compiler.sharded`, benchmark E18); ``executor="rowbatch"``
keeps the row-major batched pipelines (PR 3) and ``executor="tuple"``
the original tuple-at-a-time interpreter, so benchmarks E16/E17 can
measure each layer on identical plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from ..calculus import ast
from ..calculus.analysis import free_tuple_vars
from ..calculus.evaluator import Evaluator
from ..calculus.rewrite import conjoin, conjuncts
from ..errors import DBPLError, EvaluationError, NameResolutionError, SchemaError
from ..relational import Database, HashIndex
from ..types import RecordType
from .executors import EXECUTOR_NAMES, get_backend
from .options import (
    _UNSET,
    DEFAULT_EXECUTOR,
    DEFAULT_OPTIMIZER,
    ExecOptions,
    resolve_options,
)
from .operators import (
    Dedup,
    _batch_len,
    lower_branch,
    lower_branch_columnar,
    lower_branch_vector,
)

#: Join orders are enumerated exactly (Selinger-style subset DP) up to
#: this many bindings per branch; wider branches fall back to greedy
#: cheapest-next-step ordering.
DP_LIMIT = 6

#: The execution defaults live in :mod:`repro.compiler.options` (the
#: canonical knob surface); re-exported here for the many importers.
#: "batch" runs the columnar (struct-of-arrays) operator pipeline with
#: fused projection, "rowbatch" the row-major batched pipeline it
#: replaced (benchmark E17's baseline), "tuple" the original
#: interpreted loop nest (E16's baseline), and "sharded" the
#: hash-partitioned parallel backend (E18).  Dispatch goes through the
#: :mod:`repro.compiler.executors` registry.

#: Every accepted executor mode (see :mod:`repro.compiler.executors`).
EXECUTORS = EXECUTOR_NAMES

#: Sentinel: a branch plan whose operator pipeline has not been lowered
#: yet (lowering is lazy so estimate-only compilations never pay for it).
_PENDING = object()


@dataclass
class PlanStats:
    """Operation counters for compiled execution.

    ``residual_checks`` counts rows that reached a residual predicate;
    ``residual_evals`` counts actual reference-evaluator invocations —
    the columnar executor's per-batch memoization and grouped index
    probes make the second far smaller than the first.
    """

    rows_scanned: int = 0
    index_lookups: int = 0
    residual_checks: int = 0
    residual_evals: int = 0
    tuples_emitted: int = 0
    iterations: int = 0


class ExecutionContext:
    """Everything a plan needs at run time."""

    def __init__(
        self,
        db: Database,
        params: dict[str, object] | None = None,
        apply_values: dict[object, set] | None = None,
        stats: PlanStats | None = None,
    ) -> None:
        self.db = db
        self.params = dict(params or {})
        self.apply_values = dict(apply_values or {})
        self.stats = stats if stats is not None else PlanStats()
        self._set_indexes: dict[tuple[int, tuple[int, ...]], HashIndex] = {}
        self._residual_indexes: dict[tuple, tuple[object, HashIndex]] = {}
        self._member_sets: dict[object, frozenset | set] = {}
        #: Per-operator memos of build-side-filtered buckets — the
        #: cost-gated probe-pushdown cache of the columnar executor.
        #: Keyed by the HashJoin operator object itself (a recycled id
        #: must never inherit another operator's filter); values are
        #: (buckets, memo) pairs with the bucket dict held and
        #: identity-checked so a rebuilt index restarts the memo.
        self.pushed_buckets: dict[object, tuple[dict, dict]] = {}
        #: Per-source (rows, index_provider) overrides, keyed by the
        #: Source object's id — the sharded backend materializes one
        #: override map per shard so generated pipelines transparently
        #: see partition views instead of whole sources.
        self.source_overrides: dict[int, tuple] | None = None
        #: Shipped per-shard encoded tables for the vector kernels,
        #: keyed by branch step index (SourceRef.key) — set only inside
        #: sharded process-pool workers, where Source identities do not
        #: survive pickling.  Checked before source_overrides.
        self.encoded_overrides: dict[int, object] | None = None
        #: Per-execution-context cache of the vector kernels: encoded
        #: override tables, dictionary translation arrays, and filter
        #: verdict tables (see repro.compiler.operators._encoded_table).
        self.vector_cache: dict = {}
        #: Sharded-executor tuning for plans run under this context
        #: (None → the module defaults of repro.compiler.sharded).
        self.shard_config = None
        #: Observable-fallback hook: callable(kind, detail) installed by
        #: the serving layer (see ``Session._note_exec_fallback``) so
        #: silent executor degradations — process pool falling back to
        #: threads, the shipped-shard path falling back to fork-time
        #: inheritance — surface as counters and DBPL9xx hints.
        self.on_fallback = None
        # The residual evaluator shares params/apply values with the plan.
        self.evaluator = Evaluator(db, self.params, self.apply_values)

    def note_fallback(self, kind: str, detail: str) -> None:
        """Report a silent-degradation event to the installed hook."""
        hook = self.on_fallback
        if hook is not None:
            hook(kind, detail)

    def index_rows(self, token: object, rows, positions: tuple[int, ...]) -> HashIndex:
        """A per-execution hash index over a materialized row set."""
        key = (id(rows), positions)
        index = self._set_indexes.get(key)
        if index is None:
            index = HashIndex(positions, rows)
            self._set_indexes[key] = index
        return index

    def residual_index(self, token, rows, positions: tuple[int, ...]) -> HashIndex:
        """The grouped-probe index of a residual's range.

        Keyed by the range's AST node (hashable, like :meth:`member_set`)
        with the row collection held and identity-checked, so a freed
        row list can never alias another range's index and per-iteration
        fixpoint values rebuild cleanly.  Stored relations do not come
        through here — :class:`~repro.compiler.operators.ResidualProbe`
        routes them to the relation's version-aware index cache, which
        in-place mutations invalidate.
        """
        key = (token, positions)
        entry = self._residual_indexes.get(key)
        if entry is None or entry[0] is not rows:
            index = HashIndex(positions, rows)
            self._residual_indexes[key] = (rows, index)
            return index
        return entry[1]

    def member_set(self, token: object, rows) -> frozenset | set:
        """``rows`` as a set, cached per execution (membership residuals).

        Keyed by the residual's range expression (``token``, a hashable
        frozen AST node) rather than by object identity, so a freed row
        list can never alias another range's members.
        """
        if isinstance(rows, (set, frozenset)):
            return rows
        members = self._member_sets.get(token)
        if members is None:
            members = self._member_sets[token] = set(rows)
        return members


# ---------------------------------------------------------------------------
# Sources
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScanPushdown:
    """What a scan may push down to a storage-backed relation's reader.

    ``projection`` — column positions the branch provably reads (None →
    all columns; derived conservatively from the branch AST, so any
    whole-row use or name shadowing keeps the full width).
    ``selection`` — symbolic ``(pos, op, spec)`` single-variable
    comparisons, with ``spec`` either ``("const", value)`` or
    ``("param", name)`` so prepared plans resolve per execution.

    Pushdown is advisory and idempotent: the compiled filters re-check
    every pushed predicate, and dead columns are only ever positions the
    plan never touches, so a reader is free to ignore any part of it.
    """

    projection: tuple | None = None
    selection: tuple = ()

    def describe(self) -> str:
        parts = []
        if self.projection is not None:
            parts.append(f"cols={list(self.projection)}")
        if self.selection:
            parts.append(f"preds={len(self.selection)}")
        return " ".join(parts)


@dataclass
class Source:
    """Where a loop step's rows come from."""

    kind: str  # "relation" | "apply" | "computed"
    name: str = ""
    token: object = None
    rexpr: ast.RangeExpr | None = None
    schema: RecordType | None = None

    def rows_and_indexable(self, ctx: ExecutionContext):
        """Returns (rows, index_provider) where index_provider(positions)
        yields a HashIndex or None."""
        overrides = ctx.source_overrides
        if overrides is not None:
            shard = overrides.get(id(self))
            if shard is not None:
                return shard
        if self.kind == "relation":
            relation = ctx.db.relation(self.name)
            # raw_list(): a per-version cached list view — the columnar
            # kernels make several aligned passes over a scan's rows.
            return relation.raw_list(), lambda pos: relation.index_on(
                tuple(relation.element_type.attribute_names[i] for i in pos)
            )
        if self.kind == "apply":
            rows = ctx.apply_values.get(self.token)
            if rows is None:
                raise EvaluationError(f"unbound fixpoint variable {self.token!r}")
            return rows, lambda pos: ctx.index_rows(self.token, rows, pos)
        # "computed": selected ranges, inline queries — resolved through
        # the reference evaluator once per execution (they are static).
        value = ctx.evaluator.resolve_range(self.rexpr, {})
        rows = value.rows if isinstance(value.rows, (set, frozenset)) else set(value.rows)
        return rows, lambda pos: ctx.index_rows(self.rexpr, rows, pos)

    def scan_rows(self, ctx: ExecutionContext, pushdown=None):
        """Rows for a full-scan access path, honoring storage pushdown.

        Shard overrides win (their rows are already materialized and
        partitioned); then a cold, store-backed relation scans through
        its partition reader — decoding only the live columns of the
        partitions matching the pushed predicates — and everything else
        falls back to :meth:`rows_and_indexable`.
        """
        overrides = ctx.source_overrides
        if overrides is not None and overrides.get(id(self)) is not None:
            return overrides[id(self)][0]
        if pushdown is not None and self.kind == "relation":
            rows = ctx.db.relation(self.name).scan_pushdown(
                pushdown.projection, pushdown.selection, ctx.params
            )
            if rows is not None:
                return rows
        return self.rows_and_indexable(ctx)[0]

    def describe(self) -> str:
        if self.kind == "relation":
            return self.name
        if self.kind == "apply":
            token = self.token
            if (
                isinstance(token, tuple)
                and len(token) == 3
                and token[0] == "__seminaive__"
            ):
                kind, key = token[1], token[2]
                label = getattr(key, "constructor", key)
                prefix = {"delta": "Δ", "new": "new:", "old": "old:"}.get(kind, "")
                return f"@{prefix}{label}"
            return f"@{getattr(token, 'constructor', token)}"
        from ..calculus.pretty import render_range

        return render_range(self.rexpr)


def _source_for(db: Database, rexpr: ast.RangeExpr, params: dict) -> Source:
    if isinstance(rexpr, ast.RelRef):
        name = rexpr.name
        if name in params or name in db:
            # Parameters bound to Relations are resolved at run time via
            # the computed path so rebinding works; plain relations scan.
            if name in db:
                return Source("relation", name=name, schema=db[name].element_type)
        return Source("computed", rexpr=rexpr)
    if isinstance(rexpr, ast.ApplyVar):
        return Source("apply", token=rexpr.token, schema=rexpr.schema)
    return Source("computed", rexpr=rexpr)


def _is_delta_token(token: object) -> bool:
    return (
        isinstance(token, tuple)
        and len(token) == 3
        and token[0] == "__seminaive__"
        and token[1] == "delta"
    )


# ---------------------------------------------------------------------------
# The cost model
# ---------------------------------------------------------------------------


class CostModel:
    """Prices loop-nest steps from table statistics.

    Cardinalities come straight from the live :class:`TableStats` of the
    relations involved (exact row counts, exact distinct-value counts);
    equality selectivity of an indexed key is read off an already-built
    hash index when one exists, and otherwise computed as the
    independence product of per-column ``1/distinct`` estimates.  Range
    comparisons against constants (``<``, ``<=``, ``>``, ``>=``) are
    priced from per-column **equi-depth histograms** instead of a blind
    constant; ``use_histograms=False`` restores the constant (for
    measuring what the histograms buy — see benchmark E15).  Sources
    the statistics cannot see (fixpoint variables, computed ranges) are
    priced through ``apply_estimates`` — the fixpoint compiler passes
    separate estimates for full values and for deltas, which is what
    keeps deltas driving the differential loop nests — with catalog
    observations of previously converged fixpoints (including their
    absorbed per-column statistics) as the fallback.
    """

    #: Rows assumed for a computed range nobody has statistics for.
    DEFAULT_COMPUTED_ROWS = 32.0
    #: Assumed output growth of a recursive application over its base.
    RECURSIVE_GROWTH = 4.0
    #: Cost charged once for building a hash index over a source.
    INDEX_BUILD_WEIGHT = 0.25
    #: Selectivity of a range comparison when no histogram is available
    #: (the classic System-R constant).
    DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
    #: Selectivity of ``<>`` when no statistics are available.
    DEFAULT_NEQ_SELECTIVITY = 0.9
    #: Selectivity of a membership (``t IN R``) nobody has statistics for.
    DEFAULT_MEMBERSHIP_SELECTIVITY = 0.25
    #: Assumed per-element probability that a quantifier body holds.
    QUANTIFIER_MATCH = 1.0 / 3.0

    def __init__(
        self,
        db: Database,
        apply_estimates: dict[object, float] | None = None,
        use_histograms: bool = True,
        apply_tables: dict[object, object] | None = None,
    ) -> None:
        self.db = db
        self.catalog = getattr(db, "stats", None)
        self.apply_estimates = dict(apply_estimates or {})
        self.use_histograms = use_histograms
        #: Live TableStats per fixpoint-variable key — the mid-fixpoint
        #: re-optimizer passes the statistics absorbed so far, which beat
        #: both the catalog (previous runs) and the sqrt heuristic.
        self.apply_tables = dict(apply_tables or {})

    # -- cardinalities -------------------------------------------------------

    def source_cardinality(self, source: Source) -> float:
        if source.kind == "relation":
            return float(len(self.db[source.name]))
        if source.kind == "apply":
            return self.apply_cardinality(source.token)
        return self.range_cardinality(source.rexpr)

    def apply_cardinality(self, token: object) -> float:
        if token in self.apply_estimates:
            return self.apply_estimates[token]
        key = token
        kind = None
        if isinstance(token, tuple) and len(token) == 3 and token[0] == "__seminaive__":
            kind = token[1]
            key = token[2]
        observed = (
            self.catalog.constructed_estimate(key) if self.catalog is not None else None
        )
        if observed is None:
            base_total = sum(len(r) for r in self.db.relations.values()) or 8
            observed = base_total * self.RECURSIVE_GROWTH
        if kind == "delta":
            # Deltas shrink toward convergence; sqrt of the full value is
            # a deliberately small estimate so deltas drive loop nests.
            return max(1.0, observed ** 0.5)
        return float(observed)

    def range_cardinality(self, rexpr: ast.RangeExpr | None, depth: int = 0) -> float:
        if isinstance(rexpr, ast.RelRef) and rexpr.name in self.db:
            return float(len(self.db[rexpr.name]))
        if isinstance(rexpr, ast.ApplyVar):
            return self.apply_cardinality(rexpr.token)
        if isinstance(rexpr, ast.Selected) and depth < 4:
            # A selector keeps a restricted subset of its base.
            return max(1.0, 0.5 * self.range_cardinality(rexpr.base, depth + 1))
        if isinstance(rexpr, ast.Constructed) and depth < 4:
            base = self.range_cardinality(rexpr.base, depth + 1)
            try:
                recursive = self.db.constructor(rexpr.constructor).is_recursive()
            except NameResolutionError:
                recursive = True  # unknown constructor: price pessimistically
            return max(1.0, base * (self.RECURSIVE_GROWTH if recursive else 2.0))
        return self.DEFAULT_COMPUTED_ROWS

    # -- selectivities -------------------------------------------------------

    def source_table(self, source: Source):
        """The :class:`TableStats` describing a source, when one exists.

        Relations answer with their live stats; fixpoint variables answer
        with the statistics absorbed over the value the last time the
        same application converged (catalog observations), which carry
        distinct counts *and* histograms for the constructed columns.
        """
        if source.kind == "relation":
            return self.db[source.name].stats()
        if source.kind == "apply":
            key = source.token
            if (
                isinstance(key, tuple)
                and len(key) == 3
                and key[0] == "__seminaive__"
            ):
                key = key[2]
            table = self.apply_tables.get(key)
            if table is not None:
                return table
            if self.catalog is not None:
                observation = self.catalog.fixpoint_observation(key)
                if observation is not None:
                    return observation.table
        return None

    def key_selectivity(self, source: Source, positions: tuple[int, ...]) -> float:
        if not positions:
            return 1.0
        if source.kind == "relation":
            relation = self.db[source.name]
            index = relation.peek_index(positions)
            if index is not None:
                # Measured distincts, blended with the measured bucket
                # skew — the same uniform/heavy-value blend the stats
                # layer applies, so an already-built index and a cold
                # column price consistently (probes favour heavy keys).
                return (index.selectivity() + index.max_bucket_fraction()) / 2.0
            return relation.stats().key_selectivity(positions)
        table = self.source_table(source)
        if table is not None and table.row_count > 0:
            # Per-column selectivity fractions of the observed value
            # transfer to its deltas (same value domain).
            return table.key_selectivity(positions)
        # Unknown distribution: assume sqrt(N) distinct values per column.
        card = self.source_cardinality(source)
        if card <= 1:
            return 1.0
        sel = 1.0
        for _ in positions:
            sel *= 1.0 / max(1.0, card ** 0.5)
        return max(sel, 1.0 / card)

    def restriction_selectivity(
        self, source: Source, restrictions: tuple
    ) -> float:
        """Combined selectivity of single-variable comparison filters.

        ``restrictions`` are ``(pos, op, value)`` triples — range and
        inequality comparisons of one column against a constant, the
        conjuncts that previously ran as *unpriced* filters.  Histograms
        price the range operators; independence is assumed across
        conjuncts.
        """
        if not restrictions:
            return 1.0
        table = self.source_table(source)
        sel = 1.0
        for pos, op, value in restrictions:
            sel *= self._one_restriction(table, source, pos, op, value)
        return min(max(sel, 0.0), 1.0)

    def _one_restriction(self, table, source: Source, pos: int, op: str, value) -> float:
        if op == "=":
            if table is not None:
                return table.eq_selectivity(pos)
            card = self.source_cardinality(source)
            return 1.0 / max(1.0, card ** 0.5)
        fallback = (
            self.DEFAULT_NEQ_SELECTIVITY
            if op == "<>"
            else self.DEFAULT_RANGE_SELECTIVITY
        )
        if not self.use_histograms and op != "<>":
            return fallback
        if table is not None:
            estimated = table.range_selectivity(pos, op, value)
            if estimated is not None:
                return estimated
        return fallback

    # -- residual predicates -------------------------------------------------

    def predicate_selectivity(
        self, pred: ast.Pred, source: Source | None = None, schema=None
    ) -> float:
        """Selectivity of a residual predicate anchored on one binding.

        Memberships and quantifiers used to run as *un-priced* filters;
        this prices the common single-variable forms so the join order
        can exploit a restrictive membership the same way it exploits a
        histogram-priced range filter.  Anything unrecognized stays
        neutral (1.0).
        """
        if isinstance(pred, ast.Not):
            inner = self.predicate_selectivity(pred.pred, source, schema)
            if inner >= 1.0:
                return 1.0  # negation of an un-priced predicate stays neutral
            return min(max(1.0 - inner, 0.01), 1.0)
        if isinstance(pred, ast.InRel):
            return self._membership_selectivity(pred, source, schema)
        if isinstance(pred, (ast.Some, ast.All)):
            # Existential: one of n range elements matching suffices, so
            # big ranges are barely selective; universal: every element
            # must match, so big ranges are very selective.  The
            # per-element match probability is the System-R constant.
            n = min(self.range_cardinality(pred.range), 64.0)
            p = self.QUANTIFIER_MATCH
            if isinstance(pred, ast.Some):
                return min(max(1.0 - (1.0 - p) ** n, 0.05), 0.95)
            return min(max(p ** n, 0.01), 0.95)
        return 1.0

    def _membership_selectivity(
        self, pred: ast.InRel, source: Source | None, schema
    ) -> float:
        """``elem IN R``: containment says the matched fraction is the
        distinct values of ``R`` over the distinct values of ``elem``."""
        member_rows = self.range_cardinality(pred.range)
        element = pred.element
        if (
            isinstance(element, ast.AttrRef)
            and source is not None
            and schema is not None
        ):
            table = self.source_table(source)
            if table is not None and table.row_count > 0:
                try:
                    pos = schema.index_of(element.attr)
                except SchemaError:
                    pos = None
                if pos is not None:
                    distinct = table.distinct(pos)
                    if distinct > 0:
                        return min(1.0, member_rows / float(distinct))
        return self.DEFAULT_MEMBERSHIP_SELECTIVITY

    # -- step pricing --------------------------------------------------------

    def price_step(
        self,
        source: Source,
        key_positions: tuple[int, ...],
        restrictions: tuple = (),
        residual_sel: float = 1.0,
    ) -> "StepEstimate":
        """Price one loop step given the key positions usable as an index,
        the single-variable comparison filters that run at the step, and
        the combined selectivity of priced residual predicates anchored
        on the step's variable (memberships, quantifiers)."""
        card = self.source_cardinality(source)
        filter_sel = self.restriction_selectivity(source, restrictions) * residual_sel
        if key_positions:
            matched = card * self.key_selectivity(source, key_positions)
            # Cost-gated access path: an index pays off when a lookup is
            # expected to return strictly fewer rows than a full scan.
            if matched < card:
                return StepEstimate(
                    source_rows=card,
                    out_rows=matched * filter_sel,
                    per_invocation=1.0 + matched,
                    build_cost=card * self.INDEX_BUILD_WEIGHT,
                    use_index=True,
                )
        # A cold store-backed relation scans only the partitions its
        # manifest cannot prune under the step's restrictions; warm
        # relations report fraction 1.0, so pricing is unchanged for
        # every in-memory plan.
        scan_rows = card
        if restrictions and source.kind == "relation":
            scan_rows *= self.db[source.name].scan_cost_fraction(restrictions)
        return StepEstimate(
            source_rows=card,
            out_rows=card * filter_sel,
            per_invocation=max(scan_rows, 1.0),
            build_cost=0.0,
            use_index=False,
        )


@dataclass(frozen=True)
class StepEstimate:
    """The cost model's verdict on one candidate loop step."""

    source_rows: float
    out_rows: float
    per_invocation: float
    build_cost: float
    use_index: bool


# ---------------------------------------------------------------------------
# Terms compiled against an environment of raw rows
# ---------------------------------------------------------------------------


def _compile_value(term: ast.Term, schemas: dict[str, RecordType], params: dict):
    """term -> callable(env: dict[var, row]) -> value, or None if dynamic."""
    if isinstance(term, ast.Const):
        value = term.value
        return lambda env: value
    if isinstance(term, ast.ParamRef):
        name = term.name
        return lambda env: params[name]
    if isinstance(term, ast.AttrRef):
        schema = schemas.get(term.var)
        if schema is None:
            return None
        idx = schema.index_of(term.attr)
        var = term.var
        return lambda env: env[var][idx]
    if isinstance(term, ast.Arith):
        left = _compile_value(term.left, schemas, params)
        right = _compile_value(term.right, schemas, params)
        if left is None or right is None:
            return None
        op = term.op
        if op == "+":
            return lambda env: left(env) + right(env)
        if op == "-":
            return lambda env: left(env) - right(env)
        if op == "*":
            return lambda env: left(env) * right(env)
        if op == "DIV":
            return lambda env: left(env) // right(env)
        if op == "MOD":
            return lambda env: left(env) % right(env)
    if isinstance(term, ast.TupleCons):
        items = [_compile_value(i, schemas, params) for i in term.items]
        if any(i is None for i in items):
            return None
        return lambda env: tuple(fn(env) for fn in items)
    return None


def _term_vars(term: ast.Term) -> set[str]:
    return free_tuple_vars(term)


#: Comparison operators usable as priced single-variable restrictions,
#: mapped to their mirror image (for when the attribute is on the right).
_FLIPPED_OP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "<>": "<>"}


def _restriction_of(conj: ast.Cmp, schemas: dict, params: dict):
    """``(var, pos, op, value)`` when ``conj`` compares one attribute of a
    single binding variable against a constant/parameter expression, or
    None.  These are the conjuncts the cost model prices from histograms
    instead of treating as free filters."""
    if conj.op not in _FLIPPED_OP:
        return None
    for attr_side, other, op in (
        (conj.left, conj.right, conj.op),
        (conj.right, conj.left, _FLIPPED_OP[conj.op]),
    ):
        if (
            isinstance(attr_side, ast.AttrRef)
            and attr_side.var in schemas
            and not _term_vars(other)
        ):
            value_fn = _compile_value(other, schemas, params)
            if value_fn is None:
                continue
            try:
                value = value_fn({})
            except (KeyError, TypeError, ZeroDivisionError):
                continue  # e.g. a parameter not bound at compile time
            pos = schemas[attr_side.var].index_of(attr_side.attr)
            return (attr_side.var, pos, op, value)
    return None


#: Operators a storage reader can evaluate row-wise (equality included —
#: an equality the cost model left on a scan step is a pushable filter).
_SCAN_OPS = frozenset(("=",)) | frozenset(_FLIPPED_OP)
_SCAN_FLIPPED = dict(_FLIPPED_OP, **{"=": "="})


def _scan_restriction_spec(conj: ast.Cmp, schemas: dict, params: dict):
    """``(var, pos, op, spec)`` for a reader-pushable comparison, or None.

    Like :func:`_restriction_of` but *symbolic*: the value side becomes
    ``("const", v)`` when it evaluates now, or ``("param", name)`` for a
    bare parameter slot — prepared plans rebind parameters per execution,
    so the reader must resolve the value at scan time, never here.
    """
    if conj.op not in _SCAN_OPS:
        return None
    for attr_side, other, op in (
        (conj.left, conj.right, conj.op),
        (conj.right, conj.left, _SCAN_FLIPPED[conj.op]),
    ):
        if (
            isinstance(attr_side, ast.AttrRef)
            and attr_side.var in schemas
            and not _term_vars(other)
        ):
            pos = schemas[attr_side.var].index_of(attr_side.attr)
            if isinstance(other, ast.ParamRef):
                return (attr_side.var, pos, op, ("param", other.name))
            value_fn = _compile_value(other, schemas, params)
            if value_fn is None:
                continue
            try:
                value = value_fn({})
            except (KeyError, TypeError, ZeroDivisionError):
                continue
            return (attr_side.var, pos, op, ("const", value))
    return None


def _derive_projection(branch: ast.Branch, var: str, schema) -> tuple | None:
    """Column positions of ``var`` the branch provably reads, or None.

    None means "all columns" — returned on any whole-row use
    (``VarRef``, an implicit whole-tuple emit) and whenever the name is
    rebound anywhere in the branch (quantifier variables, nested query
    bindings): a shadowed name makes attribute attribution ambiguous, so
    the projection stays conservative.  Collecting attributes of *inner*
    same-named variables can only widen the result, never narrow it, so
    a plain AST walk is sound.
    """
    if branch.targets is None and branch.bindings and branch.bindings[0].var == var:
        return None
    used: set[int] = set()
    bindings_seen = 0
    for node in ast.walk(branch):
        if isinstance(node, ast.VarRef) and node.var == var:
            return None
        if isinstance(node, (ast.Some, ast.All)) and var in node.vars:
            return None
        if isinstance(node, ast.Binding) and node.var == var:
            bindings_seen += 1
            if bindings_seen > 1:
                return None
        if isinstance(node, ast.AttrRef) and node.var == var:
            try:
                used.add(schema.index_of(node.attr))
            except SchemaError:
                return None
    if len(used) >= len(schema.attribute_names):
        return None
    return tuple(sorted(used))


# ---------------------------------------------------------------------------
# Branch compilation
# ---------------------------------------------------------------------------


@dataclass
class LoopStep:
    """One level of the loop nest."""

    var: str
    source: Source
    schema: RecordType
    # Index access: attribute positions in this step's rows, paired with
    # value closures over the already-bound environment (and the source
    # terms they were compiled from, for lowering to batch operators).
    key_positions: tuple[int, ...] = ()
    key_values: tuple = ()
    key_terms: tuple = ()
    # Cheap compiled filters evaluated on (env incl. this var), plus the
    # comparison ASTs they came from (recompiled against batch slots).
    filters: tuple = ()
    filter_descs: tuple[str, ...] = ()
    filter_conjs: tuple = ()
    # Residual predicates anchored on this variable alone (memberships,
    # quantifiers): checked through the evaluator as soon as the
    # variable binds, so the priced selectivity matches where the
    # filtering actually happens.
    residual_preds: tuple = ()
    residual_descs: tuple[str, ...] = ()
    # Cost-model estimates, recorded for explain().
    est_source_rows: float | None = None
    est_out_rows: float | None = None
    est_cumulative: float | None = None
    # Priced selectivity of this step's single-variable comparison
    # filters — the columnar lowering's G2 gate (probe pushdown) reads it.
    est_filter_sel: float | None = None
    #: Storage pushdown for scan access paths (a ScanPushdown, or None):
    #: the projection/selection a cold store-backed relation's partition
    #: reader may apply so only live columns of matching partitions are
    #: ever decoded.  Advisory — warm relations ignore it.
    pushdown: object | None = None

    def describe(self) -> str:
        access = "scan"
        if self.key_positions:
            access = f"index{list(self.key_positions)}"
        filters = f" filter[{', '.join(self.filter_descs)}]" if self.filters else ""
        residual = (
            f" residual[{', '.join(self.residual_descs)}]"
            if self.residual_preds
            else ""
        )
        pushed = ""
        if self.pushdown is not None and not self.key_positions:
            pushed = f" pushdown[{self.pushdown.describe()}]"
        return (
            f"EACH {self.var} IN {self.source.describe()} via "
            f"{access}{filters}{residual}{pushed}"
        )


@dataclass
class BranchPlan:
    steps: list[LoopStep]
    residual: ast.Pred
    target_fn: object
    target_desc: str
    schemas: dict[str, RecordType]
    optimizer: str = DEFAULT_OPTIMIZER
    est_cost: float | None = None
    est_out: float | None = None
    #: Inputs for lazy lowering (the pushdown gate compiles plans purely
    #: to price them, so operator codegen is deferred to first use).
    target_terms: tuple | None = None
    params: dict = field(default_factory=dict)
    #: The lowered columnar physical-operator pipeline: _PENDING until
    #: first use, then a BranchPipeline, or None when some term could not
    #: be generated (the row-major pipeline, then the tuple interpreter,
    #: are the fallbacks).
    pipeline: object | None = None
    #: The row-major batched pipeline of PR 3, kept as benchmark E17's
    #: measurement baseline (``executor="rowbatch"``).
    row_pipeline: object | None = None
    #: The dictionary-encoded vector pipeline (``executor="vector"``):
    #: _PENDING until first use, then a BranchPipeline, or None when the
    #: branch shape is outside the vector coverage rules (the columnar
    #: pipeline is the fallback).
    vector_pipeline: object | None = None
    # Actual per-step binding counts, accumulated over every execution of
    # this plan; explain() divides by `executions` so the reported actuals
    # stay commensurable with the per-execution estimates.
    actual_rows: list[int] = field(default_factory=list)
    actual_emitted: int = 0
    executions: int = 0
    #: Filled by the sharded backend: per-shard produced counts and the
    #: dedup-aware merged count (see repro.compiler.sharded.ShardReport).
    shards: object | None = None

    def ensure_pipeline(self):
        """Lower to the columnar pipeline on first use (None on failure)."""
        if self.pipeline is _PENDING:
            self.pipeline = lower_branch_columnar(
                self.steps,
                self.residual,
                self.schemas,
                self.target_terms,
                self.target_desc,
                self.params,
                est_out=self.est_out,
            )
        return self.pipeline

    def ensure_row_pipeline(self):
        """Lower to the row-major pipeline on first use (None on failure)."""
        if self.row_pipeline is _PENDING:
            self.row_pipeline = lower_branch(
                self.steps,
                self.residual,
                self.schemas,
                self.target_terms,
                self.target_desc,
                self.params,
                est_out=self.est_out,
            )
        return self.row_pipeline

    def ensure_vector_pipeline(self):
        """Lower to the vector pipeline on first use (None on failure)."""
        if self.vector_pipeline is _PENDING:
            self.vector_pipeline = lower_branch_vector(
                self.steps,
                self.residual,
                self.schemas,
                self.target_terms,
                self.target_desc,
                self.params,
                est_out=self.est_out,
            )
        return self.vector_pipeline

    def execute(
        self, ctx: ExecutionContext, out: set, executor: str | None = None
    ) -> None:
        """Run this branch, adding result tuples to ``out``."""
        executor = DEFAULT_EXECUTOR if executor is None else executor
        get_backend(executor).execute_branch(self, ctx, out)

    def execute_batch(self, ctx: ExecutionContext, pipeline=None) -> list:
        """Run a lowered operator pipeline, returning the projected batch
        (duplicates included — the caller's Dedup/union eliminates them,
        exactly as the tuple interpreter's ``out.add`` does)."""
        if pipeline is None:
            pipeline = self.pipeline
        if len(self.actual_rows) != len(self.steps):
            self.actual_rows = [0] * len(self.steps)
        self.executions += 1
        actual = self.actual_rows
        batch = (1, []) if pipeline.columnar else [()]
        for i, ops in enumerate(pipeline.step_ops):
            for op in ops:
                op.executions += 1
                batch = op.run(ctx, batch)
                op.actual_rows += _batch_len(batch)
            actual[i] += _batch_len(batch)
        for op in pipeline.tail_ops:
            op.executions += 1
            batch = op.run(ctx, batch)
            op.actual_rows += _batch_len(batch)
        if pipeline.fused:
            # The fused final operator emitted the projection itself.
            ctx.stats.tuples_emitted += len(batch)
        self.actual_emitted += len(batch)
        return batch

    def execute_tuple(self, ctx: ExecutionContext, out: set) -> None:
        """The original tuple-at-a-time interpreted loop nest."""
        stats = ctx.stats
        residual = self.residual
        has_residual = not isinstance(residual, ast.TruePred)
        schemas = self.schemas
        evaluator = ctx.evaluator
        if len(self.actual_rows) != len(self.steps):
            self.actual_rows = [0] * len(self.steps)
        self.executions += 1
        actual = self.actual_rows

        def run(depth: int, env: dict) -> None:
            if depth == len(self.steps):
                if has_residual:
                    stats.residual_checks += 1
                    stats.residual_evals += 1
                    rich_env = {
                        v: (row, schemas[v]) for v, row in env.items()
                    }
                    if not evaluator.eval_pred(residual, rich_env):
                        return
                out.add(self.target_fn(env))
                stats.tuples_emitted += 1
                self.actual_emitted += 1
                return
            step = self.steps[depth]
            if step.key_positions:
                _rows, index_provider = step.source.rows_and_indexable(ctx)
                key = tuple(fn(env) for fn in step.key_values)
                index = index_provider(step.key_positions)
                candidates = index.lookup(key)
                stats.index_lookups += 1
            else:
                candidates = step.source.scan_rows(ctx, step.pushdown)
            var = step.var
            step_residuals = step.residual_preds
            for row in candidates:
                stats.rows_scanned += 1
                ok = True
                env[var] = row
                for flt in step.filters:
                    if not flt(env):
                        ok = False
                        break
                if ok and step_residuals:
                    stats.residual_checks += 1
                    stats.residual_evals += 1
                    rich_env = {v: (r, schemas[v]) for v, r in env.items()}
                    for pred in step_residuals:
                        if not evaluator.eval_pred(pred, rich_env):
                            ok = False
                            break
                if ok:
                    actual[depth] += 1
                    run(depth + 1, env)
            env.pop(var, None)

        run(0, {})

    def explain(self, indent: str = "") -> str:
        # Estimates model ONE execution; actuals are accumulated across
        # all executions (e.g. fixpoint iterations), so report the
        # per-execution average next to the estimate.
        lines = []
        have_actuals = self.executions > 0 and len(self.actual_rows) == len(self.steps)

        def per_run(total: int) -> str:
            return f"{total / self.executions:.1f}" if have_actuals else "-"

        for i, step in enumerate(self.steps):
            suffix = ""
            if step.est_cumulative is not None:
                act = per_run(self.actual_rows[i]) if have_actuals else "-"
                suffix = f"  [est={step.est_cumulative:.1f} act={act}]"
            lines.append(f"{indent}{step.describe()}{suffix}")
        if not isinstance(self.residual, ast.TruePred):
            from ..calculus.pretty import render_pred

            lines.append(f"{indent}RESIDUAL {render_pred(self.residual)}")
        emit = f"{indent}EMIT {self.target_desc}"
        if self.est_out is not None:
            emit += f"  [est={self.est_out:.1f} act={per_run(self.actual_emitted)}]"
        lines.append(emit)
        if self.shards is not None and self.shards.executions:
            lines.append(f"{indent}{self.shards.explain_line()}")
        if self.ensure_pipeline() is not None:
            lines.append(f"{indent}operators:")
            lines.append(self.pipeline.explain(indent + "  "))
        return "\n".join(lines)


@dataclass
class QueryPlan:
    """Union of branch plans with duplicate elimination (set semantics)."""

    branches: list[BranchPlan]
    optimizer: str = DEFAULT_OPTIMIZER
    executor: str = DEFAULT_EXECUTOR
    #: The union's duplicate-elimination operator (batched path); its
    #: actual count is the number of distinct tuples the plan added.
    dedup: Dedup = field(default_factory=Dedup)

    def execute(
        self, ctx: ExecutionContext, executor: str | None = None
    ) -> set[tuple]:
        executor = self.executor if executor is None else executor
        backend = get_backend(executor)
        out: set[tuple] = set()
        for branch in self.branches:
            backend.execute_branch(branch, ctx, out, dedup=self.dedup)
        return out

    @property
    def est_cost(self) -> float:
        return sum(b.est_cost or 0.0 for b in self.branches)

    def explain(self) -> str:
        parts = [f"PLAN [optimizer={self.optimizer} executor={self.executor}]"]
        for i, branch in enumerate(self.branches):
            parts.append(f"BRANCH {i}:")
            parts.append(branch.explain(indent="  "))
        if self.dedup.executions:
            parts.append(self.dedup.explain_line())
        return "\n".join(parts)


def _static_schema_of(db: Database, rexpr: ast.RangeExpr, params: dict) -> RecordType:
    evaluator = Evaluator(db, params)
    return evaluator.infer_schema(rexpr, {})


# ---------------------------------------------------------------------------
# Join ordering
# ---------------------------------------------------------------------------


def _available_keys(
    var: str,
    bound: frozenset,
    equalities: list[tuple[int, str, int, ast.Term]],
) -> list[tuple[int, int, ast.Term]]:
    """Equality entries (group, pos, other) usable as index keys for
    ``var`` once ``bound`` variables are in scope — one per group."""
    keys: list[tuple[int, int, ast.Term]] = []
    seen_groups: set[int] = set()
    for group, v, pos, other in equalities:
        if v != var or group in seen_groups:
            continue
        if _term_vars(other) <= bound:
            seen_groups.add(group)
            keys.append((group, pos, other))
    return keys


def _delta_rank(source: Source) -> int:
    """Tiebreak preference: deltas first, then other fixpoint variables."""
    if source.kind != "apply":
        return 2
    return 0 if _is_delta_token(source.token) else 1


def _order_cost_based(
    binding_vars: list[str],
    sources: dict[str, Source],
    equalities: list[tuple[int, str, int, ast.Term]],
    cost_model: CostModel,
    restrictions: dict[str, tuple] | None = None,
    residual_sels: dict[str, float] | None = None,
) -> list[str]:
    """Pick the loop-nest order minimizing estimated cost.

    Exact subset DP (Selinger) up to :data:`DP_LIMIT` bindings; greedy
    cheapest-next-step beyond that.  Ties prefer delta-driven orders and
    then the syntactic order, keeping plans deterministic.  Per-variable
    ``restrictions`` (histogram-priced range/inequality filters) and
    ``residual_sels`` (priced memberships/quantifiers) shrink a step's
    output cardinality, which is what lets a restricted scan of a big
    table win the outer position.
    """
    position = {v: i for i, v in enumerate(binding_vars)}
    restrictions = restrictions or {}
    residual_sels = residual_sels or {}

    def transition(var: str, bound: frozenset) -> StepEstimate:
        keys = _available_keys(var, bound, equalities)
        return cost_model.price_step(
            sources[var],
            tuple(pos for (_g, pos, _o) in keys),
            restrictions.get(var, ()),
            residual_sels.get(var, 1.0),
        )

    def tiebreak(order: tuple[str, ...]) -> tuple:
        return tuple((_delta_rank(sources[v]), position[v]) for v in order)

    n = len(binding_vars)
    if n <= 1:
        return list(binding_vars)

    if n <= DP_LIMIT:
        # best[subset] = (cost, out_card, order)
        best: dict[frozenset, tuple[float, float, tuple[str, ...]]] = {
            frozenset(): (0.0, 1.0, ())
        }
        for size in range(1, n + 1):
            for combo in combinations(binding_vars, size):
                subset = frozenset(combo)
                champion = None
                for var in combo:
                    prev = subset - {var}
                    prev_cost, prev_card, prev_order = best[prev]
                    est = transition(var, prev)
                    cost = prev_cost + est.build_cost + prev_card * est.per_invocation
                    card = prev_card * est.out_rows
                    order = prev_order + (var,)
                    candidate = (cost, card, order)
                    if champion is None or (
                        cost,
                        card,
                        tiebreak(order),
                    ) < (champion[0], champion[1], tiebreak(champion[2])):
                        champion = candidate
                best[subset] = champion
        return list(best[frozenset(binding_vars)][2])

    # Greedy: repeatedly take the cheapest next step.
    ordered: list[str] = []
    remaining = list(binding_vars)
    card = 1.0
    while remaining:
        bound = frozenset(ordered)
        best_var = None
        best_key = None
        for var in remaining:
            est = transition(var, bound)
            key = (
                est.build_cost + card * est.per_invocation,
                card * est.out_rows,
                _delta_rank(sources[var]),
                position[var],
            )
            if best_key is None or key < best_key:
                best_var, best_key = var, key
        est = transition(best_var, bound)
        card *= est.out_rows
        ordered.append(best_var)
        remaining.remove(best_var)
    return ordered


def _order_greedy_keycount(
    binding_vars: list[str],
    sources: dict[str, Source],
    equalities: list[tuple[int, str, int, ast.Term]],
) -> list[str]:
    """The legacy ordering: most available equality keys first; ties
    prefer fixpoint-variable (delta) sources."""
    ordered: list[str] = []
    remaining = list(binding_vars)
    while remaining:
        best = None
        best_score = (-1, False)
        for var in remaining:
            keys = _available_keys(var, frozenset(ordered), equalities)
            is_apply = sources[var].kind == "apply"
            score = (len(keys), is_apply)
            if best is None or score > best_score:
                best, best_score = var, score
        ordered.append(best)
        remaining.remove(best)
    return ordered


def compile_branch(
    db: Database,
    branch: ast.Branch,
    params: dict | None = None,
    optimizer: str = DEFAULT_OPTIMIZER,
    cost_model: CostModel | None = None,
) -> BranchPlan:
    params = params or {}
    if cost_model is None:
        cost_model = CostModel(db)
    schemas: dict[str, RecordType] = {}
    sources: dict[str, Source] = {}
    for binding in branch.bindings:
        schema = _static_schema_of(db, binding.range, params)
        schemas[binding.var] = schema
        source = _source_for(db, binding.range, params)
        source.schema = schema
        sources[binding.var] = source

    binding_vars = [b.var for b in branch.bindings]
    # Split conjuncts into: equalities usable for index access, cheap
    # compiled filters, and residual predicates.  Attribute-to-attribute
    # equalities are recorded in both orientations under one group id, so
    # whichever side gets bound later can serve as the index key.
    equalities: list[tuple[int, str, int, ast.Term]] = []  # (group, var, pos, other)
    cheap: list[tuple[set[str], object, str, ast.Cmp]] = []
    residual: list[ast.Pred] = []
    # var -> ((pos, op, value), ...): priced single-variable comparisons.
    restrictions: dict[str, tuple] = {}
    from ..calculus.pretty import render_pred

    for group, conj in enumerate(conjuncts(branch.pred)):
        handled = False
        if isinstance(conj, ast.Cmp) and conj.op == "=":
            for left, right in ((conj.left, conj.right), (conj.right, conj.left)):
                if (
                    isinstance(left, ast.AttrRef)
                    and left.var in schemas
                    and not (_term_vars(right) - set(binding_vars))
                ):
                    pos = schemas[left.var].index_of(left.attr)
                    equalities.append((group, left.var, pos, right))
                    handled = True
        if handled:
            continue
        vars_needed = _term_vars(conj)
        if vars_needed <= set(binding_vars) and isinstance(conj, ast.Cmp):
            fn = _compile_cmp(conj, schemas, params)
            if fn is not None:
                cheap.append((vars_needed, fn, render_pred(conj), conj))
                restriction = _restriction_of(conj, schemas, params)
                if restriction is not None:
                    var, pos, op, value = restriction
                    restrictions[var] = restrictions.get(var, ()) + ((pos, op, value),)
                continue
        residual.append(conj)

    # Residual predicates anchored on exactly one binding variable
    # (memberships, quantifiers) are pulled out of the leaf residual:
    # they run — evaluator-checked — at the step where their variable
    # binds, and the cost model prices their selectivity into that step,
    # so the join order can exploit them and the estimates describe
    # where the filtering actually happens.
    anchored_residuals: dict[str, list] = {}
    leftover: list[ast.Pred] = []
    for conj in residual:
        vars_needed = _term_vars(conj)
        if len(vars_needed) == 1 and next(iter(vars_needed)) in binding_vars:
            anchored_residuals.setdefault(next(iter(vars_needed)), []).append(conj)
        else:
            leftover.append(conj)
    residual = leftover
    residual_sels: dict[str, float] = {}
    for var, conjs in anchored_residuals.items():
        for conj in conjs:
            sel = cost_model.predicate_selectivity(conj, sources[var], schemas[var])
            if sel < 1.0:
                residual_sels[var] = residual_sels.get(var, 1.0) * sel

    # Pick the loop-nest order.
    if optimizer == "syntactic":
        ordered = list(binding_vars)
    elif optimizer == "greedy":
        ordered = _order_greedy_keycount(binding_vars, sources, equalities)
    elif optimizer == "cost":
        ordered = _order_cost_based(
            binding_vars, sources, equalities, cost_model, restrictions,
            residual_sels,
        )
    else:
        raise ValueError(
            f"unknown optimizer {optimizer!r}; expected 'cost', 'greedy', "
            f"or 'syntactic'"
        )

    # Reader-pushable specs per variable: every single-variable comparison
    # against a constant/parameter expression, kept symbolic so prepared
    # plans resolve parameter slots at scan time.  Collected over the raw
    # conjuncts independently of how access paths consume them — pushdown
    # is a pre-filter the compiled filters re-check.
    scan_specs: dict[str, tuple] = {}
    for conj in conjuncts(branch.pred):
        if isinstance(conj, ast.Cmp):
            spec = _scan_restriction_spec(conj, schemas, params)
            if spec is not None:
                spec_var, pos, op, payload = spec
                scan_specs[spec_var] = scan_specs.get(spec_var, ()) + (
                    (pos, op, payload),
                )

    steps: list[LoopStep] = []
    consumed: set[int] = set()  # consumed group ids
    est_cost = 0.0
    est_card = 1.0
    for var in ordered:
        bound_before = frozenset(ordered[: ordered.index(var)])
        available = _available_keys(var, bound_before, equalities)
        var_restrictions = restrictions.get(var, ())
        # The cost model gates the access path: keys are consumed as an
        # index only when the estimated lookup beats a scan (in the
        # legacy modes keys are always consumed, as before).
        var_residual_sel = residual_sels.get(var, 1.0)
        estimate = cost_model.price_step(
            sources[var],
            tuple(pos for (_g, pos, _o) in available),
            var_restrictions,
            var_residual_sel,
        )
        use_keys = estimate.use_index or optimizer in ("greedy", "syntactic")
        key_positions: list[int] = []
        key_values: list = []
        key_terms: list = []
        step_filters: list = []
        step_descs: list[str] = []
        step_conjs: list = []
        if use_keys:
            for group, pos, other in available:
                value_fn = _compile_value(other, schemas, params)
                if value_fn is not None:
                    key_positions.append(pos)
                    key_values.append(value_fn)
                    key_terms.append(other)
                    consumed.add(group)
        # cheap filters whose variables are all bound once var is bound
        for needed, fn, desc, conj in cheap:
            if var in needed and needed <= bound_before | {var}:
                step_filters.append(fn)
                step_descs.append(desc)
                step_conjs.append(conj)
        final = cost_model.price_step(
            sources[var], tuple(key_positions), var_restrictions, var_residual_sel
        )
        est_cost += final.build_cost + est_card * final.per_invocation
        est_card *= final.out_rows
        step_residuals = tuple(anchored_residuals.get(var, ()))
        step_pushdown = None
        if sources[var].kind == "relation":
            projection = _derive_projection(branch, var, schemas[var])
            selection = scan_specs.get(var, ())
            if projection is not None or selection:
                step_pushdown = ScanPushdown(projection, selection)
        steps.append(
            LoopStep(
                var=var,
                source=sources[var],
                schema=schemas[var],
                key_positions=tuple(key_positions),
                key_values=tuple(key_values),
                key_terms=tuple(key_terms),
                filters=tuple(step_filters),
                filter_descs=tuple(step_descs),
                filter_conjs=tuple(step_conjs),
                residual_preds=step_residuals,
                residual_descs=tuple(render_pred(p) for p in step_residuals),
                est_source_rows=final.source_rows,
                est_out_rows=final.out_rows,
                est_cumulative=est_card,
                est_filter_sel=cost_model.restriction_selectivity(
                    sources[var], var_restrictions
                ),
                pushdown=step_pushdown,
            )
        )

    # Equalities not consumed as keys become cheap filters at the first step
    # where both sides are bound.  Only one orientation per group is placed.
    placed_groups: set[int] = set()
    for group, v, pos, other in equalities:
        if group in consumed or group in placed_groups:
            continue
        placed_groups.add(group)
        left = ast.AttrRef(v, schemas[v].attribute_names[pos])
        fn = _compile_cmp(ast.Cmp("=", left, other), schemas, params)
        if fn is None:
            residual.append(ast.Cmp("=", left, other))
            continue
        needed = {v} | _term_vars(other)
        placed = False
        # place at the first step where all needed variables are bound
        for i, step in enumerate(steps):
            bound = {s.var for s in steps[: i + 1]}
            if needed <= bound:
                step.filters = step.filters + (fn,)
                step.filter_descs = step.filter_descs + (f"{v}[{pos}] = ...",)
                step.filter_conjs = step.filter_conjs + (ast.Cmp("=", left, other),)
                placed = True
                break
        if not placed:
            residual.append(ast.Cmp("=", left, other))

    # Targets
    if branch.targets is None:
        var = branch.bindings[0].var
        target_fn = lambda env: env[var]
        target_desc = var
    else:
        extractors = [_compile_value(t, schemas, params) for t in branch.targets]
        if any(e is None for e in extractors):
            raise EvaluationError("untranslatable target term in branch")
        target_fn = lambda env: tuple(fn(env) for fn in extractors)
        from ..calculus.pretty import render_term

        target_desc = "<" + ", ".join(render_term(t) for t in branch.targets) + ">"

    # The operator pipeline is lowered lazily (first execute/explain):
    # the pushdown gate compiles branches purely to price them, and
    # those plans should not pay for operator code generation.
    return BranchPlan(
        steps=steps,
        residual=conjoin(tuple(residual)),
        target_fn=target_fn,
        target_desc=target_desc,
        schemas=schemas,
        optimizer=optimizer,
        est_cost=est_cost,
        est_out=est_card,
        target_terms=branch.targets,
        params=params,
        pipeline=_PENDING,
        row_pipeline=_PENDING,
        vector_pipeline=_PENDING,
    )


def _compile_cmp(conj: ast.Cmp, schemas, params):
    left = _compile_value(conj.left, schemas, params)
    right = _compile_value(conj.right, schemas, params)
    if left is None or right is None:
        return None
    op = conj.op
    if op == "=":
        return lambda env: left(env) == right(env)
    if op == "<>":
        return lambda env: left(env) != right(env)
    if op == "<":
        return lambda env: left(env) < right(env)
    if op == "<=":
        return lambda env: left(env) <= right(env)
    if op == ">":
        return lambda env: left(env) > right(env)
    if op == ">=":
        return lambda env: left(env) >= right(env)
    return None


def estimate_branch(
    db: Database,
    branch: ast.Branch,
    params: dict | None = None,
    cost_model: CostModel | None = None,
) -> tuple[float, float]:
    """(estimated cost, estimated output rows) of one branch.

    Used by the pushdown gate to compare rewrites without executing
    anything; estimation failures degrade to pessimistic defaults rather
    than raising.
    """
    try:
        plan = compile_branch(db, branch, params, cost_model=cost_model)
    except DBPLError:
        return (float("inf"), CostModel.DEFAULT_COMPUTED_ROWS)
    return (plan.est_cost or 0.0, plan.est_out or 0.0)


def estimate_query(
    db: Database,
    query: ast.Query,
    params: dict | None = None,
    cost_model: CostModel | None = None,
) -> tuple[float, float]:
    """(estimated cost, estimated output rows) of a whole query."""
    total_cost = 0.0
    total_rows = 0.0
    for branch in query.branches:
        cost, rows = estimate_branch(db, branch, params, cost_model)
        total_cost += cost
        total_rows += rows
    return (total_cost, total_rows)


def compile_query(
    db: Database,
    query: ast.Query,
    params: dict | None = None,
    optimizer: str = _UNSET,
    cost_model: CostModel | None = None,
    executor: str = _UNSET,
    *,
    options: ExecOptions | None = None,
) -> QueryPlan:
    """Compile every branch of a query into an executable plan.

    Execution knobs arrive on ``options`` (an
    :class:`~repro.compiler.options.ExecOptions`); the loose
    ``optimizer=``/``executor=`` keywords still work through the shared
    deprecation adapter.  ``cost_model`` stays a separate argument — it
    is compiler plumbing (estimate reuse across related compilations),
    not a client-facing knob.
    """
    options = resolve_options(
        options, "compile_query", optimizer=optimizer, executor=executor
    )
    if cost_model is None:
        cost_model = CostModel(db)
    optimizer = options.resolved_optimizer
    return QueryPlan(
        [
            compile_branch(db, branch, params, optimizer, cost_model)
            for branch in query.branches
        ],
        optimizer=optimizer,
        executor=options.resolved_executor,
    )


def run_query(
    db: Database,
    query: ast.Query,
    params: dict | None = None,
    apply_values: dict | None = None,
    stats: PlanStats | None = None,
    optimizer: str = _UNSET,
    cost_model: CostModel | None = None,
    executor: str = _UNSET,
    *,
    options: ExecOptions | None = None,
) -> set[tuple]:
    """Compile and execute a query in one call."""
    options = resolve_options(
        options, "run_query", optimizer=optimizer, executor=executor
    )
    plan = compile_query(db, query, params, cost_model=cost_model, options=options)
    ctx = ExecutionContext(db, params, apply_values, stats)
    if options.shard_config is not None:
        ctx.shard_config = options.shard_config
    return plan.execute(ctx)
