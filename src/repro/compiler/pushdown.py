"""Constraint propagation into constructor definitions (section 4, Cases 1-3).

"Propagating the constraints given by pred(r) into the constructor
definition may considerably reduce query evaluation costs."  For
applications of **non-recursive** constructors this module performs the
paper's case analysis at the AST level:

* **Case 1 (Selector)** — a single relational expression with a single
  free variable: rules N1-N3 apply directly (with a projection on the
  target attributes); the application inlines to a restricted range.
* **Case 2 (Join)** — a single expression, several variables: occurrences
  of ``r.f`` in the query predicate are substituted by the target term in
  position ``f`` of the constructor's target list.
* **Case 3 (Union)** — the definition is a union: each branch is treated
  separately and the result is the union of the branch values, valid
  because the restriction predicate is conjoined per branch (positivity
  of the outer predicate in the constructed range is required; the
  caller's predicate applies to the emitted tuple either way since we
  substitute into every branch).

Recursive applications are left in place — they are the business of the
fixpoint generators and of :mod:`repro.compiler.specialize`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..calculus import ast
from ..calculus.rewrite import conjoin, simplify
from ..calculus.subst import FreshNames, bound_vars, substitute_params, substitute_ranges
from ..errors import EvaluationError
from ..relational import Database


def _resolve_constructor_body(db: Database, node: ast.Constructed) -> ast.Query | None:
    """The constructor's body with formals substituted, or None when the
    constructor is recursive (contains any application)."""
    constructor = db.constructor(node.constructor)
    if constructor.is_recursive():
        return None
    range_map: dict[str, ast.RangeExpr] = {constructor.formal_rel: node.base}
    scalar_map: dict[str, ast.Term] = {}
    for formal, actual in zip(constructor.params, node.args):
        if formal.is_relation:
            range_map[formal.name] = actual  # type: ignore[assignment]
        else:
            scalar_map[formal.name] = actual  # type: ignore[assignment]
    body = substitute_ranges(constructor.body, range_map)
    body = substitute_params(body, scalar_map)
    return body  # type: ignore[return-value]


def _attr_substitution(
    db: Database,
    node: ast.Constructed,
    body_branch: ast.Branch,
    var: str,
) -> dict[tuple[str, str], ast.Term]:
    """Map (var, result-attribute) -> replacement term for one body branch.

    This is the paper's Case 2 substitution: ``r.f`` is replaced by the
    term in position ``f`` of the constructor's target list.
    """
    constructor = db.constructor(node.constructor)
    result_attrs = constructor.result_type.element.attribute_names
    mapping: dict[tuple[str, str], ast.Term] = {}
    if body_branch.targets is None:
        inner_var = body_branch.bindings[0].var
        from ..calculus.evaluator import Evaluator

        schema = Evaluator(db).infer_schema(body_branch.bindings[0].range, {})
        for attr, inner_attr in zip(result_attrs, schema.attribute_names):
            mapping[(var, attr)] = ast.AttrRef(inner_var, inner_attr)
    else:
        for attr, target in zip(result_attrs, body_branch.targets):
            mapping[(var, attr)] = target
    return mapping


def _substitute_attrs(pred: ast.Pred, mapping: dict[tuple[str, str], ast.Term]) -> ast.Pred:
    from ..calculus.subst import transform

    def rule(n: ast.Node) -> ast.Node | None:
        if isinstance(n, ast.AttrRef) and (n.var, n.attr) in mapping:
            return mapping[(n.var, n.attr)]
        return None

    return transform(pred, rule)  # type: ignore[return-value]


def inline_branch(
    db: Database, branch: ast.Branch, binding_index: int
) -> list[ast.Branch] | None:
    """Inline one non-recursive constructed binding of ``branch``.

    Returns the replacement branches (one per constructor-body branch —
    Case 3), or None when the binding is not an inlinable application.
    """
    binding = branch.bindings[binding_index]
    if not isinstance(binding.range, ast.Constructed):
        return None
    body = _resolve_constructor_body(db, binding.range)
    if body is None:
        return None

    out: list[ast.Branch] = []
    fresh = FreshNames(bound_vars(branch) | bound_vars(body))
    for body_branch in body.branches:
        # Standardize the body branch apart from the outer branch.
        renamed = fresh.freshen_all(body_branch)
        mapping = _attr_substitution(db, binding.range, renamed, binding.var)
        new_pred = _substitute_attrs(branch.pred, mapping)
        new_targets = None
        if branch.targets is not None:
            new_targets = tuple(
                _substitute_attrs_term(t, mapping) for t in branch.targets
            )
        new_bindings = (
            branch.bindings[:binding_index]
            + renamed.bindings
            + branch.bindings[binding_index + 1 :]
        )
        combined = simplify(conjoin((renamed.pred, new_pred)))
        if branch.targets is None:
            # Identity over the application: the output tuple is whatever
            # the body branch emits (its own identity or target list).
            out.append(ast.Branch(new_bindings, combined, renamed.targets))
        else:
            out.append(ast.Branch(new_bindings, combined, new_targets))
    return out


def _substitute_attrs_term(term: ast.Term, mapping) -> ast.Term:
    from ..calculus.subst import transform

    def rule(n: ast.Node) -> ast.Node | None:
        if isinstance(n, ast.AttrRef) and (n.var, n.attr) in mapping:
            return mapping[(n.var, n.attr)]
        return None

    return transform(term, rule)  # type: ignore[return-value]


@dataclass
class PushdownDecision:
    """One cost-gated inlining decision, kept for explain()."""

    application: str
    est_inline_cost: float
    est_materialize_cost: float
    inlined: bool

    def describe(self) -> str:
        verdict = "inline" if self.inlined else "materialize"
        return (
            f"{self.application}: {verdict} "
            f"(inline~{self.est_inline_cost:.1f} vs "
            f"materialize~{self.est_materialize_cost:.1f})"
        )


#: Inlining is accepted up to this cost ratio over materialization; the
#: slack stops estimate noise from blocking the (usually better) rewrite.
INLINE_MARGIN = 1.1


def cost_gated_inline(
    db: Database,
    query: ast.Query,
    cost_model=None,
    always_inline: bool = False,
) -> tuple[ast.Query, list[PushdownDecision]]:
    """Inline non-recursive applications when the cost model approves.

    For every candidate application the estimated cost of the inlined
    (constraint-propagated) branches is compared against materializing
    the constructor's full value and filtering afterwards; the cheaper
    side wins.  Returns the rewritten query plus the decision log.
    With ``always_inline=True`` the gate is bypassed (and no estimation
    is performed): every inlinable application is inlined.

    Estimates flow through the shared :class:`~.plans.CostModel`, so a
    pushed-down *range* restriction is priced from the base column's
    equi-depth histogram exactly as it would be in the final plan — a
    selective range pushdown now wins the gate on its measured
    selectivity rather than on a blind constant.
    """
    from .plans import CostModel, estimate_branch, estimate_query

    if cost_model is None and not always_inline:
        cost_model = CostModel(db)
    decisions: list[PushdownDecision] = []
    rejected: set[ast.Constructed] = set()
    # The constructor-body estimate only depends on the application node,
    # not the referencing branch: memoize it across branches and passes.
    body_costs: dict[ast.Constructed, float] = {}

    changed = True
    branches = list(query.branches)
    guard = 0
    while changed:
        changed = False
        guard += 1
        if guard > 100:
            raise EvaluationError("constructor inlining did not terminate")
        next_branches: list[ast.Branch] = []
        for branch in branches:
            replaced = None
            for i, binding in enumerate(branch.bindings):
                if (
                    not isinstance(binding.range, ast.Constructed)
                    or binding.range in rejected
                ):
                    continue
                candidate = inline_branch(db, branch, i)
                if candidate is None:
                    continue
                if always_inline:
                    replaced = candidate
                    break
                if binding.range not in body_costs:
                    body = _resolve_constructor_body(db, binding.range)
                    body_costs[binding.range] = estimate_query(
                        db, body, cost_model=cost_model
                    )[0]
                materialize_cost = (
                    body_costs[binding.range]
                    + estimate_branch(db, branch, cost_model=cost_model)[0]
                )
                inline_cost = sum(
                    estimate_branch(db, b, cost_model=cost_model)[0]
                    for b in candidate
                )
                from ..calculus.pretty import render_range

                decision = PushdownDecision(
                    application=render_range(binding.range),
                    est_inline_cost=inline_cost,
                    est_materialize_cost=materialize_cost,
                    inlined=inline_cost <= materialize_cost * INLINE_MARGIN,
                )
                decisions.append(decision)
                if decision.inlined:
                    replaced = candidate
                    break
                rejected.add(binding.range)
            if replaced is None:
                next_branches.append(branch)
            else:
                next_branches.extend(replaced)
                changed = True
        branches = next_branches
    return ast.Query(tuple(branches)), decisions


def inline_nonrecursive(db: Database, query: ast.Query) -> ast.Query:
    """Exhaustively inline non-recursive constructor applications.

    The resulting query ranges only over base relations, selected
    relations, and *recursive* applications — exactly the normal form the
    paper's query compilation level hands to plan generation.  This
    entry point is unconditional; the cost-gated variant used by
    :func:`~repro.compiler.levels.compile_statement` is
    :func:`cost_gated_inline`.
    """
    rewritten, _decisions = cost_gated_inline(db, query, always_inline=True)
    return rewritten
