"""Constraint propagation into constructor definitions (section 4, Cases 1-3).

"Propagating the constraints given by pred(r) into the constructor
definition may considerably reduce query evaluation costs."  For
applications of **non-recursive** constructors this module performs the
paper's case analysis at the AST level:

* **Case 1 (Selector)** — a single relational expression with a single
  free variable: rules N1-N3 apply directly (with a projection on the
  target attributes); the application inlines to a restricted range.
* **Case 2 (Join)** — a single expression, several variables: occurrences
  of ``r.f`` in the query predicate are substituted by the target term in
  position ``f`` of the constructor's target list.
* **Case 3 (Union)** — the definition is a union: each branch is treated
  separately and the result is the union of the branch values, valid
  because the restriction predicate is conjoined per branch (positivity
  of the outer predicate in the constructed range is required; the
  caller's predicate applies to the emitted tuple either way since we
  substitute into every branch).

Recursive applications are left in place — they are the business of the
fixpoint generators and of :mod:`repro.compiler.specialize`.
"""

from __future__ import annotations

import dataclasses

from ..calculus import ast
from ..calculus.rewrite import conjoin, simplify
from ..calculus.subst import FreshNames, bound_vars, rename_vars, substitute_params, substitute_ranges
from ..errors import EvaluationError
from ..relational import Database


def _resolve_constructor_body(db: Database, node: ast.Constructed) -> ast.Query | None:
    """The constructor's body with formals substituted, or None when the
    constructor is recursive (contains any application)."""
    constructor = db.constructor(node.constructor)
    if constructor.is_recursive():
        return None
    range_map: dict[str, ast.RangeExpr] = {constructor.formal_rel: node.base}
    scalar_map: dict[str, ast.Term] = {}
    for formal, actual in zip(constructor.params, node.args):
        if formal.is_relation:
            range_map[formal.name] = actual  # type: ignore[assignment]
        else:
            scalar_map[formal.name] = actual  # type: ignore[assignment]
    body = substitute_ranges(constructor.body, range_map)
    body = substitute_params(body, scalar_map)
    return body  # type: ignore[return-value]


def _attr_substitution(
    db: Database,
    node: ast.Constructed,
    body_branch: ast.Branch,
    var: str,
) -> dict[tuple[str, str], ast.Term]:
    """Map (var, result-attribute) -> replacement term for one body branch.

    This is the paper's Case 2 substitution: ``r.f`` is replaced by the
    term in position ``f`` of the constructor's target list.
    """
    constructor = db.constructor(node.constructor)
    result_attrs = constructor.result_type.element.attribute_names
    mapping: dict[tuple[str, str], ast.Term] = {}
    if body_branch.targets is None:
        inner_var = body_branch.bindings[0].var
        from ..calculus.evaluator import Evaluator

        schema = Evaluator(db).infer_schema(body_branch.bindings[0].range, {})
        for attr, inner_attr in zip(result_attrs, schema.attribute_names):
            mapping[(var, attr)] = ast.AttrRef(inner_var, inner_attr)
    else:
        for attr, target in zip(result_attrs, body_branch.targets):
            mapping[(var, attr)] = target
    return mapping


def _substitute_attrs(pred: ast.Pred, mapping: dict[tuple[str, str], ast.Term]) -> ast.Pred:
    from ..calculus.subst import transform

    def rule(n: ast.Node) -> ast.Node | None:
        if isinstance(n, ast.AttrRef) and (n.var, n.attr) in mapping:
            return mapping[(n.var, n.attr)]
        return None

    return transform(pred, rule)  # type: ignore[return-value]


def inline_branch(
    db: Database, branch: ast.Branch, binding_index: int
) -> list[ast.Branch] | None:
    """Inline one non-recursive constructed binding of ``branch``.

    Returns the replacement branches (one per constructor-body branch —
    Case 3), or None when the binding is not an inlinable application.
    """
    binding = branch.bindings[binding_index]
    if not isinstance(binding.range, ast.Constructed):
        return None
    body = _resolve_constructor_body(db, binding.range)
    if body is None:
        return None

    out: list[ast.Branch] = []
    fresh = FreshNames(bound_vars(branch) | bound_vars(body))
    for body_branch in body.branches:
        # Standardize the body branch apart from the outer branch.
        renamed = fresh.freshen_all(body_branch)
        mapping = _attr_substitution(db, binding.range, renamed, binding.var)
        new_pred = _substitute_attrs(branch.pred, mapping)
        new_targets = None
        if branch.targets is not None:
            new_targets = tuple(
                _substitute_attrs_term(t, mapping) for t in branch.targets
            )
        new_bindings = (
            branch.bindings[:binding_index]
            + renamed.bindings
            + branch.bindings[binding_index + 1 :]
        )
        combined = simplify(conjoin((renamed.pred, new_pred)))
        if branch.targets is None:
            # Identity over the application: the output tuple is whatever
            # the body branch emits (its own identity or target list).
            out.append(ast.Branch(new_bindings, combined, renamed.targets))
        else:
            out.append(ast.Branch(new_bindings, combined, new_targets))
    return out


def _substitute_attrs_term(term: ast.Term, mapping) -> ast.Term:
    from ..calculus.subst import transform

    def rule(n: ast.Node) -> ast.Node | None:
        if isinstance(n, ast.AttrRef) and (n.var, n.attr) in mapping:
            return mapping[(n.var, n.attr)]
        return None

    return transform(term, rule)  # type: ignore[return-value]


def inline_nonrecursive(db: Database, query: ast.Query) -> ast.Query:
    """Exhaustively inline non-recursive constructor applications.

    The resulting query ranges only over base relations, selected
    relations, and *recursive* applications — exactly the normal form the
    paper's query compilation level hands to plan generation.
    """
    changed = True
    branches = list(query.branches)
    guard = 0
    while changed:
        changed = False
        guard += 1
        if guard > 100:
            raise EvaluationError("constructor inlining did not terminate")
        next_branches: list[ast.Branch] = []
        for branch in branches:
            replaced = None
            for i, binding in enumerate(branch.bindings):
                if isinstance(binding.range, ast.Constructed):
                    replaced = inline_branch(db, branch, i)
                    if replaced is not None:
                        break
            if replaced is None:
                next_branches.append(branch)
            else:
                next_branches.extend(replaced)
                changed = True
        branches = next_branches
    return ast.Query(tuple(branches))
