"""The three-level compilation and optimization framework (section 4).

The paper distributes optimization effort over the phases of a database
programming language compiler:

1. **Type-checking level** (:func:`type_check_level`) — per-definition
   analysis: positivity of every constructor, rough dependency graph over
   constructor/relation *names*, preliminary partitioning into
   disconnected components (stepwise refinable).

2. **Query compilation level** (:func:`compile_statement`) — per query
   form: inline non-recursive applications (Cases 1–3), instantiate the
   remaining applications into fixpoint systems, detect recursive cycles
   on the clause-interconnectivity structure, generate compiled fixpoint
   programs plus a compiled top query plan, and — when a bound-argument
   special case is detected — a goal-directed specialization.

3. **Runtime support level** (:class:`CompiledStatement.run`) — execute
   the generated program against the current database state, optionally
   through logical/physical access paths (:mod:`.accesspath`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..calculus import ast
from ..calculus.analysis import free_range_names
from ..constructors.instantiate import AppKey, InstantiatedSystem, instantiate
from ..constructors.positivity import definition_violations
from ..relational import Database
from .fixpoint import CompiledFixpoint, compile_fixpoint, fixpoint_apply_estimates
from .graphutils import Digraph, connected_components, recursive_nodes
from .options import ExecOptions
from .plans import (
    DEFAULT_OPTIMIZER,
    CostModel,
    ExecutionContext,
    PlanStats,
    QueryPlan,
    compile_query,
)
from .pushdown import PushdownDecision, cost_gated_inline
from .quantgraph import QuantGraph, build_interconnectivity_graph
from .specialize import LinearTC, detect_linear_tc


# ---------------------------------------------------------------------------
# Level 1: type checking
# ---------------------------------------------------------------------------


@dataclass
class TypeCheckReport:
    """Output of the type-checking level."""

    positivity: dict[str, bool]
    dependency_graph: Digraph
    partitions: list[set[str]]
    recursive_constructors: set[str]
    interconnectivity: QuantGraph

    def describe(self) -> str:
        lines = ["type-checking level:"]
        for name, ok in sorted(self.positivity.items()):
            lines.append(f"  constructor {name}: {'positive' if ok else 'NOT positive'}")
        lines.append(f"  partitions: {[sorted(p) for p in self.partitions]}")
        lines.append(f"  recursive: {sorted(self.recursive_constructors)}")
        return "\n".join(lines)


def type_check_level(db: Database) -> TypeCheckReport:
    """Analyze every registered constructor (level 1)."""
    positivity: dict[str, bool] = {}
    graph = Digraph()
    for name, constructor in db.constructors.items():
        positivity[name] = not definition_violations(constructor)
        graph.add_node(name)
        for application in constructor.applications_in_body():
            graph.add_edge(name, application.constructor)
        # Rough version: relation names the body mentions also connect
        # definitions (stepwise refinement starts from names only).
        for rel_name in free_range_names(constructor.body):
            graph.add_node(f"rel:{rel_name}")
            graph.add_edge(name, f"rel:{rel_name}")
    partitions = [
        {n for n in component if not str(n).startswith("rel:")}
        for component in connected_components(graph.nodes, graph.edges())
    ]
    partitions = [p for p in partitions if p]
    recursive = {
        n for n in recursive_nodes(graph) if not str(n).startswith("rel:")
    }
    interconnectivity = build_interconnectivity_graph(db, db.constructors.values())
    return TypeCheckReport(positivity, graph, partitions, recursive, interconnectivity)


# ---------------------------------------------------------------------------
# Level 2: query compilation
# ---------------------------------------------------------------------------


@dataclass
class CompiledStatement:
    """A fully compiled query form, ready for the runtime level."""

    db: Database
    original: ast.Query
    inlined: ast.Query
    fixpoints: dict[AppKey, CompiledFixpoint]
    specializations: dict[AppKey, LinearTC]
    top_plan: QueryPlan
    plan_stats: PlanStats = field(default_factory=PlanStats)
    pushdown_decisions: list[PushdownDecision] = field(default_factory=list)

    def explain(self) -> str:
        lines = ["query compilation level:"]
        for decision in self.pushdown_decisions:
            lines.append(f"  pushdown: {decision.describe()}")
        for key, shape in self.specializations.items():
            lines.append(f"  specializable: {key.describe()} as {shape.describe()}")
        for key, program in self.fixpoints.items():
            lines.append(f"  fixpoint program for {key.describe()}:")
            for line in program.explain().splitlines():
                lines.append(f"    {line}")
        lines.append("  top plan:")
        for line in self.top_plan.explain().splitlines():
            lines.append(f"    {line}")
        return "\n".join(lines)

    # -- Level 3: runtime ---------------------------------------------------------

    def run(self, params: dict | None = None) -> set[tuple]:
        """Execute: fixpoints first (bottom-up), then the top plan."""
        apply_values: dict[object, set] = {}
        for _key, program in self.fixpoints.items():
            values = program.run()
            for app_key, rows in values.items():
                apply_values[app_key] = set(rows)
        ctx = ExecutionContext(self.db, params, apply_values, self.plan_stats)
        return self.top_plan.execute(ctx)


def compile_statement(
    db: Database, query: ast.Query, optimizer: str = DEFAULT_OPTIMIZER
) -> CompiledStatement:
    """Level 2: produce an executable program for one query form."""
    inlined, pushdown_decisions = cost_gated_inline(db, query)

    # Instantiate every remaining (recursive) application and replace it
    # with its fixpoint variable in the query.
    fixpoints: dict[AppKey, CompiledFixpoint] = {}
    specializations: dict[AppKey, LinearTC] = {}
    systems: dict[AppKey, InstantiatedSystem] = {}

    from ..calculus.subst import transform

    def intern(n: ast.Node) -> ast.Node | None:
        if isinstance(n, ast.Constructed):
            system = instantiate(db, n)
            root = system.apps[system.root]
            systems[system.root] = system
            return ast.ApplyVar(system.root, root.result_type.element)
        return None

    rewritten: ast.Query = transform(inlined, intern)  # type: ignore[assignment]

    top_estimates: dict[object, float] = {}
    for key, system in systems.items():
        shape = detect_linear_tc(db, system)
        if shape is not None:
            specializations[key] = shape
        fixpoints[key] = compile_fixpoint(
            db, system, options=ExecOptions(optimizer=optimizer)
        )
        top_estimates.update(fixpoint_apply_estimates(db, system))

    # The top plan joins against materialized fixpoint values: price those
    # ApplyVars with the same full-value estimates the fixpoints used.
    top_plan = compile_query(
        db, rewritten, cost_model=CostModel(db, top_estimates),
        options=ExecOptions(optimizer=optimizer),
    )
    return CompiledStatement(
        db=db,
        original=query,
        inlined=inlined,
        fixpoints=fixpoints,
        specializations=specializations,
        top_plan=top_plan,
        pushdown_decisions=pushdown_decisions,
    )
