"""Logical and physical access paths (section 4, runtime level).

For parameterized selector/constructor queries the paper distinguishes:

* a **logical access path** — "a compiled procedure with dummy constants"
  [HeNa 84]: the query is compiled once with the parameter left open, and
  each invocation runs the compiled form with the constant plugged in;

* a **physical access path** — the relation corresponding to the query
  with the constants treated as variables is *materialized* and
  "partitioned according to the different constant values"; invocations
  become hash lookups.  "Obviously, a physical access path would be
  generated only in case of heavy query usage" — benchmark E11 measures
  exactly that break-even.

Both paths answer the same request: *the rows of a constructed relation
restricted on one attribute = constant* (the ``Infront{ahead}`` with
``head = Obj`` pattern).  Physical paths must be refreshed after base
updates (maintenance per [ShTZ 84] is out of scope and explicit here).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..calculus import ast
from ..constructors.instantiate import instantiate
from ..errors import EvaluationError
from ..relational import Database
from .fixpoint import compile_fixpoint, fixpoint_apply_estimates
from .plans import CostModel
from .specialize import SpecializedStats, bound_query, detect_linear_tc


@dataclass
class AccessPathStats:
    invocations: int = 0
    recomputations: int = 0
    partition_lookups: int = 0


class LogicalAccessPath:
    """Compiled once; each call evaluates goal-directedly (or re-runs the
    compiled fixpoint when the shape does not specialize)."""

    def __init__(
        self,
        db: Database,
        application: ast.Constructed,
        attr: str,
        allow_specialization: bool = True,
    ) -> None:
        self.db = db
        self.application = application
        self.attr = attr
        self.system = instantiate(db, application)
        result_schema = self.system.apps[self.system.root].result_type.element
        self.attr_index = result_schema.index_of(attr)
        self.shape = detect_linear_tc(db, self.system) if allow_specialization else None
        self._compiled = None if self.shape is not None else compile_fixpoint(db, self.system)
        self.stats = AccessPathStats()

    def lookup(self, value: object) -> set[tuple]:
        self.stats.invocations += 1
        self.stats.recomputations += 1
        if self.shape is not None:
            bound = "head" if self.attr_index == 0 else "tail"
            return bound_query(self.db, self.shape, bound, value, SpecializedStats())
        values = self._compiled.run()
        rows = values[self.system.root]
        return {r for r in rows if r[self.attr_index] == value}


class PhysicalAccessPath:
    """Materialized and partitioned by the parameter attribute."""

    def __init__(self, db: Database, application: ast.Constructed, attr: str) -> None:
        self.db = db
        self.application = application
        self.attr = attr
        self.system = instantiate(db, application)
        result_schema = self.system.apps[self.system.root].result_type.element
        self.attr_index = result_schema.index_of(attr)
        self._compiled = compile_fixpoint(db, self.system)
        self.stats = AccessPathStats()
        self._partitions: dict[object, set[tuple]] | None = None
        self._base_versions: dict[str, int] = {}

    def _snapshot_versions(self) -> dict[str, int]:
        return {name: rel.version for name, rel in self.db.relations.items()}

    def materialize(self) -> None:
        """(Re)compute the full constructed relation and partition it."""
        self.stats.recomputations += 1
        values = self._compiled.run()
        rows = values[self.system.root]
        partitions: dict[object, set[tuple]] = {}
        for row in rows:
            partitions.setdefault(row[self.attr_index], set()).add(row)
        self._partitions = partitions
        self._base_versions = self._snapshot_versions()

    def is_stale(self) -> bool:
        return self._partitions is None or self._base_versions != self._snapshot_versions()

    def lookup(self, value: object) -> set[tuple]:
        self.stats.invocations += 1
        if self._partitions is None:
            self.materialize()
        elif self.is_stale():
            raise EvaluationError(
                "physical access path is stale: a base relation changed; "
                "call materialize() to refresh"
            )
        self.stats.partition_lookups += 1
        return set(self._partitions.get(value, set()))


def choose_access_path(
    db: Database,
    application: ast.Constructed,
    attr: str,
    expected_invocations: int = 1,
    allow_specialization: bool = True,
) -> "LogicalAccessPath | PhysicalAccessPath":
    """Cost-gated choice between a logical and a physical access path.

    "Obviously, a physical access path would be generated only in case of
    heavy query usage" — this function decides what counts as heavy from
    table statistics: the estimated size of the constructed relation
    (catalog observations of previous runs when available), whether a
    goal-directed specialization exists (which makes logical invocations
    cheap), and the caller's expected invocation count.
    """
    system = instantiate(db, application)
    model = CostModel(db, fixpoint_apply_estimates(db, system))
    est_full = model.apply_cardinality(system.root)

    shape = detect_linear_tc(db, system) if allow_specialization else None
    if shape is not None:
        # A seeded traversal touches roughly the reachable fragment.
        logical_per_call = max(1.0, est_full ** 0.5)
    else:
        # A full fixpoint recomputation per call: value size times the
        # (estimated) iteration count.
        logical_per_call = est_full * 2.0

    # Per-lookup partition size: the observed value statistics when a
    # previous run recorded them (skew-blended equality selectivity over
    # the partition attribute — heavy partitions are probed more often),
    # measured distincts next, the sqrt heuristic last.
    observation = (
        db.stats.fixpoint_observation(system.root)
        if getattr(db, "stats", None) is not None
        else None
    )
    result_schema = system.apps[system.root].result_type.element
    pos = result_schema.index_of(attr)
    if (
        observation is not None
        and observation.table is not None
        and observation.table.row_count > 0
    ):
        partition_rows = est_full * observation.table.eq_selectivity(pos)
    elif observation is not None and len(observation.distinct) > pos:
        partition_rows = est_full / max(1, observation.distinct[pos])
    else:
        partition_rows = max(1.0, est_full ** 0.5)

    physical_total = est_full * 2.0 + expected_invocations * partition_rows
    logical_total = expected_invocations * logical_per_call
    if physical_total < logical_total:
        return PhysicalAccessPath(db, application, attr)
    return LogicalAccessPath(db, application, attr, allow_specialization)
