"""The sharded parallel executor backend (``executor="sharded"``).

Hash-partitioned execution of the columnar operator pipelines of
:mod:`repro.compiler.operators` across a ``concurrent.futures`` worker
pool.  The backend plugs into the :mod:`repro.compiler.executors`
registry, so every entry point — ``compile_query``, the fixpoint driver,
``DatalogEngine.solve(mode="compiled")`` — inherits it by passing
``executor="sharded"``.

How a branch is sharded
-----------------------

The leading step's input rows are hash-partitioned into ``k`` shards and
the *whole* lowered pipeline runs once per shard, each worker under its
own :class:`~.plans.ExecutionContext` (private operation counters,
private residual/pushdown memos) with a per-shard **source override
map**: the leading source answers with the shard's rows, and — when the
first downstream hash join keys purely on the leading variable — that
join's *build side* is hash-partitioned on the same key, so each worker
builds an index over ``rows/k`` build rows instead of all of them.
Stored relations answer build-side partitions from
:meth:`~repro.relational.relation.Relation.partitions` (version-cached
shard views); fixpoint variables are partitioned once per iteration, so
each iteration's delta is split exactly once and every shard probes its
own slice.  Every other step sees its full source, which keeps the
decomposition correct for arbitrary downstream joins, filters, and
residual predicates: each output tuple derives from exactly one leading
row, hence from exactly one shard.

Shard outputs are merged with a **dedup-aware union**: the per-shard
result batches (which may repeat tuples *across* shards) are unioned
into one set before the owning plan's Dedup/DeltaApply sees them, so
``explain()`` reports per-shard produced counts *and* the merged
distinct count without double-counting — and the fixpoint driver's
semi-naive ``produced - known`` subtraction stays deterministic across
mid-fixpoint re-plans (the merged set is order-independent).

Partition count and pools
-------------------------

The partition count comes from the leading source's table statistics
(:class:`~repro.relational.stats.TableStats` row counts — the same
numbers ``db.stats`` feeds the planner), clamped to the configured
worker count, which falls back to ``os.cpu_count()``.  Small inputs
(``min_rows``) run unsharded through the plain columnar backend.
Workers run in threads by default (zero setup cost; C-level kernels
still interleave under the GIL) — a fork-based **process pool** is the
opt-in knob for true multi-core scaling (:class:`ShardConfig.pool`
``= "process"``), falling back to threads where ``fork`` is
unavailable.
"""

from __future__ import annotations

import atexit
import os
import threading
from array import array
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from functools import partial

from ..calculus.analysis import free_tuple_vars
from ..errors import DBPLError
from ..relational.indexes import ShardView, partition_rows, partition_views
from ..relational.vectors import ColumnVector, EncodedTable, get_numpy
from .executors import BatchBackend, register_backend
from .operators import VectorHashJoin, _batch_len, _encode_apply
from .plans import ExecutionContext, PlanStats, _compile_value


@dataclass(frozen=True)
class ShardConfig:
    """Tuning knobs of the sharded backend.

    ``workers=None`` falls back to ``os.cpu_count()``.  ``pool`` selects
    the worker pool: ``"thread"`` (default) or ``"process"`` (fork-based
    — the multi-core option; silently degrades to threads where fork is
    unavailable).  Branches whose leading source holds fewer than
    ``min_rows`` rows run unsharded; above that, one shard is created
    per ``rows_per_shard`` leading rows, clamped to the worker count.

    ``inner`` selects the per-shard pipeline: ``"batch"`` (the columnar
    kernels) or ``"vector"`` (the dictionary-encoded int-id kernels,
    falling back per branch to columnar for uncovered shapes).
    ``reuse_pool`` lets fully-shippable vector branches run on one
    persistent fork pool — workers are forked once and each shard task
    ships its compact encoded buffers over the pipe — instead of paying
    per-call pool setup through fork-time task inheritance.
    """

    workers: int | None = None
    pool: str = "thread"
    min_rows: int = 4096
    rows_per_shard: int = 2048
    inner: str = "batch"
    reuse_pool: bool = True

    def effective_workers(self) -> int:
        return self.workers if self.workers else (os.cpu_count() or 1)


#: The module default; :func:`configure` rebinds it (ShardConfig is
#: frozen), so always read it through this module or
#: :func:`default_shard_config` — a from-import snapshots a stale value.
DEFAULT_CONFIG = ShardConfig()


def configure(**knobs) -> ShardConfig:
    """Update the module-default :class:`ShardConfig` (returns the new one).

    Per-context overrides (``ExecutionContext.shard_config``) take
    precedence over the module default.
    """
    global DEFAULT_CONFIG
    DEFAULT_CONFIG = replace(DEFAULT_CONFIG, **knobs)
    return DEFAULT_CONFIG


def default_shard_config() -> ShardConfig:
    """The live module-default :class:`ShardConfig`.

    The accessor every external reader should use: :func:`configure`
    *rebinds* the module global, so a ``from ... import DEFAULT_CONFIG``
    taken before a ``configure()`` call reports knobs the backend no
    longer uses.
    """
    return DEFAULT_CONFIG


def shard_count(n_rows: float, config: ShardConfig) -> int:
    """How many shards a leading input of ``n_rows`` rows gets."""
    workers = config.effective_workers()
    if workers <= 1 or n_rows < max(config.min_rows, 2):
        return 1
    per_shard = max(1, config.rows_per_shard)
    wanted = -(-int(n_rows) // per_shard)  # ceil division
    return max(1, min(workers, wanted))


class ShardReport:
    """Per-branch shard accounting, surfaced by ``explain()``.

    ``produced`` are the per-shard batch sizes of the most recent
    execution (duplicates included — what each worker handed back);
    ``merged_total`` accumulates the *distinct* union size per
    execution, so the reported merged actuals never double-count a
    tuple two shards both produced.
    """

    __slots__ = (
        "k",
        "produced",
        "produced_total",
        "merged_total",
        "executions",
        "notes",
    )

    def __init__(self) -> None:
        self.k = 0
        self.produced: tuple[int, ...] = ()
        self.produced_total = 0
        self.merged_total = 0
        self.executions = 0
        #: Degradation tags ("pool=threads", "ship=fork-inherit", ...) —
        #: the explain() face of the ``note_fallback`` counters, so a
        #: silently-downgraded execution is visible in the plan report.
        self.notes: tuple[str, ...] = ()

    def record(self, produced_counts, merged: int) -> None:
        self.k = len(produced_counts)
        self.produced = tuple(produced_counts)
        self.produced_total += sum(produced_counts)
        self.merged_total += merged
        self.executions += 1

    def note(self, tag: str) -> None:
        if tag not in self.notes:
            self.notes = (*self.notes, tag)

    def explain_line(self) -> str:
        per = self.executions or 1
        line = (
            f"SHARDS k={self.k} produced={list(self.produced)} "
            f"[produced={self.produced_total / per:.1f} "
            f"merged={self.merged_total / per:.1f}]"
        )
        if self.notes:
            line += f" notes=[{' '.join(self.notes)}]"
        return line


# ---------------------------------------------------------------------------
# Shard planning: pick the partition key and build the override maps
# ---------------------------------------------------------------------------


def _estimated_rows(ctx: ExecutionContext, source, rows) -> int:
    """Leading-source cardinality, preferring the stats layer's counts."""
    if source.kind == "relation":
        stats = ctx.db.relation(source.name).stats()
        if stats.row_count:
            return stats.row_count
    try:
        return len(rows)
    except TypeError:
        return 0


def _alignment(branch):
    """The first downstream hash join keyed purely on the leading variable.

    Returns ``(step, key_value_fns)`` — the step whose build side can be
    partitioned compatibly with the leading rows, and one compiled value
    extractor per key term (evaluated against ``{lead_var: row}``) — or
    None when no such join exists (the shards then split on row hash).
    """
    steps = branch.steps
    lead_var = steps[0].var
    for step in steps[1:]:
        if not step.key_positions:
            continue
        if not any(free_tuple_vars(term) for term in step.key_terms):
            continue  # constant-key lookup: nothing to align
        if not all(free_tuple_vars(term) <= {lead_var} for term in step.key_terms):
            break  # first real join reads later bindings: no alignment
        fns = [
            _compile_value(term, branch.schemas, branch.params)
            for term in step.key_terms
        ]
        if any(fn is None for fn in fns):
            break
        return step, fns
    return None


def _partition_leading(rows, lead_var: str, align, k: int):
    """Hash-partition the leading rows into ``k`` lists.

    With an aligned join the split key is the join key computed from
    each leading row (so probe rows land with their build partition);
    without one, the whole row hashes.
    """
    if align is None:
        return partition_rows(rows, (), k)
    shards: list[list] = [[] for _ in range(k)]
    _step, fns = align
    env: dict = {}
    if len(fns) == 1:
        fn = fns[0]
        for row in rows:
            env[lead_var] = row
            shards[hash(fn(env)) % k].append(row)
    else:
        for row in rows:
            env[lead_var] = row
            shards[hash(tuple(fn(env) for fn in fns)) % k].append(row)
    return shards


def _build_partitions(ctx: ExecutionContext, step, k: int):
    """Shard views of an aligned join's build side, version-cached for
    stored relations and computed per execution for fixpoint deltas."""
    source = step.source
    if source.kind == "relation":
        relation = ctx.db.relation(source.name)
        attrs = tuple(
            relation.element_type.attribute_names[i] for i in step.key_positions
        )
        return relation.partitions(attrs, k)
    rows, _provider = source.rows_and_indexable(ctx)
    return partition_views(rows, step.key_positions, k)


def _prewarm(branch, pipeline, ctx: ExecutionContext, skip_sources) -> None:
    """Build shared relation indexes in the calling thread before fan-out.

    Worker threads would otherwise race to lazily build the same
    relation index or scalar-bucket view; the races are benign (every
    build sees the same immutable rows) but wasteful, so the structures
    that live on the :class:`~repro.relational.relation.Relation` itself
    — its version-cached indexes and ``raw_list`` — are materialized
    once up front.  Only relation sources warm: apply/computed sources
    cache their indexes on the *execution context*, and every shard
    worker runs under its own context, so warming them here would build
    an index no worker ever sees.  Sources in ``skip_sources`` are
    overridden per shard and need no shared index.
    """
    for step in branch.steps:
        if step.source.kind != "relation" or id(step.source) in skip_sources:
            continue
        rows, provider = step.source.rows_and_indexable(ctx)
        if step.key_positions:
            index = provider(step.key_positions)
            if index is not None and len(step.key_positions) == 1:
                index.scalar_buckets()


# ---------------------------------------------------------------------------
# Shard execution
# ---------------------------------------------------------------------------


def _run_shard(pipeline, db, params, apply_values, overrides):
    """Run one shard's pipeline under a private execution context.

    Returns ``(batch, step_counts, op_counts, stats)`` — the produced
    rows plus the per-step / per-operator actual counts and the shard's
    private :class:`~.plans.PlanStats`, merged serially by the caller so
    shared operator counters are never mutated from worker threads.
    """
    ctx = ExecutionContext(db, params, apply_values)
    ctx.source_overrides = overrides
    step_counts: list[int] = []
    op_counts: list[int] = []
    batch = (1, []) if pipeline.columnar else [()]
    for ops in pipeline.step_ops:
        for op in ops:
            batch = op.run(ctx, batch)
            op_counts.append(_batch_len(batch))
        step_counts.append(_batch_len(batch))
    for op in pipeline.tail_ops:
        batch = op.run(ctx, batch)
        op_counts.append(_batch_len(batch))
    if pipeline.fused:
        ctx.stats.tuples_emitted += len(batch)
    return batch, step_counts, op_counts, ctx.stats


class _VectorShardContext:
    """The minimal execution context a *shipped* vector shard needs.

    Shippable vector pipelines resolve every table through
    ``encoded_overrides`` and never touch the database, the evaluator,
    or raw rows — so the worker side carries only parameters, private
    statistics, and the per-execution vector caches.
    """

    __slots__ = (
        "params",
        "stats",
        "encoded_overrides",
        "source_overrides",
        "vector_cache",
    )

    def __init__(self, params: dict, overrides: dict) -> None:
        self.params = params
        self.stats = PlanStats()
        self.encoded_overrides = overrides
        self.source_overrides = None
        self.vector_cache: dict = {}


def _run_vector_shard(payload):
    """Persistent-pool task: one shipped vector shard, end to end.

    ``payload`` is ``(pipeline, overrides, params)`` — all genuinely
    picklable: vector operators carry :class:`~.operators.SourceRef`
    handles (the Source object is dropped in transit) and the override
    tables ship only their id buffers and dictionaries.  Returns the
    same ``(batch, step_counts, op_counts, stats)`` shape as
    :func:`_run_shard`.
    """
    pipeline, overrides, params = payload
    ctx = _VectorShardContext(params, overrides)
    step_counts: list[int] = []
    op_counts: list[int] = []
    batch = (1, [])
    for ops in pipeline.step_ops:
        for op in ops:
            batch = op.run(ctx, batch)
            op_counts.append(_batch_len(batch))
        step_counts.append(_batch_len(batch))
    for op in pipeline.tail_ops:
        batch = op.run(ctx, batch)
        op_counts.append(_batch_len(batch))
    return batch, step_counts, op_counts, ctx.stats


def _partition_encoded(table: EncodedTable, pos: int | None, k: int) -> list:
    """Split an encoded table into ``k`` shard tables, in id space.

    With a key column, rows land by the hash of their *decoded* value —
    one hash per distinct dictionary value, matching the value hashing
    of the row-level partitioners so probe and build sides stay aligned.
    Without one (no aligned join), contiguous slices split the scan.
    The shard tables carry no raw rows (they are built to ship).
    """
    n = table.n
    if pos is None:
        bounds = [n * i // k for i in range(k + 1)]
        return [
            EncodedTable(
                tuple(
                    ColumnVector(c.ids[a:b], c.dictionary) for c in table.columns
                ),
                None,
                b - a,
            )
            for a, b in zip(bounds, bounds[1:])
        ]
    col = table.columns[pos]
    shard_of = [hash(v) % k for v in col.dictionary.values]
    np = get_numpy()
    shards = []
    if np is not None:
        shard_arr = (
            np.array(shard_of, dtype=np.int64)[col.np_ids()]
            if shard_of
            else np.zeros(n, dtype=np.int64)
        )
        for s in range(k):
            mask = shard_arr == s
            columns = []
            for c in table.columns:
                ids = array("q")
                ids.frombytes(np.ascontiguousarray(c.np_ids()[mask]).tobytes())
                columns.append(ColumnVector(ids, c.dictionary))
            shards.append(EncodedTable(tuple(columns), None, int(mask.sum())))
        return shards
    buckets = [array("q") for _ in range(k)]
    appends = [b.append for b in buckets]
    for i, g in enumerate(col.ids):
        appends[shard_of[g]](i)
    for idx in buckets:
        columns = tuple(
            ColumnVector(array("q", map(c.ids.__getitem__, idx)), c.dictionary)
            for c in table.columns
        )
        shards.append(EncodedTable(columns, None, len(idx)))
    return shards


def _vector_alignment(pipeline):
    """The first hash join probing a column of the leading table.

    Partitioning the lead table on that join's probe column and the
    join's build table on its build column (both by decoded-value hash)
    puts every probe row in the shard that holds all its matches, so
    each worker builds a ``1/k`` group table.  Build refs are never step
    0 (a join's build side is its own step's relation), so the lead
    partition is only ever read by row index — never probed into —
    which keeps the shard-local tables consistent.
    """
    for ops in pipeline.step_ops:
        for op in ops:
            if isinstance(op, VectorHashJoin) and op.probe_ref.key == 0:
                return op
    return None


#: Persistent fork pools for shipped vector shards, keyed by worker
#: count.  Workers are forked once (first use) and stay resident: every
#: subsequent sharded execution only pays task pickling — the compact
#: encoded buffers — not pool setup.  Workers are daemonic, so they die
#: with the interpreter; the atexit hook just makes shutdown tidy.
_PROCESS_POOLS: dict[int, object] = {}
_PROCESS_LOCK = threading.Lock()


def _process_pool(workers: int):
    pool = _PROCESS_POOLS.get(workers)
    if pool is None:
        with _PROCESS_LOCK:
            pool = _PROCESS_POOLS.get(workers)
            if pool is None:
                import multiprocessing

                fork = multiprocessing.get_context("fork")
                pool = fork.Pool(processes=workers)
                _PROCESS_POOLS[workers] = pool
    return pool


@atexit.register
def _shutdown_process_pools() -> None:
    for pool in _PROCESS_POOLS.values():
        pool.terminate()
    _PROCESS_POOLS.clear()


#: Fork-inherited task table for the per-call process pool (set
#: pre-fork, read by workers through :func:`_fork_call`; only shard
#: indexes cross the pipe).  Guarded by :data:`_FORK_LOCK` across the
#: whole set → fork → map → reset window, so two concurrent
#: process-pool executions can never fork against each other's task
#: table.  Columnar pipelines (generated closures, database handles)
#: cannot pickle, so they must inherit state at fork time — which is
#: why this path pays pool setup per call; shippable vector pipelines
#: take the persistent pool above instead.
_FORK_TASKS = None
_FORK_LOCK = threading.Lock()


def _fork_call(i: int):
    return _FORK_TASKS[i]()


_THREAD_POOLS: dict[int, ThreadPoolExecutor] = {}


def _thread_pool(workers: int) -> ThreadPoolExecutor:
    pool = _THREAD_POOLS.get(workers)
    if pool is None:
        pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-shard"
        )
        _THREAD_POOLS[workers] = pool
    return pool


def _run_tasks(tasks, config: ShardConfig, ctx: ExecutionContext | None = None):
    """Run shard tasks on the configured pool, preserving task order.

    A requested process pool that cannot fork degrades to threads — but
    never silently: the degradation is reported through the context's
    ``note_fallback`` hook (surfaced as a counter and a DBPL hint by the
    serving layer) on every affected execution.
    """
    workers = min(config.effective_workers(), len(tasks))
    if config.pool == "process" and len(tasks) > 1:
        if hasattr(os, "fork"):
            import multiprocessing

            global _FORK_TASKS
            with _FORK_LOCK:
                _FORK_TASKS = tasks
                try:
                    fork = multiprocessing.get_context("fork")
                    with fork.Pool(processes=workers) as pool:
                        return pool.map(_fork_call, range(len(tasks)))
                finally:
                    _FORK_TASKS = None
        elif ctx is not None:
            ctx.note_fallback(
                "process_pool",
                "ShardConfig(pool='process') ran shards on threads: "
                "fork is unavailable on this platform",
            )
    if workers <= 1:
        return [task() for task in tasks]
    return list(_thread_pool(workers).map(lambda task: task(), tasks))


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------


class ShardedBackend(BatchBackend):
    """Hash-partitioned parallel execution of the columnar pipelines.

    Falls back to the plain (unsharded) batch path when a branch has no
    generated pipeline, when the leading input is below the sharding
    threshold, or when only one shard would be created.
    """

    name = "sharded"

    def execute_branch(self, branch, ctx, out: set, dedup=None) -> None:
        config = ctx.shard_config or DEFAULT_CONFIG
        pipeline = None
        if config.inner == "vector":
            pipeline = branch.ensure_vector_pipeline()
        if pipeline is None:
            pipeline = self._pipeline(branch)
        if pipeline is None:
            branch.execute_tuple(ctx, out)
            return
        ship_fallback = None
        if (
            config.inner == "vector"
            and config.pool == "process"
            and config.reuse_pool
            and pipeline.shippable
            and hasattr(os, "fork")
        ):
            shipped = self._execute_shipped(branch, pipeline, ctx, out, dedup, config)
            if shipped is True:
                return
            # A string is the degradation reason (already reported via
            # note_fallback); False means sharding was moot, not degraded.
            if isinstance(shipped, str):
                ship_fallback = shipped
        shard_overrides = self._plan_shards(branch, ctx, config)
        if shard_overrides is None:
            batch = branch.execute_batch(ctx, pipeline)
            if dedup is not None:
                dedup.absorb(batch, out)
            else:
                out.update(batch)
            return
        _prewarm(branch, pipeline, ctx, skip_sources=set(shard_overrides[0]))
        tasks = [
            partial(
                _run_shard, pipeline, ctx.db, ctx.params, ctx.apply_values,
                overrides,
            )
            for overrides in shard_overrides
        ]
        results = _run_tasks(tasks, config, ctx)
        self._merge(branch, pipeline, ctx, results, out, dedup)
        report = branch.shards
        if ship_fallback is not None:
            report.note(f"ship=fork-inherit:{ship_fallback}")
        if config.pool == "process" and not hasattr(os, "fork"):
            report.note("pool=threads")

    # -- shipped vector shards ----------------------------------------------

    def _execute_shipped(self, branch, pipeline, ctx, out, dedup, config):
        """Run a shippable vector pipeline on the persistent fork pool.

        Ships each shard as data — the picklable vector pipeline plus a
        per-step map of encoded tables (the lead table partitioned, an
        aligned join's build table partitioned to match, every other
        step's table whole; pickle memoization dedups the shared
        dictionaries within a payload) — so repeated executions reuse
        one long-lived pool instead of re-forking per call.  A leading
        fixpoint delta ships too: its rows encode per execution and the
        workers join through id translation, so semi-naive iterations
        stay on the persistent pool.

        Returns True when the shipped execution ran; a short reason
        string when the caller must fall back to fork-time inheritance
        (also reported through ``ctx.note_fallback`` — these used to be
        silent); and False when sharding is moot (one shard — no
        degradation, the plain path handles it).
        """
        if ctx.source_overrides or ctx.encoded_overrides:
            ctx.note_fallback(
                "ship",
                "shippable pipeline fell back to fork-time inheritance: "
                "the context carries source overrides the shipped tables "
                "would shadow",
            )
            return "overrides"
        steps = branch.steps
        if not steps:
            return False
        tables = {}
        for i, s in enumerate(steps):
            source = s.source
            if source.kind == "relation":
                try:
                    tables[i] = ctx.db.relation(source.name).encoded()
                except DBPLError:
                    ctx.note_fallback(
                        "ship",
                        "shippable pipeline fell back to fork-time "
                        f"inheritance: {source.describe()} has no encoded view",
                    )
                    return "encode"
            elif source.kind == "apply" and i == 0 and source.schema is not None:
                rows = ctx.apply_values.get(source.token)
                if rows is None:
                    return False  # unbound: let the plain path raise
                tables[i] = _encode_apply(rows, source.schema)
            else:
                ctx.note_fallback(
                    "ship",
                    "shippable pipeline fell back to fork-time inheritance: "
                    f"step {i} ({source.describe()}) is not a stored relation",
                )
                return "sources"
        k = shard_count(tables[0].n, config)
        if k <= 1:
            return False
        align = _vector_alignment(pipeline)
        if align is None:
            lead_parts = _partition_encoded(tables[0], None, k)
            build_key = None
        else:
            lead_parts = _partition_encoded(tables[0], align.probe_pos, k)
            build_key = align.ref.key
            build_parts = _partition_encoded(tables[build_key], align.build_pos, k)
        payloads = []
        for i in range(k):
            overrides = dict(tables)
            overrides[0] = lead_parts[i]
            if build_key is not None:
                overrides[build_key] = build_parts[i]
            payloads.append((pipeline, overrides, ctx.params))
        pool = _process_pool(min(config.effective_workers(), k))
        results = pool.map(_run_vector_shard, payloads)
        self._merge(branch, pipeline, ctx, results, out, dedup)
        return True

    # -- planning ------------------------------------------------------------

    def _plan_shards(self, branch, ctx, config: ShardConfig):
        """Per-shard source-override maps, or None (run unsharded)."""
        steps = branch.steps
        if not steps:
            return None
        lead = steps[0]
        cold = self._plan_partition_shards(branch, lead, ctx, config)
        if cold is not None:
            return cold
        try:
            rows, _provider = lead.source.rows_and_indexable(ctx)
        except DBPLError:
            # An unresolvable lead range (unknown name, unbound fixpoint
            # variable, ...): run unsharded and let execution surface it.
            return None
        k = shard_count(_estimated_rows(ctx, lead.source, rows), config)
        if k <= 1:
            return None
        align = _alignment(branch)
        lead_parts = _partition_leading(rows, lead.var, align, k)
        build_views = None
        if align is not None:
            build_views = _build_partitions(ctx, align[0], k)
        overrides: list[dict[int, tuple]] = []
        for i in range(k):
            view = ShardView(lead_parts[i])
            per_shard = {id(lead.source): (view.rows, view.index_on)}
            if build_views is not None:
                bview = build_views[i]
                per_shard[id(align[0].source)] = (bview.rows, bview.index_on)
            overrides.append(per_shard)
        return overrides

    def _plan_partition_shards(self, branch, lead, ctx, config: ShardConfig):
        """Partition files as shard units for a cold store-backed lead.

        A leading scan over a spilled relation that is still cold (never
        materialized) shards along its on-disk partition boundaries:
        whole partitions are dealt round-robin into ``k`` disjoint row
        groups, honoring the step's projection/selection pushdown, so
        the relation is *never* materialized in the coordinator and
        pruned partitions are never read by any worker.  Only applies
        without an aligned downstream join — alignment needs a hash pass
        over the lead rows, which forfeits the free disk split anyway.
        """
        source = lead.source
        if source.kind != "relation":
            return None
        overrides = ctx.source_overrides
        if overrides is not None and overrides.get(id(source)) is not None:
            return None
        store = ctx.db.relation(source.name).cold_store
        if store is None:
            return None
        k = shard_count(store.row_count, config)
        if k <= 1 or _alignment(branch) is not None:
            return None
        pushdown = lead.pushdown
        groups = store.scan_partition_groups(
            k,
            pushdown.projection if pushdown is not None else None,
            pushdown.selection if pushdown is not None else (),
            ctx.params,
        )
        shard_overrides: list[dict[int, tuple]] = []
        for rows in groups:
            view = ShardView(rows)
            shard_overrides.append({id(source): (view.rows, view.index_on)})
        return shard_overrides

    # -- merging -------------------------------------------------------------

    def _merge(self, branch, pipeline, ctx, results, out: set, dedup) -> None:
        if len(branch.actual_rows) != len(branch.steps):
            branch.actual_rows = [0] * len(branch.steps)
        branch.executions += 1
        operators = list(pipeline.operators())
        for op in operators:
            op.executions += 1
        produced: set = set()
        produced_counts: list[int] = []
        stats = ctx.stats
        for batch, step_counts, op_counts, shard_stats in results:
            produced.update(batch)
            produced_counts.append(len(batch))
            for i, count in enumerate(step_counts):
                branch.actual_rows[i] += count
            for op, count in zip(operators, op_counts):
                op.actual_rows += count
            stats.rows_scanned += shard_stats.rows_scanned
            stats.index_lookups += shard_stats.index_lookups
            stats.residual_checks += shard_stats.residual_checks
            stats.residual_evals += shard_stats.residual_evals
            stats.tuples_emitted += shard_stats.tuples_emitted
        branch.actual_emitted += sum(produced_counts)
        if branch.shards is None:
            branch.shards = ShardReport()
        branch.shards.record(produced_counts, len(produced))
        if dedup is not None:
            dedup.absorb(produced, out)
        else:
            out.update(produced)


register_backend(ShardedBackend())
