"""Fixpoint engines: naive, semi-naive, and guarded non-monotone iteration.

Section 3.2 defines the value of a constructor application as the limit
of the simultaneous iteration

    apply_i^0     = {}
    apply_i^(k+1) = g_i(apply_0^k, ..., apply_l^k)

reached after finitely many steps whenever the g_i are monotone (which
positivity guarantees).  Three engines implement this:

* :func:`naive_fixpoint` — the literal iteration; also the vehicle for
  the guarded *non-monotone* mode (``history_detection=True``), which
  recognizes genuine oscillation (the paper's ``nonsense`` constructor)
  by revisiting an earlier, non-consecutive state and raises
  :class:`~repro.errors.ConvergenceError`, while still finding the limit
  of convergent non-monotone definitions such as ``strange``.

* :func:`seminaive_fixpoint` — the set-oriented differential evaluation
  the paper's efficiency claim rests on: from the second iteration on,
  recursive branches join only against the *delta* of the previous
  iteration.  Applicable when every fixpoint variable occurs only as a
  direct binding range (checked by :func:`seminaive_eligible`); the
  engine wrapper falls back to naive otherwise.

Both engines return the same mapping ``AppKey -> frozenset(rows)`` and
are cross-checked in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace

from ..calculus import ast
from ..calculus.evaluator import EvalStats, Evaluator
from ..errors import ConvergenceError, PositivityError
from ..relational import Database, DeltaStats
from .instantiate import AppKey, InstantiatedSystem

DEFAULT_MAX_ITERATIONS = 100_000


@dataclass
class FixpointStats:
    """Operation counters for one fixpoint computation."""

    mode: str = "naive"
    iterations: int = 0
    tuples_derived: int = 0
    peak_delta: int = 0
    #: Mid-fixpoint re-optimizations performed (compiled engine only).
    replans: int = 0
    final_sizes: dict[str, int] = field(default_factory=dict)
    eval_stats: EvalStats = field(default_factory=EvalStats)

    @property
    def total_tuples(self) -> int:
        return sum(self.final_sizes.values())


Values = dict[AppKey, frozenset]


def _record_observations(
    db: Database,
    system: InstantiatedSystem,
    values: Values,
    delta_stats: dict[AppKey, DeltaStats] | None = None,
) -> None:
    """Stats hook: feed converged fixpoint sizes to the planner catalog.

    Later compilations of the same application then price its fixpoint
    variables from measured cardinalities (and, when the semi-naive
    engine tracked deltas, exact per-column distinct counts).
    """
    catalog = getattr(db, "stats", None)
    if catalog is None:
        return
    from .instantiate import base_relation_names

    read_relations = base_relation_names(db, system)
    for key, rows in values.items():
        distinct: tuple[int, ...] = ()
        table = None
        if delta_stats is not None and key in delta_stats:
            table = delta_stats[key].table
            distinct = tuple(c.distinct for c in table.columns)
        catalog.record_fixpoint(
            key, len(rows), distinct, relations=read_relations, table=table
        )


# ---------------------------------------------------------------------------
# Naive iteration
# ---------------------------------------------------------------------------


def naive_fixpoint(
    db: Database,
    system: InstantiatedSystem,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    history_detection: bool = False,
    stats: FixpointStats | None = None,
) -> Values:
    """The literal apply^(k+1) = g(apply^k) iteration of section 3.2."""
    stats = stats if stats is not None else FixpointStats()
    stats.mode = "naive"
    values: Values = {key: frozenset() for key in system.apps}
    seen_states: set[frozenset] = set()
    if history_detection:
        seen_states.add(_state_token(values))

    for _ in range(max_iterations):
        evaluator = Evaluator(db, apply_values=values, stats=stats.eval_stats)
        new: Values = {
            key: frozenset(evaluator.eval_query(app.body))
            for key, app in system.apps.items()
        }
        stats.iterations += 1
        grown = sum(len(new[k] - values[k]) for k in new)
        stats.tuples_derived += grown
        stats.peak_delta = max(stats.peak_delta, grown)
        if new == values:
            stats.final_sizes = {k.describe(): len(v) for k, v in values.items()}
            _record_observations(db, system, values)
            return values
        if history_detection:
            token = _state_token(new)
            if token in seen_states:
                raise ConvergenceError(
                    f"fixpoint iteration for {system.root.describe()} oscillates: "
                    f"state of iteration {stats.iterations} was seen before "
                    f"without being a fixpoint"
                )
            seen_states.add(token)
        values = new
    raise ConvergenceError(
        f"fixpoint iteration for {system.root.describe()} did not converge "
        f"within {max_iterations} iterations"
    )


def _state_token(values: Values) -> frozenset:
    return frozenset((key, rows) for key, rows in values.items())


def iterate_steps(
    db: Database,
    system: InstantiatedSystem,
    steps: int,
    stats: FixpointStats | None = None,
) -> Values:
    """apply^steps — the bounded sequence of section 3.1 (ahead_n).

    Returns the state after exactly ``steps`` applications of the
    simultaneous operator (or earlier if a fixpoint is reached).
    """
    stats = stats if stats is not None else FixpointStats()
    stats.mode = f"bounded({steps})"
    values: Values = {key: frozenset() for key in system.apps}
    for _ in range(steps):
        evaluator = Evaluator(db, apply_values=values, stats=stats.eval_stats)
        new: Values = {
            key: frozenset(evaluator.eval_query(app.body))
            for key, app in system.apps.items()
        }
        stats.iterations += 1
        if new == values:
            return values
        values = new
    return values


# ---------------------------------------------------------------------------
# Semi-naive (differential) iteration
# ---------------------------------------------------------------------------


def _branch_apply_positions(branch: ast.Branch) -> list[int] | None:
    """Binding positions whose range is an ApplyVar, or None if the branch
    uses fixpoint variables anywhere else (ineligible for differentials)."""
    positions = [
        i for i, b in enumerate(branch.bindings) if isinstance(b.range, ast.ApplyVar)
    ]
    # Any ApplyVar occurrence beyond those direct binding ranges — inside
    # predicates, targets, nested ranges — blocks differentiation.  walk()
    # visits one occurrence per structural position, so comparing counts is
    # robust even when node objects are aliased.
    total_occurrences = sum(
        1 for node in ast.walk(branch) if isinstance(node, ast.ApplyVar)
    )
    if total_occurrences != len(positions):
        return None
    return positions


def seminaive_eligible(system: InstantiatedSystem) -> bool:
    """True when every equation confines ApplyVars to binding ranges."""
    return all(
        _branch_apply_positions(branch) is not None
        for app in system.apps.values()
        for branch in app.body.branches
    )


def _variant_token(key: AppKey, kind: str) -> tuple:
    return ("__seminaive__", kind, key)


def _differential_branches(branch: ast.Branch, positions: list[int]) -> list[ast.Branch]:
    """The occurrence-split variants of one recursive branch.

    For recursive occurrences o_1..o_m, variant i binds o_i to the delta,
    occurrences before i to the *new* full value, and occurrences after i
    to the *old* full value — the standard non-linear differential.
    """
    variants: list[ast.Branch] = []
    for i, _pos_i in enumerate(positions):
        new_bindings = list(branch.bindings)
        for j, pos_j in enumerate(positions):
            binding = branch.bindings[pos_j]
            apply_var: ast.ApplyVar = binding.range  # type: ignore[assignment]
            if j < i:
                kind = "new"
            elif j == i:
                kind = "delta"
            else:
                kind = "old"
            new_bindings[pos_j] = ast.Binding(
                binding.var,
                ast.ApplyVar(_variant_token(apply_var.token, kind), apply_var.schema),
            )
        variants.append(dc_replace(branch, bindings=tuple(new_bindings)))
    return variants


def seminaive_fixpoint(
    db: Database,
    system: InstantiatedSystem,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    stats: FixpointStats | None = None,
) -> Values:
    """Differential fixpoint evaluation (requires eligibility)."""
    if not seminaive_eligible(system):
        raise PositivityError(
            "semi-naive evaluation requires fixpoint variables to occur "
            "only as direct binding ranges; use the naive engine"
        )
    stats = stats if stats is not None else FixpointStats()
    stats.mode = "seminaive"

    base_queries: dict[AppKey, ast.Query] = {}
    diff_queries: dict[AppKey, ast.Query] = {}
    for key, app in system.apps.items():
        base_branches: list[ast.Branch] = []
        diff_branches: list[ast.Branch] = []
        for branch in app.body.branches:
            positions = _branch_apply_positions(branch)
            assert positions is not None  # guaranteed by eligibility check
            if positions:
                diff_branches.extend(_differential_branches(branch, positions))
            else:
                base_branches.append(branch)
        base_queries[key] = ast.Query(tuple(base_branches))
        diff_queries[key] = ast.Query(tuple(diff_branches))

    # "old" values (V - delta) are only needed by non-linear rules; for the
    # common linear case computing them every iteration would be quadratic.
    old_tokens_used = {
        node.token
        for query in diff_queries.values()
        for node in ast.walk(query)
        if isinstance(node, ast.ApplyVar)
        and isinstance(node.token, tuple)
        and node.token[1] == "old"
    }

    # Iteration 1: the non-recursive branches seed the computation.
    # Delta statistics are absorbed incrementally as each delta is applied
    # (the planner's catalog receives them at convergence).
    delta_stats: dict[AppKey, DeltaStats] = {
        key: DeltaStats(len(app.element_type.attribute_names))
        for key, app in system.apps.items()
    }
    evaluator = Evaluator(db, stats=stats.eval_stats)
    values: dict[AppKey, set] = {
        key: set(evaluator.eval_query(base_queries[key])) for key in system.apps
    }
    deltas: dict[AppKey, set] = {key: set(values[key]) for key in system.apps}
    for key, delta in deltas.items():
        delta_stats[key].absorb(delta)
    stats.iterations = 1
    stats.tuples_derived = sum(len(d) for d in deltas.values())
    stats.peak_delta = stats.tuples_derived

    while any(deltas.values()):
        if stats.iterations >= max_iterations:
            raise ConvergenceError(
                f"semi-naive iteration for {system.root.describe()} did not "
                f"converge within {max_iterations} iterations"
            )
        apply_values: dict[object, set] = {}
        for key in system.apps:
            apply_values[_variant_token(key, "new")] = values[key]
            apply_values[_variant_token(key, "delta")] = deltas[key]
            old_token = _variant_token(key, "old")
            if old_token in old_tokens_used:
                apply_values[old_token] = values[key] - deltas[key]
        evaluator = Evaluator(db, apply_values=apply_values, stats=stats.eval_stats)
        new_deltas: dict[AppKey, set] = {}
        for key in system.apps:
            produced = evaluator.eval_query(diff_queries[key])
            new_deltas[key] = produced - values[key]
        for key in system.apps:
            values[key] |= new_deltas[key]
            delta_stats[key].absorb(new_deltas[key])
        deltas = new_deltas
        stats.iterations += 1
        grown = sum(len(d) for d in deltas.values())
        stats.tuples_derived += grown
        stats.peak_delta = max(stats.peak_delta, grown)

    frozen = {key: frozenset(rows) for key, rows in values.items()}
    stats.final_sizes = {k.describe(): len(v) for k, v in frozen.items()}
    _record_observations(db, system, frozen, delta_stats)
    return frozen
