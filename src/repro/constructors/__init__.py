"""Constructors: recursive relation construction with fixpoint semantics."""

from .api import (
    ConstructionResult,
    apply_constructor,
    construct,
    construct_bounded,
    evaluate_application,
    solve_system,
)
from .definition import Constructor, define_constructor
from .engines import (
    FixpointStats,
    iterate_steps,
    naive_fixpoint,
    seminaive_eligible,
    seminaive_fixpoint,
)
from .instantiate import AppKey, InstantiatedApp, InstantiatedSystem, instantiate
from .positivity import (
    definition_violations,
    is_definition_positive,
    is_system_positive,
    system_violations,
)

# Re-exported so users defining constructors need one import.
from ..selectors.selector import Parameter

__all__ = [
    "AppKey",
    "ConstructionResult",
    "Constructor",
    "FixpointStats",
    "InstantiatedApp",
    "InstantiatedSystem",
    "Parameter",
    "apply_constructor",
    "construct",
    "construct_bounded",
    "define_constructor",
    "definition_violations",
    "evaluate_application",
    "instantiate",
    "is_definition_positive",
    "is_system_positive",
    "iterate_steps",
    "naive_fixpoint",
    "seminaive_eligible",
    "seminaive_fixpoint",
    "solve_system",
    "system_violations",
]
