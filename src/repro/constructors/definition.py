"""Constructor definitions (section 3).

A constructor is the dual of a selector: applied to a base relation it
*expands* membership to every tuple derivable through its body, a union
of relational-calculus branches that may refer to the application's own
result (simple recursion) or to other constructed relations (mutual
recursion).  The paper's running example:

    CONSTRUCTOR ahead FOR Rel: infrontrel (Ontop: ontoprel): aheadrel;
    BEGIN EACH r IN Rel: TRUE,
          <r.front, ah.tail> OF EACH r IN Rel,
                                EACH ah IN Rel{ahead(Ontop)}: r.back = ah.head,
          <r.front, ab.low>  OF EACH r IN Rel,
                                EACH ab IN Ontop{above(Rel)}: r.back = ab.high
    END ahead

Definition-time checks performed here:

* the body's identity branches (``EACH r IN Rel: TRUE``) must produce
  tuples positionally compatible with the declared result type;
* target lists must have the result type's arity;
* unless ``check_positivity=False``, the body must satisfy the paper's
  positivity constraint (section 3.3) — the DBPL compiler's rule.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..calculus import ast
from ..errors import PositivityError, SchemaError
from ..relational import Database
from ..selectors.selector import Parameter
from ..types import RelationType
from .positivity import definition_violations


class Constructor:
    """A named, possibly parameterized, possibly recursive deduction rule."""

    def __init__(
        self,
        name: str,
        formal_rel: str,
        rel_type: RelationType,
        result_type: RelationType,
        body: ast.Query,
        params: Sequence[Parameter] = (),
        check_positivity: bool = True,
    ) -> None:
        self.name = name
        self.formal_rel = formal_rel
        self.rel_type = rel_type
        self.result_type = result_type
        self.body = body
        self.params = tuple(params)
        self.positivity_checked = check_positivity
        self._validate_shape()
        if check_positivity:
            violations = definition_violations(self)
            if violations:
                detail = "; ".join(
                    f"{v.name} under {v.nots} NOT(s) and {v.alls} ALL(s)"
                    for v in violations
                )
                raise PositivityError(
                    f"constructor {name} violates the positivity constraint: {detail}"
                )

    # -- shape validation -----------------------------------------------------

    def _validate_shape(self) -> None:
        result = self.result_type.element
        for i, branch in enumerate(self.body.branches):
            if branch.targets is None:
                if len(branch.bindings) != 1:
                    raise SchemaError(
                        f"constructor {self.name}, branch {i}: identity branches "
                        f"must bind exactly one variable"
                    )
                # Identity branches over the formal base must be positionally
                # compatible with the result; other ranges are checked at
                # instantiation time when their schemas are known.
                rng = branch.bindings[0].range
                if isinstance(rng, ast.RelRef) and rng.name == self.formal_rel:
                    if not self.rel_type.element.positionally_compatible(result):
                        raise SchemaError(
                            f"constructor {self.name}: base element type "
                            f"{self.rel_type.element.name} is not positionally "
                            f"compatible with result {result.name}"
                        )
            elif len(branch.targets) != result.arity:
                raise SchemaError(
                    f"constructor {self.name}, branch {i}: target list has "
                    f"{len(branch.targets)} item(s), result type {result.name} "
                    f"has arity {result.arity}"
                )

    # -- recursion structure ----------------------------------------------------

    def applications_in_body(self) -> list[ast.Constructed]:
        """Every constructor application appearing in the body."""
        return [n for n in ast.walk(self.body) if isinstance(n, ast.Constructed)]

    def is_recursive(self) -> bool:
        """True when the body applies any constructor (self or mutual)."""
        return bool(self.applications_in_body())

    # -- evaluator integration (duck-typed; see calculus.evaluator) ---------------

    def reference_value(self, evaluator, node: ast.Constructed, env):
        """Value of ``base{self(args)}`` for the reference evaluator."""
        from .api import evaluate_application

        return evaluate_application(evaluator, node, env)

    def __repr__(self) -> str:  # pragma: no cover - display only
        params = ", ".join(f"{p.name}: {p.type.name}" for p in self.params)
        return (
            f"<Constructor {self.name}({params}) FOR {self.formal_rel}: "
            f"{self.rel_type.name} -> {self.result_type.name}>"
        )


def define_constructor(
    db: Database,
    name: str,
    formal_rel: str,
    rel_type: RelationType,
    result_type: RelationType,
    body: ast.Query,
    params: Sequence[Parameter] = (),
    check_positivity: bool = True,
) -> Constructor:
    """Define a constructor and register it with the database."""
    constructor = Constructor(
        name, formal_rel, rel_type, result_type, body, params, check_positivity
    )
    db.register_constructor(constructor)
    return constructor
