"""Instantiation of constructor applications (section 3.2).

The paper defines the value of an application ``Actrel{c(...)}`` through
a system of simultaneous equations: every (transitively reachable)
application is *instantiated* — formal parameters replaced by actual
values — and becomes one fixpoint variable ``apply_j`` with one equation
``apply_j = g_j(apply_0, ..., apply_l)``.

This module builds that system:

* :class:`AppKey` canonically identifies an instantiated application by
  constructor name, substituted base range, and substituted arguments.
  Two textually different applications that substitute to the same key
  share one fixpoint variable — the "check for unifiability of the
  parameters and the base relations" of section 4, step 2.
* :func:`instantiate` walks the dependency closure, replacing every
  embedded application with an :class:`~repro.calculus.ast.ApplyVar`
  carrying its key, and returns the :class:`InstantiatedSystem` the
  fixpoint engines iterate.

Canonicalization happens innermost-first, so an application appearing in
another application's base or argument position is itself interned and
represented by its ApplyVar inside the outer key.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..calculus import ast
from ..calculus.analysis import free_tuple_vars
from ..calculus.evaluator import Env, Evaluator, RangeValue
from ..calculus.subst import substitute_params, substitute_ranges, transform
from ..errors import ArityError, DBPLError, EvaluationError, SchemaError
from ..relational import Database, Relation
from ..types import RecordType, RelationType

#: Safety valve against runaway instantiation (possible when recursive
#: applications keep growing their argument expressions).
MAX_APPLICATIONS = 512


@dataclass(frozen=True)
class AppKey:
    """Canonical identity of one instantiated constructor application."""

    constructor: str
    base: ast.RangeExpr
    args: tuple = ()

    def describe(self) -> str:
        from ..calculus.pretty import render_range

        base = render_range(self.base)
        if not self.args:
            return f"{base}{{{self.constructor}}}"
        rendered = []
        for arg in self.args:
            if isinstance(arg, ast.Const):
                rendered.append(repr(arg.value))
            else:
                rendered.append(render_range(arg))
        return f"{base}{{{self.constructor}({', '.join(rendered)})}}"


@dataclass
class InstantiatedApp:
    """One equation ``apply = g(...)`` of the fixpoint system."""

    key: AppKey
    body: ast.Query
    result_type: RelationType

    @property
    def element_type(self) -> RecordType:
        return self.result_type.element


@dataclass
class InstantiatedSystem:
    """The complete system of equations for one root application."""

    root: AppKey
    apps: dict[AppKey, InstantiatedApp]

    def __len__(self) -> int:
        return len(self.apps)

    def describe(self) -> str:
        lines = [f"root: {self.root.describe()}"]
        for key in self.apps:
            marker = "*" if key == self.root else " "
            lines.append(f" {marker} {key.describe()}")
        return "\n".join(lines)


def base_relation_names(db: Database, system: InstantiatedSystem) -> frozenset[str]:
    """The stored relations the instantiated system actually reads.

    The union of every relation name referenced by any equation body or
    by any application key (base ranges and relation-valued arguments),
    filtered to names that exist in ``db``.  This is the staleness scope
    of a fixpoint observation: mutating any *other* relation cannot
    change the system's value.
    """
    from ..calculus.analysis import free_range_names

    names: set[str] = set()
    for key, app in system.apps.items():
        names |= free_range_names(app.body)
        names |= free_range_names(key.base)
        for arg in key.args:
            if isinstance(arg, _RANGE_NODES):
                names |= free_range_names(arg)
    return frozenset(name for name in names if name in db.relations)


# ---------------------------------------------------------------------------
# Canonicalization of application expressions
# ---------------------------------------------------------------------------

_RANGE_NODES = (ast.RelRef, ast.Selected, ast.Constructed, ast.QueryRange, ast.ApplyVar)


def canonicalize_range(
    rexpr: ast.RangeExpr,
    evaluator: Evaluator | None = None,
    env: Env | None = None,
) -> ast.RangeExpr:
    """Resolve formal-parameter references inside an application expression.

    Scalar arguments are evaluated to constants; relation-valued formal
    names are rewritten to the named relations they are bound to.  The
    result contains only database names, constants, and structure — a
    canonical key component.
    """
    env = env or {}
    params = evaluator.params if evaluator is not None else {}

    def canon(rng: ast.RangeExpr) -> ast.RangeExpr:
        if isinstance(rng, ast.RelRef):
            if rng.name in params:
                value = params[rng.name]
                if isinstance(value, Relation):
                    return ast.RelRef(value.name)
                raise EvaluationError(
                    f"cannot canonicalize range parameter {rng.name!r}: bound to "
                    f"an anonymous value; pass a named Relation instead"
                )
            return rng
        if isinstance(rng, ast.Selected):
            return ast.Selected(canon(rng.base), rng.selector, canon_args(rng.args))
        if isinstance(rng, ast.Constructed):
            return ast.Constructed(canon(rng.base), rng.constructor, canon_args(rng.args))
        if isinstance(rng, ast.QueryRange):
            if free_tuple_vars(rng.query):
                raise EvaluationError(
                    "correlated inline queries are not supported in "
                    "constructor application position"
                )
            scalar_map = {
                name: ast.Const(value)
                for name, value in params.items()
                if not isinstance(value, (Relation, RangeValue))
            }
            range_map = {
                name: ast.RelRef(value.name)
                for name, value in params.items()
                if isinstance(value, Relation)
            }
            query = substitute_params(rng.query, scalar_map)
            query = substitute_ranges(query, range_map)
            return ast.QueryRange(query)  # type: ignore[arg-type]
        if isinstance(rng, ast.ApplyVar):
            return rng
        raise EvaluationError(f"not a range expression: {rng!r}")

    def canon_args(args: tuple[ast.Argument, ...]) -> tuple[ast.Argument, ...]:
        out: list[ast.Argument] = []
        for arg in args:
            if isinstance(arg, _RANGE_NODES):
                out.append(canon(arg))
            elif isinstance(arg, ast.Const):
                out.append(arg)
            else:
                if evaluator is None:
                    raise EvaluationError(
                        f"scalar argument {arg!r} must be a constant when no "
                        f"evaluator context is available"
                    )
                out.append(ast.Const(evaluator.eval_term(arg, env)))
        return tuple(out)

    return canon(rexpr)


# ---------------------------------------------------------------------------
# System construction
# ---------------------------------------------------------------------------


def _static_schema(db: Database, rexpr: ast.RangeExpr) -> RecordType:
    """Schema of a canonical range expression, without evaluation."""
    if isinstance(rexpr, ast.RelRef):
        return db.relation(rexpr.name).element_type
    if isinstance(rexpr, ast.Selected):
        return _static_schema(db, rexpr.base)
    if isinstance(rexpr, ast.Constructed):
        return db.constructor(rexpr.constructor).result_type.element
    if isinstance(rexpr, ast.ApplyVar):
        return rexpr.schema
    if isinstance(rexpr, ast.QueryRange):
        branch = rexpr.query.branches[0]
        if branch.targets is None:
            return _static_schema(db, branch.bindings[0].range)
        raise SchemaError(
            "cannot statically infer the schema of a projecting inline query "
            "in constructor application position"
        )
    raise SchemaError(f"not a range expression: {rexpr!r}")


def _intern_applications(
    node: ast.Node, db: Database, discovered: dict[AppKey, None]
) -> ast.Node:
    """Replace every Constructed range with an ApplyVar, recording keys."""

    def rule(n: ast.Node) -> ast.Node | None:
        if isinstance(n, ast.Constructed):
            key = AppKey(n.constructor, n.base, n.args)
            constructor = db.constructor(n.constructor)
            discovered.setdefault(key)
            return ast.ApplyVar(key, constructor.result_type.element)
        return None

    return transform(node, rule)


def instantiate(
    db: Database,
    application: ast.Constructed,
    evaluator: Evaluator | None = None,
    env: Env | None = None,
    max_applications: int = MAX_APPLICATIONS,
) -> InstantiatedSystem:
    """Build the fixpoint system for ``application`` (section 3.2)."""
    canonical = canonicalize_range(application, evaluator, env)
    discovered: dict[AppKey, None] = {}
    root_node = _intern_applications(canonical, db, discovered)
    if not isinstance(root_node, ast.ApplyVar):
        raise DBPLError("instantiate() requires a constructor application")
    root_key: AppKey = root_node.token  # type: ignore[assignment]

    apps: dict[AppKey, InstantiatedApp] = {}
    while len(apps) < len(discovered):
        if len(discovered) > max_applications:
            raise DBPLError(
                f"constructor instantiation exceeded {max_applications} "
                f"applications; recursive parameter growth?"
            )
        key = next(k for k in discovered if k not in apps)
        apps[key] = _instantiate_one(db, key, discovered)
    return InstantiatedSystem(root_key, apps)


def _instantiate_one(
    db: Database, key: AppKey, discovered: dict[AppKey, None]
) -> InstantiatedApp:
    constructor = db.constructor(key.constructor)
    if len(key.args) != len(constructor.params):
        raise ArityError(
            f"constructor {constructor.name} expects {len(constructor.params)} "
            f"argument(s), got {len(key.args)}"
        )
    range_map: dict[str, ast.RangeExpr] = {constructor.formal_rel: key.base}
    scalar_map: dict[str, ast.Term] = {}
    for formal, actual in zip(constructor.params, key.args):
        if formal.is_relation:
            if not isinstance(actual, _RANGE_NODES):
                raise ArityError(
                    f"constructor {constructor.name}: parameter {formal.name} "
                    f"is relation-typed but got {actual!r}"
                )
            range_map[formal.name] = actual
        else:
            if not isinstance(actual, ast.Const):
                raise ArityError(
                    f"constructor {constructor.name}: parameter {formal.name} "
                    f"is scalar but got {actual!r}"
                )
            formal.type.check(actual.value, context=f"{constructor.name}({formal.name})")
            scalar_map[formal.name] = actual

    body = substitute_ranges(constructor.body, range_map)
    body = substitute_params(body, scalar_map)
    body = _intern_applications(body, db, discovered)
    _check_identity_branches(db, constructor, body)
    return InstantiatedApp(key, body, constructor.result_type)  # type: ignore[arg-type]


def _check_identity_branches(
    db: Database, constructor, body: ast.Query
) -> None:
    """Identity branches must be positionally compatible with the result."""
    result = constructor.result_type.element
    for branch in body.branches:
        if branch.targets is not None:
            continue
        schema = _static_schema(db, branch.bindings[0].range)
        if not schema.positionally_compatible(result):
            raise SchemaError(
                f"constructor {constructor.name}: identity branch over "
                f"{schema.name} is not positionally compatible with result "
                f"type {result.name}"
            )
