"""High-level constructor evaluation API.

:func:`construct` is the user-facing entry point: given a database and a
constructor application (built with the DSL or parsed from DBPL text), it
instantiates the fixpoint system, picks an engine, enforces the paper's
positivity discipline, and returns the constructed relation together
with the fixpoint statistics the benchmarks report.

Engine selection (``mode``):

* ``"auto"``       — semi-naive when the instantiated system is eligible,
                     otherwise naive (the compiler's choice);
* ``"seminaive"``  — force differential evaluation (raises if ineligible);
* ``"naive"``      — force the literal section 3.2 iteration.

Positivity (``allow_nonmonotonic``):

* ``False`` (default) — the instantiated system must be positive, as the
  DBPL compiler requires; otherwise :class:`~repro.errors.PositivityError`.
  (Definitions are *also* checked at definition time unless created with
  ``check_positivity=False``.)
* ``True`` — iterate anyway, naive engine, with oscillation detection:
  the ``strange`` constructor converges to its limit, while ``nonsense``
  raises :class:`~repro.errors.ConvergenceError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..calculus import ast
from ..calculus.evaluator import Env, Evaluator, RangeValue
from ..errors import PositivityError
from ..relational import Database, Relation
from ..types import RecordType, RelationType
from .engines import (
    DEFAULT_MAX_ITERATIONS,
    FixpointStats,
    Values,
    iterate_steps,
    naive_fixpoint,
    seminaive_eligible,
    seminaive_fixpoint,
)
from .instantiate import AppKey, InstantiatedSystem, instantiate
from .positivity import is_system_positive, system_violations


@dataclass
class ConstructionResult:
    """The value of one constructor application plus evaluation evidence."""

    rows: frozenset
    result_type: RelationType
    stats: FixpointStats
    system: InstantiatedSystem
    values: Values

    @property
    def schema(self) -> RecordType:
        return self.result_type.element

    def as_relation(self, name: str) -> Relation:
        """Materialize the result as a (keyless) relation value."""
        return Relation(name, self.result_type.keyless(), self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, row: tuple) -> bool:
        return row in self.rows


def construct(
    db: Database,
    application: ast.Constructed,
    params: dict[str, object] | None = None,
    mode: str = "auto",
    allow_nonmonotonic: bool = False,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> ConstructionResult:
    """Evaluate ``base{constructor(args)}`` to its least (or limit) value."""
    evaluator = Evaluator(db, params=params) if params else Evaluator(db)
    system = instantiate(db, application, evaluator)
    return solve_system(
        db,
        system,
        mode=mode,
        allow_nonmonotonic=allow_nonmonotonic,
        max_iterations=max_iterations,
    )


def solve_system(
    db: Database,
    system: InstantiatedSystem,
    mode: str = "auto",
    allow_nonmonotonic: bool = False,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> ConstructionResult:
    """Run the fixpoint engines over an already-instantiated system."""
    stats = FixpointStats()
    positive = is_system_positive(system)
    if not positive:
        if not allow_nonmonotonic:
            detail = "; ".join(
                f"{occ.name.describe() if isinstance(occ.name, AppKey) else occ.name} "
                f"under {occ.nots} NOT(s) and {occ.alls} ALL(s)"
                for occ in system_violations(system)[:3]
            )
            raise PositivityError(
                f"instantiated system for {system.root.describe()} is not "
                f"positive: {detail}"
            )
        values = naive_fixpoint(
            db, system, max_iterations, history_detection=True, stats=stats
        )
        stats.mode = "naive+history"
    elif mode == "naive":
        values = naive_fixpoint(db, system, max_iterations, stats=stats)
    elif mode == "seminaive":
        values = seminaive_fixpoint(db, system, max_iterations, stats=stats)
    elif mode == "auto":
        if seminaive_eligible(system):
            values = seminaive_fixpoint(db, system, max_iterations, stats=stats)
        else:
            values = naive_fixpoint(db, system, max_iterations, stats=stats)
    else:
        raise ValueError(f"unknown engine mode {mode!r}")

    root_app = system.apps[system.root]
    return ConstructionResult(
        rows=values[system.root],
        result_type=root_app.result_type,
        stats=stats,
        system=system,
        values=values,
    )


def construct_bounded(
    db: Database,
    application: ast.Constructed,
    steps: int,
    params: dict[str, object] | None = None,
) -> ConstructionResult:
    """The bounded sequence apply^steps — the paper's ahead_n (section 3.1).

    No convergence or positivity is required: this is the finite prefix
    of the iteration, whose limit (when it exists) is the constructed
    value.  ``construct_bounded(db, app, n)`` for growing n reproduces
    ``Infront{ahead} = lim Infront{ahead_n}``.
    """
    evaluator = Evaluator(db, params=params) if params else Evaluator(db)
    system = instantiate(db, application, evaluator)
    stats = FixpointStats()
    values = iterate_steps(db, system, steps, stats=stats)
    root_app = system.apps[system.root]
    return ConstructionResult(
        rows=frozenset(values[system.root]),
        result_type=root_app.result_type,
        stats=stats,
        system=system,
        values=values,
    )


def evaluate_application(
    evaluator: Evaluator, node: ast.Constructed, env: Env
) -> RangeValue:
    """Reference-evaluator hook for constructed ranges inside queries.

    Uses the naive engine (the semantic reference).  Positivity is
    enforced exactly as in :func:`construct`.
    """
    system = instantiate(evaluator.db, node, evaluator, env)
    result = solve_system(evaluator.db, system, mode="naive")
    return RangeValue(result.rows, result.schema)


def apply_constructor(
    db: Database,
    base: str,
    constructor: str,
    *args: object,
    params: dict[str, object] | None = None,
    mode: str = "auto",
    allow_nonmonotonic: bool = False,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> ConstructionResult:
    """Sugar: ``apply_constructor(db, "Infront", "ahead", "Ontop")``.

    String arguments denote relation names; other values become scalar
    constants.
    """
    arg_nodes: list[ast.Argument] = []
    for arg in args:
        if isinstance(arg, str) and arg in db:
            arg_nodes.append(ast.RelRef(arg))
        elif isinstance(arg, (ast.RelRef, ast.Selected, ast.Constructed, ast.QueryRange)):
            arg_nodes.append(arg)
        else:
            arg_nodes.append(ast.Const(arg))
    node = ast.Constructed(ast.RelRef(base), constructor, tuple(arg_nodes))
    return construct(
        db,
        node,
        params=params,
        mode=mode,
        allow_nonmonotonic=allow_nonmonotonic,
        max_iterations=max_iterations,
    )
