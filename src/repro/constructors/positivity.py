"""Positivity checking for constructor definitions and instantiated systems.

Section 3.3 of the paper: a constructor is accepted by the DBPL compiler
only when every occurrence of a recursive relation name in its body lies
under an even total of NOTs and ALLs; the accompanying lemma shows such
bodies are monotone, so the fixpoint iteration converges.

Two granularities are provided:

* :func:`definition_violations` — the *compile-time* check on a single
  definition: the formal base relation, every relation-typed parameter,
  and every embedded constructor application must occur positively.
  (Any of these may carry recursive values once instantiated, so the
  compiler must treat them all as potentially recursive.)

* :func:`system_violations` — the *instantiation-time* check on a system
  of equations: every ApplyVar token must occur positively in every
  body.  This is the check the fixpoint engines trust.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..calculus import ast
from ..calculus.analysis import Occurrence

if TYPE_CHECKING:  # pragma: no cover
    from .definition import Constructor
    from .instantiate import InstantiatedSystem


def _constructed_occurrences(node: ast.Node) -> list[Occurrence]:
    """Occurrences of embedded constructor applications with NOT/ALL depth.

    Mirrors the traversal of :func:`repro.calculus.analysis.range_occurrences`
    but records :class:`~repro.calculus.ast.Constructed` nodes themselves
    (named by their constructor) rather than relation names.
    """
    out: list[Occurrence] = []

    def visit_range(rng: ast.RangeExpr, nots: int, alls: int) -> None:
        if isinstance(rng, ast.Constructed):
            out.append(Occurrence(rng.constructor, nots, alls, rng))
            visit_range(rng.base, nots, alls)
            for arg in rng.args:
                if isinstance(arg, (ast.RelRef, ast.Selected, ast.Constructed, ast.QueryRange)):
                    visit_range(arg, nots, alls)
        elif isinstance(rng, ast.Selected):
            visit_range(rng.base, nots, alls)
            for arg in rng.args:
                if isinstance(arg, (ast.RelRef, ast.Selected, ast.Constructed, ast.QueryRange)):
                    visit_range(arg, nots, alls)
        elif isinstance(rng, ast.QueryRange):
            visit_query(rng.query, nots, alls)

    def visit_pred(pred: ast.Pred, nots: int, alls: int) -> None:
        if isinstance(pred, ast.Not):
            visit_pred(pred.pred, nots + 1, alls)
        elif isinstance(pred, (ast.And, ast.Or)):
            for part in pred.parts:
                visit_pred(part, nots, alls)
        elif isinstance(pred, ast.Some):
            visit_range(pred.range, nots, alls)
            visit_pred(pred.pred, nots, alls)
        elif isinstance(pred, ast.All):
            visit_range(pred.range, nots, alls + 1)
            visit_pred(pred.pred, nots, alls)
        elif isinstance(pred, ast.InRel):
            visit_range(pred.range, nots, alls)

    def visit_query(query: ast.Query, nots: int, alls: int) -> None:
        for branch in query.branches:
            for binding in branch.bindings:
                visit_range(binding.range, nots, alls)
            visit_pred(branch.pred, nots, alls)

    visit_query(node if isinstance(node, ast.Query) else ast.Query((node,)), 0, 0)  # type: ignore[arg-type]
    return out


def definition_violations(constructor: "Constructor") -> list[Occurrence]:
    """Odd-parity occurrences that make a definition non-positive."""
    from ..calculus.analysis import positivity_violations

    names: set[object] = {constructor.formal_rel}
    names.update(p.name for p in constructor.params if p.is_relation)
    violations = list(positivity_violations(constructor.body, names))
    violations.extend(
        occ for occ in _constructed_occurrences(constructor.body) if not occ.positive
    )
    return violations


def is_definition_positive(constructor: "Constructor") -> bool:
    return not definition_violations(constructor)


def system_violations(system: "InstantiatedSystem") -> list[Occurrence]:
    """Odd-parity occurrences of any fixpoint variable in any equation."""
    from ..calculus.analysis import positivity_violations

    tokens = set(system.apps)
    out: list[Occurrence] = []
    for app in system.apps.values():
        out.extend(positivity_violations(app.body, tokens))
    return out


def is_system_positive(system: "InstantiatedSystem") -> bool:
    return not system_violations(system)
