"""Knowledge bases for the proof-oriented engines.

A knowledge base is the PROLOG-side view of a database program: ground
facts (the extensional relations) plus definite clauses.  Clause order is
preserved — SLD resolution honours it, exactly like a 1985 PROLOG.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..datalog.ast import Program, Rule
from ..relational import Database


class KnowledgeBase:
    """Facts and rules, indexed by predicate."""

    def __init__(self) -> None:
        self.facts: dict[str, list[tuple]] = {}
        self.fact_sets: dict[str, set[tuple]] = {}
        self.rules: dict[str, list[Rule]] = {}

    # -- construction --------------------------------------------------------

    def add_fact(self, pred: str, row: tuple) -> None:
        existing = self.fact_sets.setdefault(pred, set())
        if row not in existing:
            existing.add(row)
            self.facts.setdefault(pred, []).append(row)

    def add_rule(self, rule: Rule) -> None:
        if rule.is_fact:
            self.add_fact(
                rule.head.pred,
                tuple(t.value for t in rule.head.terms),  # type: ignore[union-attr]
            )
        else:
            self.rules.setdefault(rule.head.pred, []).append(rule)

    @classmethod
    def from_program(
        cls, program: Program, edb: dict[str, Iterable[tuple]] | None = None
    ) -> "KnowledgeBase":
        kb = cls()
        for pred, rows in (edb or {}).items():
            for row in rows:
                kb.add_fact(pred, tuple(row))
        for rule in program.rules:
            kb.add_rule(rule)
        return kb

    @classmethod
    def from_database(
        cls, db: Database, program: Program | None = None
    ) -> "KnowledgeBase":
        """Facts from every database relation (predicate = lower-cased name)."""
        kb = cls()
        for name, relation in db.relations.items():
            for row in relation.raw():
                kb.add_fact(name.lower(), row)
        if program is not None:
            for rule in program.rules:
                kb.add_rule(rule)
        return kb

    # -- inspection -----------------------------------------------------------

    def predicates(self) -> set[str]:
        return set(self.facts) | set(self.rules)

    def clauses_for(self, pred: str) -> tuple[list[tuple], list[Rule]]:
        return self.facts.get(pred, []), self.rules.get(pred, [])

    def __repr__(self) -> str:  # pragma: no cover - display only
        nfacts = sum(len(v) for v in self.facts.values())
        nrules = sum(len(v) for v in self.rules.values())
        return f"<KnowledgeBase {nfacts} facts, {nrules} rules>"
