"""Unification for function-free terms.

Shared term representation with :mod:`repro.datalog.ast` (Var/Const/Atom);
substitutions are immutable-by-discipline dicts from variable names to
terms.  With no function symbols there is no occurs-check concern and
every walk chain terminates.
"""

from __future__ import annotations

from ..datalog.ast import Atom, Const, Term, Var

Subst = dict[str, Term]


def walk(term: Term, subst: Subst) -> Term:
    """Follow variable bindings until a constant or free variable."""
    while isinstance(term, Var):
        bound = subst.get(term.name)
        if bound is None:
            return term
        term = bound
    return term


def unify_terms(a: Term, b: Term, subst: Subst) -> Subst | None:
    """Most general unifier extending ``subst``, or None."""
    a = walk(a, subst)
    b = walk(b, subst)
    if isinstance(a, Const) and isinstance(b, Const):
        return subst if a.value == b.value else None
    if isinstance(a, Var):
        if isinstance(b, Var) and a.name == b.name:
            return subst
        out = dict(subst)
        out[a.name] = b
        return out
    if isinstance(b, Var):
        out = dict(subst)
        out[b.name] = a
        return out
    return None


def unify_atoms(a: Atom, b: Atom, subst: Subst) -> Subst | None:
    """Unify two atoms (same predicate and arity required)."""
    if a.pred != b.pred or a.arity != b.arity:
        return None
    current: Subst | None = subst
    for ta, tb in zip(a.terms, b.terms):
        current = unify_terms(ta, tb, current)
        if current is None:
            return None
    return current


def resolve_atom(atom: Atom, subst: Subst) -> Atom:
    """Apply a substitution to an atom."""
    return Atom(atom.pred, tuple(walk(t, subst) for t in atom.terms))


def ground_tuple(atom: Atom, subst: Subst) -> tuple | None:
    """The constant tuple of a fully instantiated atom, else None."""
    values = []
    for term in atom.terms:
        term = walk(term, subst)
        if not isinstance(term, Const):
            return None
        values.append(term.value)
    return tuple(values)


def rename_apart(atom_or_rule, suffix: str):
    """Rename all variables with a unique suffix (standardizing apart)."""
    from ..datalog.ast import Comparison, Rule

    def rn_term(term: Term) -> Term:
        if isinstance(term, Var):
            return Var(f"{term.name}#{suffix}")
        return term

    def rn_atom(atom: Atom) -> Atom:
        return Atom(atom.pred, tuple(rn_term(t) for t in atom.terms))

    if isinstance(atom_or_rule, Atom):
        return rn_atom(atom_or_rule)
    if isinstance(atom_or_rule, Comparison):
        return Comparison(atom_or_rule.op, rn_term(atom_or_rule.left), rn_term(atom_or_rule.right))
    if isinstance(atom_or_rule, Rule):
        return Rule(
            rn_atom(atom_or_rule.head),
            tuple(rename_apart(lit, suffix) for lit in atom_or_rule.body),
        )
    raise TypeError(f"cannot rename {atom_or_rule!r}")
