"""Tabled (memoized) top-down evaluation: QSQ-style "tuple-at-a-time cycling".

The paper's section 4 lists, among the evaluation options for recursive
cycles, "a tuple-at-a-time cycling [McSh 81]" — top-down proof search
that records answers per subgoal and iterates until the answer tables
stabilize.  This engine implements that idea:

* subgoals are canonicalized to *binding patterns* — constants in bound
  argument positions, None elsewhere — so proof effort is shared across
  identical calls and restricted to goal-relevant facts (the same
  relevance property magic-set rewriting gives bottom-up engines);
* within one round a subgoal is expanded once; recursive calls read the
  current table; an outer cycling loop repeats rounds until no table
  grows, guaranteeing termination on cyclic data where plain SLD loops.

It is the strongest proof-oriented baseline in the benchmark suite:
goal-directed like SLD, terminating like the fixpoint engines.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from itertools import count

from ..datalog.ast import Atom, Comparison, Const, Var
from ..errors import ConvergenceError, EvaluationError
from .kb import KnowledgeBase
from .sld import _CMP
from .unify import Subst, ground_tuple, rename_apart, unify_atoms, walk

#: A binding pattern: constants where the call is bound, None where free.
Pattern = tuple


@dataclass
class TabledStats:
    """Effort counters for the tabled engine."""

    rounds: int = 0
    subgoals: int = 0
    expansions: int = 0
    resolution_steps: int = 0
    table_hits: int = 0
    answers: int = 0


class TabledEngine:
    """Memoized top-down evaluation over a knowledge base."""

    def __init__(self, kb: KnowledgeBase, max_rounds: int = 10_000) -> None:
        self.kb = kb
        self.max_rounds = max_rounds
        self.stats = TabledStats()
        self.tables: dict[tuple[str, Pattern], set[tuple]] = {}
        self._rename = count()
        # Subgoal expansion recurses one Python frame per distinct subgoal
        # along a derivation chain; deep chains need a deep stack.
        if sys.getrecursionlimit() < 100_000:
            sys.setrecursionlimit(100_000)

    # -- pattern handling ------------------------------------------------------

    @staticmethod
    def _pattern_of(atom: Atom, subst: Subst) -> Pattern:
        values = []
        for term in atom.terms:
            term = walk(term, subst)
            values.append(term.value if isinstance(term, Const) else None)
        return tuple(values)

    @staticmethod
    def _matches(row: tuple, pattern: Pattern) -> bool:
        return all(p is None or p == v for p, v in zip(pattern, row))

    # -- evaluation ---------------------------------------------------------------

    def all_answers(self, goal: Atom) -> set[tuple]:
        """All ground instances of ``goal``, computed with tabling."""
        pattern = self._pattern_of(goal, {})
        subgoal = (goal.pred, pattern)
        for _ in range(self.max_rounds):
            self.stats.rounds += 1
            self._changed = False
            self._expanded: set[tuple[str, Pattern]] = set()
            self._in_progress: set[tuple[str, Pattern]] = set()
            self._expand(subgoal)
            if not self._changed:
                break
        else:
            raise ConvergenceError(
                f"tabled evaluation did not stabilize in {self.max_rounds} rounds"
            )
        answers = self.tables.get(subgoal, set())
        # Post-filter for repeated variables in the goal (p(X, X)).
        out: set[tuple] = set()
        for row in answers:
            subst = unify_atoms(goal, Atom(goal.pred, tuple(Const(v) for v in row)), {})
            if subst is not None:
                out.add(row)
        self.stats.answers = len(out)
        return out

    def _expand(self, subgoal: tuple[str, Pattern]) -> None:
        if subgoal in self._in_progress or subgoal in self._expanded:
            self.stats.table_hits += 1
            return
        if subgoal not in self.tables:
            self.tables[subgoal] = set()
            self.stats.subgoals += 1
        self._expanded.add(subgoal)
        self._in_progress.add(subgoal)
        self.stats.expansions += 1
        pred, pattern = subgoal
        table = self.tables[subgoal]

        facts, rules = self.kb.clauses_for(pred)
        for row in facts:
            if self._matches(row, pattern):
                if row not in table:
                    table.add(row)
                    self._changed = True

        call_atom = Atom(
            pred,
            tuple(Const(v) if v is not None else Var(f"_A{i}") for i, v in enumerate(pattern)),
        )
        for rule in rules:
            renamed = rename_apart(rule, str(next(self._rename)))
            subst = unify_atoms(call_atom, renamed.head, {})
            if subst is None:
                continue
            self._solve_body(renamed.head, renamed.body, subst, table)
        self._in_progress.discard(subgoal)

    def _solve_body(
        self, head: Atom, body: tuple, subst: Subst, table: set[tuple]
    ) -> None:
        self.stats.resolution_steps += 1
        if not body:
            row = ground_tuple(head, subst)
            if row is None:
                raise EvaluationError(
                    f"tabled answer for {head} is not ground (unsafe rule?)"
                )
            if row not in table:
                table.add(row)
                self._changed = True
            return
        lit, rest = body[0], body[1:]
        if isinstance(lit, Comparison):
            left = walk(lit.left, subst)
            right = walk(lit.right, subst)
            if not (isinstance(left, Const) and isinstance(right, Const)):
                raise EvaluationError(f"comparison {lit} with unbound variables")
            if _CMP[lit.op](left.value, right.value):
                self._solve_body(head, rest, subst, table)
            return
        sub_pattern = self._pattern_of(lit, subst)
        subgoal = (lit.pred, sub_pattern)
        if lit.pred in self.kb.rules:
            self._expand(subgoal)
            answers = self.tables.get(subgoal, set())
        else:
            # Pure EDB predicate: read the facts directly.
            answers = {
                row
                for row in self.kb.facts.get(lit.pred, [])
                if self._matches(row, sub_pattern)
            }
        for row in answers:
            extended = unify_atoms(
                lit, Atom(lit.pred, tuple(Const(v) for v in row)), subst
            )
            if extended is not None:
                self._solve_body(head, rest, extended, table)
