"""Proof-oriented engines: SLD resolution and tabled top-down evaluation."""

from .kb import KnowledgeBase
from .sld import DEFAULT_MAX_DEPTH, DepthLimitExceeded, SLDEngine, SLDStats
from .tabling import TabledEngine, TabledStats
from .unify import ground_tuple, rename_apart, unify_atoms, unify_terms, walk

__all__ = [
    "DEFAULT_MAX_DEPTH",
    "DepthLimitExceeded",
    "KnowledgeBase",
    "SLDEngine",
    "SLDStats",
    "TabledEngine",
    "TabledStats",
    "ground_tuple",
    "rename_apart",
    "unify_atoms",
    "unify_terms",
    "walk",
]
