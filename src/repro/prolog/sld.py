"""SLD resolution: the tuple-at-a-time, proof-oriented comparator.

This is the evaluation model the paper positions constructors *against*:
depth-first, left-to-right, clause-order resolution — PROLOG's strategy
(without cut/fail/negation, per the section 3.4 fragment).  Two
era-faithful properties matter for the experiments:

* on recursive queries it re-derives the same subgoals over and over
  (no memoization), which is what the set-oriented engines avoid;
* on **cyclic** data a recursive program does not terminate; the engine
  enforces a depth budget and raises :class:`DepthLimitExceeded`,
  reproducing the paper's observation that the fixpoint approach
  "seems to be more practical because the problem of endless loops is
  eliminated".

``solve`` enumerates answer substitutions lazily; ``all_answers``
collects the ground instances of a goal.
"""

from __future__ import annotations

import sys
from collections.abc import Iterator
from dataclasses import dataclass
from itertools import count

from ..datalog.ast import Atom, Comparison, Const, Literal
from ..errors import DBPLError, EvaluationError
from .kb import KnowledgeBase
from .unify import Subst, ground_tuple, rename_apart, unify_atoms, walk

DEFAULT_MAX_DEPTH = 10_000


class DepthLimitExceeded(DBPLError):
    """SLD resolution exceeded its depth budget (probable endless loop)."""


@dataclass
class SLDStats:
    """Proof-effort counters: the tuple-at-a-time cost the paper contrasts
    with set-oriented evaluation."""

    resolution_steps: int = 0
    unifications: int = 0
    fact_matches: int = 0
    answers: int = 0
    max_depth_seen: int = 0


_CMP = {
    "=": lambda a, b: a == b,
    "\\=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "=<": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class SLDEngine:
    """A minimal PROLOG machine over a knowledge base."""

    def __init__(
        self, kb: KnowledgeBase, max_depth: int = DEFAULT_MAX_DEPTH
    ) -> None:
        self.kb = kb
        self.max_depth = max_depth
        self.stats = SLDStats()
        self._rename = count()
        # Resolution recurses one Python frame per goal; make sure the
        # interpreter's limit is not hit before our own depth budget.
        needed = max_depth * 6 + 1000
        if sys.getrecursionlimit() < needed:
            sys.setrecursionlimit(needed)

    # -- resolution -----------------------------------------------------------

    def solve(
        self, goals: tuple[Literal, ...], subst: Subst | None = None, depth: int = 0
    ) -> Iterator[Subst]:
        """Enumerate substitutions proving all ``goals`` (left to right)."""
        subst = subst or {}
        if depth > self.stats.max_depth_seen:
            self.stats.max_depth_seen = depth
        if depth > self.max_depth:
            raise DepthLimitExceeded(
                f"SLD resolution exceeded depth {self.max_depth}; the goal "
                f"probably loops (cyclic data under a recursive program)"
            )
        if not goals:
            yield subst
            return
        goal, rest = goals[0], goals[1:]
        self.stats.resolution_steps += 1

        if isinstance(goal, Comparison):
            left = walk(goal.left, subst)
            right = walk(goal.right, subst)
            if not (isinstance(left, Const) and isinstance(right, Const)):
                raise EvaluationError(
                    f"comparison {goal} reached with unbound variables"
                )
            if _CMP[goal.op](left.value, right.value):
                yield from self.solve(rest, subst, depth)
            return

        facts, rules = self.kb.clauses_for(goal.pred)
        # PROLOG order: facts (unit clauses) in assertion order, then rules.
        for fact in facts:
            self.stats.fact_matches += 1
            candidate = unify_atoms(
                goal, Atom(goal.pred, tuple(Const(v) for v in fact)), subst
            )
            self.stats.unifications += 1
            if candidate is not None:
                yield from self.solve(rest, candidate, depth)
        for rule in rules:
            renamed = rename_apart(rule, str(next(self._rename)))
            self.stats.unifications += 1
            candidate = unify_atoms(goal, renamed.head, subst)
            if candidate is not None:
                yield from self.solve(renamed.body + rest, candidate, depth + 1)

    # -- convenience ---------------------------------------------------------------

    def all_answers(self, goal: Atom) -> set[tuple]:
        """All ground instances of ``goal`` provable from the KB."""
        out: set[tuple] = set()
        try:
            for subst in self.solve((goal,)):
                row = ground_tuple(goal, subst)
                if row is None:
                    raise EvaluationError(
                        f"answer to {goal} is not ground "
                        f"(non-range-restricted rule?)"
                    )
                out.add(row)
                self.stats.answers += 1
        except RecursionError:
            raise DepthLimitExceeded(
                "SLD resolution exhausted the interpreter stack; the goal "
                "probably loops (cyclic data under a recursive program)"
            ) from None
        return out

    def prove(self, goal: Atom) -> bool:
        """True when at least one proof of ``goal`` exists."""
        for _ in self.solve((goal,)):
            return True
        return False
