"""Hash indexes over relation contents.

The paper's runtime level (section 4) generates *physical access paths*
— materialized partitions of a relation keyed by the constant values a
query restricts on.  :class:`HashIndex` is the underlying mechanism: a
dict from key projection to the set of matching rows.  Indexes are built
lazily and cached per (relation version, attribute positions); any
mutation of the relation invalidates the cache.
"""

from __future__ import annotations

from collections.abc import Iterable


class HashIndex:
    """A hash partition of a row set on a tuple of attribute positions."""

    __slots__ = (
        "positions",
        "buckets",
        "_total_rows",
        "_max_bucket_rows",
        "_scalar",
    )

    def __init__(self, positions: tuple[int, ...], rows: Iterable[tuple]) -> None:
        self.positions = positions
        buckets: dict[tuple, list[tuple]] = {}
        total = 0
        heaviest = 0
        for row in rows:
            key = tuple(row[i] for i in positions)
            bucket = buckets.setdefault(key, [])
            bucket.append(row)
            total += 1
            if len(bucket) > heaviest:
                heaviest = len(bucket)
        self.buckets = buckets
        # Buckets are immutable after build (the cache rebuilds on any
        # relation version change), so the planner's skew probe is O(1).
        self._total_rows = total
        self._max_bucket_rows = heaviest
        self._scalar: dict | None = None

    def lookup(self, key: tuple) -> list[tuple]:
        """All rows whose projection on ``positions`` equals ``key``."""
        return self.buckets.get(key, _EMPTY)

    def scalar_buckets(self) -> dict:
        """Buckets keyed by the bare value of a single-position key.

        The batched executor probes this view so a one-column join needs
        no key-tuple allocation per probe; built lazily, once per index.
        """
        if self._scalar is None:
            self._scalar = {key[0]: rows for key, rows in self.buckets.items()}
        return self._scalar

    def probe_table(self, scalar: bool = False) -> dict:
        """The grouped-probe view of the index: a bucket dict fetched
        once per batch and then tested per distinct key (``key in
        probe_table`` for semi-join verdicts, ``probe_table.get`` for
        the generated join kernels' C-level ``map`` probes).
        ``scalar=True`` answers with the bare-value view of a
        single-position index."""
        return self.scalar_buckets() if scalar else self.buckets

    def keys(self) -> Iterable[tuple]:
        return self.buckets.keys()

    def __len__(self) -> int:
        return len(self.buckets)

    # -- planner statistics -------------------------------------------------

    def selectivity(self) -> float:
        """Average fraction of the rows one key lookup returns.

        This is the *measured* equality selectivity of the indexed key —
        exactly ``1 / distinct_keys`` — which the cost model prefers over
        the independence-assumption product when an index already exists.
        """
        return 1.0 / len(self.buckets) if self.buckets else 1.0

    def max_bucket_fraction(self) -> float:
        """Fraction of all rows sitting in the heaviest bucket.

        The skew signal of the indexed key: probes in a join tend to land
        on heavy values more often than the uniform ``1/distinct``
        average predicts, so the cost model blends this in exactly as
        :meth:`~repro.relational.stats.TableStats.eq_selectivity` does
        for un-indexed columns.
        """
        if self._total_rows <= 0:
            return 0.0
        return self._max_bucket_rows / self._total_rows


_EMPTY: list[tuple] = []


class IndexCache:
    """Per-relation cache of hash indexes, invalidated by version stamps."""

    __slots__ = ("_version", "_indexes")

    def __init__(self) -> None:
        self._version = -1
        self._indexes: dict[tuple[int, ...], HashIndex] = {}

    def get(
        self,
        version: int,
        positions: tuple[int, ...],
        rows: Iterable[tuple],
    ) -> HashIndex:
        """Return (building if necessary) the index for ``positions``."""
        if version != self._version:
            self._indexes.clear()
            self._version = version
        index = self._indexes.get(positions)
        if index is None:
            index = HashIndex(positions, rows)
            self._indexes[positions] = index
        return index

    def peek(self, version: int, positions: tuple[int, ...]) -> HashIndex | None:
        """An already-built, still-valid index — never builds one.

        Lets the cost model consult measured index selectivities for free
        without forcing index construction during planning.
        """
        if version != self._version:
            return None
        return self._indexes.get(positions)
