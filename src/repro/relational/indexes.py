"""Hash indexes over relation contents.

The paper's runtime level (section 4) generates *physical access paths*
— materialized partitions of a relation keyed by the constant values a
query restricts on.  :class:`HashIndex` is the underlying mechanism: a
dict from key projection to the set of matching rows.  Indexes are built
lazily and cached per (relation version, attribute positions); any
mutation of the relation invalidates the cache.
"""

from __future__ import annotations

from collections.abc import Iterable


class HashIndex:
    """A hash partition of a row set on a tuple of attribute positions."""

    __slots__ = (
        "positions",
        "buckets",
        "_total_rows",
        "_max_bucket_rows",
        "_scalar",
    )

    def __init__(self, positions: tuple[int, ...], rows: Iterable[tuple]) -> None:
        self.positions = positions
        buckets: dict[tuple, list[tuple]] = {}
        total = 0
        heaviest = 0
        for row in rows:
            key = tuple(row[i] for i in positions)
            bucket = buckets.setdefault(key, [])
            bucket.append(row)
            total += 1
            if len(bucket) > heaviest:
                heaviest = len(bucket)
        self.buckets = buckets
        # Buckets are immutable after build (the cache rebuilds on any
        # relation version change), so the planner's skew probe is O(1).
        self._total_rows = total
        self._max_bucket_rows = heaviest
        self._scalar: dict | None = None

    def lookup(self, key: tuple) -> list[tuple]:
        """All rows whose projection on ``positions`` equals ``key``."""
        return self.buckets.get(key, _EMPTY)

    def scalar_buckets(self) -> dict:
        """Buckets keyed by the bare value of a single-position key.

        The batched executor probes this view so a one-column join needs
        no key-tuple allocation per probe; built lazily, once per index.
        """
        if self._scalar is None:
            self._scalar = {key[0]: rows for key, rows in self.buckets.items()}
        return self._scalar

    def probe_table(self, scalar: bool = False) -> dict:
        """The grouped-probe view of the index: a bucket dict fetched
        once per batch and then tested per distinct key (``key in
        probe_table`` for semi-join verdicts, ``probe_table.get`` for
        the generated join kernels' C-level ``map`` probes).
        ``scalar=True`` answers with the bare-value view of a
        single-position index."""
        return self.scalar_buckets() if scalar else self.buckets

    def keys(self) -> Iterable[tuple]:
        return self.buckets.keys()

    def __len__(self) -> int:
        return len(self.buckets)

    # -- planner statistics -------------------------------------------------

    def selectivity(self) -> float:
        """Average fraction of the rows one key lookup returns.

        This is the *measured* equality selectivity of the indexed key —
        exactly ``1 / distinct_keys`` — which the cost model prefers over
        the independence-assumption product when an index already exists.
        """
        return 1.0 / len(self.buckets) if self.buckets else 1.0

    def max_bucket_fraction(self) -> float:
        """Fraction of all rows sitting in the heaviest bucket.

        The skew signal of the indexed key: probes in a join tend to land
        on heavy values more often than the uniform ``1/distinct``
        average predicts, so the cost model blends this in exactly as
        :meth:`~repro.relational.stats.TableStats.eq_selectivity` does
        for un-indexed columns.
        """
        if self._total_rows <= 0:
            return 0.0
        return self._max_bucket_rows / self._total_rows


_EMPTY: list[tuple] = []


class ShardView:
    """One hash partition of a row set: the rows plus lazy local indexes.

    The sharded executor hands each worker a view of its partition; a
    view builds hash indexes over *its own rows only* (so a partitioned
    build side costs ``rows/k`` per shard, not a full-relation index),
    lazily and cached for the view's lifetime.  Views are immutable
    after construction — the owning :class:`PartitionCache` rebuilds
    them wholesale when the relation's version moves.
    """

    __slots__ = ("rows", "_indexes")

    def __init__(self, rows: list[tuple]) -> None:
        self.rows = rows
        self._indexes: dict[tuple[int, ...], HashIndex] = {}

    def index_on(self, positions: tuple[int, ...]) -> HashIndex:
        index = self._indexes.get(positions)
        if index is None:
            index = HashIndex(positions, self.rows)
            self._indexes[positions] = index
        return index

    def __len__(self) -> int:
        return len(self.rows)


class SnapshotView(ShardView):
    """A version-stamped pinned view of a whole relation.

    The serving layer's snapshot reads hand plans ``(rows, index_on)``
    pairs through ``ExecutionContext.source_overrides`` — exactly the
    contract :class:`ShardView` already implements for partitions — so a
    reader keeps scanning (and index-probing) the rows that existed when
    the snapshot was taken, no matter how many writers commit meanwhile.
    The pinned list is the relation's copy-on-write row list: it is never
    mutated in place, only replaced, so the view stays valid forever.
    """

    __slots__ = ("name", "version")

    def __init__(self, rows: list[tuple], name: str, version: int) -> None:
        super().__init__(rows)
        self.name = name
        self.version = version

    def __repr__(self) -> str:  # pragma: no cover - display only
        return f"<SnapshotView {self.name}@v{self.version}: {len(self.rows)} rows>"


def partition_rows(
    rows: Iterable[tuple], positions: tuple[int, ...], k: int
) -> list[list[tuple]]:
    """Hash-partition ``rows`` into ``k`` lists on the key ``positions``.

    Empty ``positions`` partition on the whole row.  The same key always
    lands in the same partition (within one process — tuple hashing is
    seeded per interpreter), which is what lets the sharded executor
    partition a join's build and probe sides compatibly.
    """
    if k <= 1:
        return [list(rows)]
    shards: list[list[tuple]] = [[] for _ in range(k)]
    if positions:
        if len(positions) == 1:
            pos = positions[0]
            for row in rows:
                shards[hash(row[pos]) % k].append(row)
        else:
            for row in rows:
                shards[hash(tuple(row[i] for i in positions)) % k].append(row)
    else:
        for row in rows:
            shards[hash(row) % k].append(row)
    return shards


def partition_views(
    rows: Iterable[tuple], positions: tuple[int, ...], k: int
) -> tuple[ShardView, ...]:
    """``k`` :class:`ShardView`s over a hash partition of ``rows``."""
    return tuple(ShardView(part) for part in partition_rows(rows, positions, k))


class PartitionCache:
    """Per-relation cache of shard views, invalidated by version stamps.

    The sharded executor asks for the same ``(key positions, k)`` split
    on every execution — and on every fixpoint iteration — so the
    partition pass (and each shard's local indexes) must be paid once
    per relation version, exactly like :class:`IndexCache`.

    The cache entry is one ``(version, dict)`` tuple swapped atomically,
    never a dict cleared in place: a reader that raced a version move
    keeps filling its own (orphaned) generation instead of writing a
    stale split into the new one.
    """

    __slots__ = ("_entry",)

    def __init__(self) -> None:
        self._entry: tuple[int, dict[tuple, tuple[ShardView, ...]]] = (-1, {})

    def get(
        self,
        version: int,
        positions: tuple[int, ...],
        k: int,
        rows: Iterable[tuple],
    ) -> tuple[ShardView, ...]:
        entry = self._entry
        if entry[0] != version:
            entry = (version, {})
            self._entry = entry
        partitions = entry[1]
        key = (positions, k)
        views = partitions.get(key)
        if views is None:
            views = partition_views(rows, positions, k)
            partitions[key] = views
        return views


class IndexCache:
    """Per-relation cache of hash indexes, invalidated by version stamps.

    Like :class:`PartitionCache`, the whole generation is one
    ``(version, dict)`` tuple replaced atomically, so concurrent readers
    racing a writer's version bump can never install an index built over
    one version's rows into another version's cache.
    """

    __slots__ = ("_entry",)

    def __init__(self) -> None:
        self._entry: tuple[int, dict[tuple[int, ...], HashIndex]] = (-1, {})

    def get(
        self,
        version: int,
        positions: tuple[int, ...],
        rows: Iterable[tuple],
    ) -> HashIndex:
        """Return (building if necessary) the index for ``positions``."""
        entry = self._entry
        if entry[0] != version:
            entry = (version, {})
            self._entry = entry
        indexes = entry[1]
        index = indexes.get(positions)
        if index is None:
            index = HashIndex(positions, rows)
            indexes[positions] = index
        return index

    def peek(self, version: int, positions: tuple[int, ...]) -> HashIndex | None:
        """An already-built, still-valid index — never builds one.

        Lets the cost model consult measured index selectivities for free
        without forcing index construction during planning.
        """
        entry = self._entry
        if entry[0] != version:
            return None
        return entry[1].get(positions)
