"""Set-oriented relational algebra over raw row sets.

These are the primitive operations the set-construction framework of the
paper composes: selection, projection, equi-join, union, difference.
They operate on plain ``set``/``frozenset`` of value tuples so that every
engine in the library (reference evaluator, plan executor, fixpoint
engines) shares one data representation and the algebraic laws can be
property-tested directly.

All functions are pure: inputs are never mutated.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from .indexes import HashIndex


def select(rows: Iterable[tuple], pred: Callable[[tuple], bool]) -> set[tuple]:
    """sigma_pred(rows)."""
    return {r for r in rows if pred(r)}


def project(rows: Iterable[tuple], positions: tuple[int, ...]) -> set[tuple]:
    """pi_positions(rows) — duplicate-eliminating, as sets require."""
    return {tuple(r[i] for i in positions) for r in rows}


def rename_noop(rows: set[tuple]) -> set[tuple]:
    """Renaming is schema-level only; values are untouched."""
    return set(rows)


def union(*row_sets: Iterable[tuple]) -> set[tuple]:
    out: set[tuple] = set()
    for rs in row_sets:
        out.update(rs)
    return out


def difference(left: Iterable[tuple], right: Iterable[tuple]) -> set[tuple]:
    return set(left) - set(right)


def intersection(left: Iterable[tuple], right: Iterable[tuple]) -> set[tuple]:
    return set(left) & set(right)


def cartesian(left: Iterable[tuple], right: Iterable[tuple]) -> set[tuple]:
    """Concatenating cross product."""
    right_rows = list(right)
    return {l + r for l in left for r in right_rows}


def equijoin(
    left: Iterable[tuple],
    right: Iterable[tuple],
    pairs: tuple[tuple[int, int], ...],
) -> set[tuple]:
    """Hash equi-join on position pairs ``(left_pos, right_pos)``.

    The result concatenates the full left and right tuples; callers
    project afterwards.  Builds the hash table on the right input.
    """
    if not pairs:
        return cartesian(left, right)
    # Build the hash table on the right side's join positions.
    rpos = tuple(rp for _, rp in pairs)
    lpos = tuple(lp for lp, _ in pairs)
    index = HashIndex(rpos, right)
    out: set[tuple] = set()
    for lrow in left:
        key = tuple(lrow[i] for i in lpos)
        for rrow in index.lookup(key):
            out.add(lrow + rrow)
    return out


def semijoin(
    left: Iterable[tuple],
    right: Iterable[tuple],
    pairs: tuple[tuple[int, int], ...],
) -> set[tuple]:
    """Left rows with at least one join partner on the right."""
    rpos = tuple(rp for _, rp in pairs)
    lpos = tuple(lp for lp, _ in pairs)
    keys = {tuple(r[i] for i in rpos) for r in right}
    return {l for l in left if tuple(l[i] for i in lpos) in keys}


def antijoin(
    left: Iterable[tuple],
    right: Iterable[tuple],
    pairs: tuple[tuple[int, int], ...],
) -> set[tuple]:
    """Left rows with no join partner on the right (the NOT EXISTS shape)."""
    rpos = tuple(rp for _, rp in pairs)
    lpos = tuple(lp for lp, _ in pairs)
    keys = {tuple(r[i] for i in rpos) for r in right}
    return {l for l in left if tuple(l[i] for i in lpos) not in keys}
