"""Row views: attribute-named access over raw value tuples.

Internally the library stores relation elements as plain Python tuples in
declaration order — the representation every engine (reference evaluator,
plan executor, fixpoint engines, proof engines) shares, so cross-engine
result comparison is a set equality on raw tuples.  :class:`Row` is the
thin, immutable, user-facing view that adds ``row.front`` / ``row["front"]``
access for examples and the reference evaluator.
"""

from __future__ import annotations

from ..errors import SchemaError
from ..types import RecordType


class Row:
    """An immutable, schema-aware view of one relation element."""

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: RecordType, values: tuple) -> None:
        if len(values) != schema.arity:
            raise SchemaError(
                f"row arity {len(values)} does not match record type "
                f"{schema.name} (arity {schema.arity})"
            )
        object.__setattr__(self, "_schema", schema)
        object.__setattr__(self, "_values", tuple(values))

    # -- access ----------------------------------------------------------

    @property
    def schema(self) -> RecordType:
        return self._schema

    @property
    def values(self) -> tuple:
        return self._values

    def __getitem__(self, attr: str) -> object:
        return self._values[self._schema.index_of(attr)]

    def __getattr__(self, attr: str) -> object:
        # Only called when normal attribute lookup fails, i.e. for field
        # names.  Unknown names raise AttributeError so hasattr() behaves.
        schema = object.__getattribute__(self, "_schema")
        if schema.has_attribute(attr):
            values = object.__getattribute__(self, "_values")
            return values[schema.index_of(attr)]
        raise AttributeError(attr)

    def as_dict(self) -> dict[str, object]:
        return dict(zip(self._schema.attribute_names, self._values))

    # -- identity ----------------------------------------------------------

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Row objects are immutable")

    def __eq__(self, other: object) -> bool:
        """Rows compare by attribute names and values (structural equality).

        Two rows of structurally compatible record types with equal values
        are the same element — exactly the equality the paper's key
        constraint and set semantics rely on.
        """
        if isinstance(other, Row):
            return (
                self._values == other._values
                and self._schema.attribute_names == other._schema.attribute_names
            )
        if isinstance(other, tuple):
            return self._values == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._values)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{n}={v!r}" for n, v in zip(self._schema.attribute_names, self._values)
        )
        return f"<{self._schema.name} {inner}>"
