"""The database: a named scope of relation variables and rule definitions.

A :class:`Database` plays the role of the DBPL module scope in the paper:
it owns relation variables (section 2.2) and registers the selector and
selector/constructor abstractions defined over them (sections 2.3 and 3).
Selectors and constructors are *defined* in their own subpackages; the
database only stores and resolves them by name so that query evaluation,
compilation, and the surface-language binder share one name space.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..errors import NameResolutionError, SchemaError
from ..types import RelationType
from .relation import Relation
from .stats import StatsCatalog


class Database:
    """A scope of relation variables plus selector/constructor registries."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self.relations: dict[str, Relation] = {}
        # Populated by repro.selectors / repro.constructors definitions.
        self.selectors: dict[str, object] = {}
        self.constructors: dict[str, object] = {}
        #: Planner statistics: base-table stats resolved by name plus the
        #: observed sizes of converged fixpoints (see repro.relational.stats).
        self.stats = StatsCatalog(self)
        #: The write-capture sink mutations report deltas to (a
        #: ``repro.dbpl.subscriptions.SubscriptionRegistry`` once anything
        #: subscribes; None until then).  Held here, not imported: the
        #: relational layer stays below the serving layer.
        self.subscriptions = None

    # -- relation variables ------------------------------------------------

    def declare(
        self,
        name: str,
        rtype: RelationType,
        rows: Iterable[tuple] = (),
    ) -> Relation:
        """``VAR name: rtype`` — declare (and optionally initialize) a variable."""
        if name in self.relations:
            raise SchemaError(f"relation variable {name!r} is already declared")
        rel = Relation(name, rtype, rows)
        rel._sink = self.subscriptions
        self.relations[name] = rel
        return rel

    def attach_sink(self, registry) -> None:
        """Install ``registry`` as the write-capture sink of every
        relation (current and future).  Idempotent for the same object;
        a database has at most one registry for its lifetime."""
        if self.subscriptions is not None and self.subscriptions is not registry:
            raise SchemaError(
                f"database {self.name!r} already has a subscription registry"
            )
        self.subscriptions = registry
        for rel in self.relations.values():
            rel._sink = registry

    # -- storage -------------------------------------------------------------

    def spill(self, path: str, rows_per_partition: int = 4096) -> None:
        """Persist every relation (rows, dictionaries, statistics) into
        the directory ``path`` — see :mod:`repro.relational.storage`."""
        from .storage import spill_database

        spill_database(self, path, rows_per_partition)

    @classmethod
    def open(cls, path: str) -> "Database":
        """Open a spilled directory as a database of cold, store-backed
        relations that materialize (and scan with pushdown) lazily."""
        from .storage import open_database

        return open_database(path)

    def relation(self, name: str) -> Relation:
        try:
            return self.relations[name]
        except KeyError:
            known = ", ".join(sorted(self.relations)) or "<none>"
            raise NameResolutionError(
                f"unknown relation {name!r}; declared relations: {known}"
            ) from None

    def __getitem__(self, name: str) -> Relation:
        return self.relation(name)

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    # -- rule registries -----------------------------------------------------

    def register_selector(self, selector) -> None:
        if selector.name in self.selectors:
            raise SchemaError(f"selector {selector.name!r} is already defined")
        self.selectors[selector.name] = selector

    def register_constructor(self, constructor) -> None:
        if constructor.name in self.constructors:
            raise SchemaError(
                f"constructor {constructor.name!r} is already defined"
            )
        self.constructors[constructor.name] = constructor

    def selector(self, name: str):
        try:
            return self.selectors[name]
        except KeyError:
            raise NameResolutionError(f"unknown selector {name!r}") from None

    def constructor(self, name: str):
        try:
            return self.constructors[name]
        except KeyError:
            raise NameResolutionError(f"unknown constructor {name!r}") from None

    def __repr__(self) -> str:  # pragma: no cover - display only
        return (
            f"<Database {self.name}: {len(self.relations)} relations, "
            f"{len(self.selectors)} selectors, {len(self.constructors)} constructors>"
        )
