"""Relation variables: typed, key-enforcing sets of tuples.

A :class:`Relation` is the runtime object behind a DBPL ``VAR`` of a
relation type.  Every state change goes through the checked-assignment
discipline of section 2.2: element typing and the key functional
dependency are verified before the variable's value changes, otherwise
a :class:`~repro.errors.KeyConstraintError` or
:class:`~repro.errors.TypeMismatchError` is raised and the old value is
kept (the paper's ``ELSE <exception>``).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from ..errors import TypeMismatchError
from ..types import RelationType, check_relation_assignment
from .indexes import HashIndex, IndexCache, PartitionCache, ShardView
from .rows import Row
from .stats import TableStats


class Relation:
    """A mutable relation variable holding a set of raw value tuples."""

    __slots__ = (
        "name",
        "rtype",
        "_rows",
        "_version",
        "_index_cache",
        "_partition_cache",
        "_stats",
        "_raw_list",
        "_raw_list_version",
    )

    def __init__(
        self,
        name: str,
        rtype: RelationType,
        rows: Iterable[tuple] = (),
    ) -> None:
        self.name = name
        self.rtype = rtype
        self._rows: set[tuple] = set()
        self._version = 0
        self._index_cache = IndexCache()
        self._partition_cache = PartitionCache()
        self._stats: TableStats | None = None
        self._raw_list: list[tuple] = []
        self._raw_list_version = -1
        rows = tuple(rows)
        if rows:
            self.assign(rows)

    # -- value access -------------------------------------------------------

    @property
    def element_type(self):
        return self.rtype.element

    def rows(self) -> frozenset[tuple]:
        """The current value as an immutable set of raw tuples."""
        return frozenset(self._rows)

    def raw(self) -> set[tuple]:
        """The live underlying set; callers must not mutate it."""
        return self._rows

    def raw_list(self) -> list[tuple]:
        """The current rows as a list, cached per version.

        The columnar executor's kernels make several aligned passes over
        a scan's rows (key slice, probe, expansion), which needs a
        stable sequence; materializing it once per relation version means
        repeated executions — fixpoint iterations especially — share one
        list instead of re-listing the set per scan.  Callers must not
        mutate it.
        """
        if self._raw_list_version != self._version:
            self._raw_list = list(self._rows)
            self._raw_list_version = self._version
        return self._raw_list

    @property
    def version(self) -> int:
        """Monotone stamp, bumped on every mutation (index invalidation)."""
        return self._version

    def __iter__(self) -> Iterator[Row]:
        schema = self.rtype.element
        for values in self._rows:
            yield Row(schema, values)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Row):
            return item.values in self._rows
        return item in self._rows

    def is_empty(self) -> bool:
        return not self._rows

    def sorted_rows(self) -> list[tuple]:
        """Deterministically ordered contents, for display and tests."""
        return sorted(self._rows)

    # -- checked mutation ----------------------------------------------------

    def assign(self, rows: Iterable[object]) -> None:
        """``rel := rex`` with full type and key checking.

        The assignment's pass over the new value also installs fresh
        table statistics (one batched absorption), so the first
        post-assign compilation is priced from real numbers instead of
        waiting for a lazy rebuild that used to leave it blind.
        """
        raw = tuple(self._coerce(r) for r in rows)
        checked = check_relation_assignment(self.rtype, raw)
        self._rows = set(checked)
        self._version += 1
        stats = TableStats(len(self.rtype.element.attribute_names))
        stats.add_rows_batch(self._rows)
        self._stats = stats

    def insert(self, rows: Iterable[object]) -> None:
        """``rel :+ rex`` — add tuples, keeping typing and key integrity.

        One type sweep, one key check, and one *batched* statistics
        absorption for the whole argument (distinct multisets,
        heavy-hitter counts, and histograms are updated once per call,
        not once per row).
        """
        raw = [self._coerce(r) for r in rows]
        element = self.rtype.element
        for row in raw:
            if not element.contains(row):
                raise TypeMismatchError(
                    f"tuple {row!r} is not of element type {element.name} "
                    f"(insert into {self.name})"
                )
        self.rtype.check_key(list(self._rows) + raw)
        if self._stats is not None:
            self._stats.add_rows_batch(set(raw) - self._rows)
        self._rows.update(raw)
        self._version += 1

    def insert_many(self, rows: Iterable[object]) -> None:
        """Bulk ``rel :+ rex``: the explicit batch-load entry point.

        An alias of :meth:`insert`, which already absorbs its whole
        argument in one batch; kept as a named API so loaders say what
        they mean.
        """
        self.insert(rows)

    def delete(self, rows: Iterable[object]) -> None:
        """``rel :- rex`` — remove tuples (absent tuples are ignored)."""
        raw = {self._coerce(r) for r in rows}
        if self._stats is not None:
            self._stats.remove_rows(raw & self._rows)
        self._rows.difference_update(raw)
        self._version += 1

    def clear(self) -> None:
        self._rows.clear()
        self._version += 1
        self._stats = None

    @staticmethod
    def _coerce(item: object) -> tuple:
        if isinstance(item, Row):
            return item.values
        if isinstance(item, tuple):
            return item
        if isinstance(item, list):
            return tuple(item)
        raise TypeMismatchError(
            f"relation elements must be tuples or Rows, got {type(item).__name__}"
        )

    # -- indexes ------------------------------------------------------------

    def index_on(self, attrs: tuple[str, ...]) -> HashIndex:
        """A (cached) hash index on the named attributes."""
        positions = tuple(self.rtype.element.index_of(a) for a in attrs)
        return self._index_cache.get(self._version, positions, self._rows)

    def peek_index(self, positions: tuple[int, ...]) -> HashIndex | None:
        """An already-built index on ``positions``, or None (never builds)."""
        return self._index_cache.peek(self._version, positions)

    def partitions(self, key: tuple[str, ...], k: int) -> tuple[ShardView, ...]:
        """``k`` hash partitions of the rows on the named key attributes.

        The shard views (rows plus their lazily-built local indexes) are
        cached per relation version and per ``(key, k)``, so the sharded
        executor pays the partition pass once per mutation — fixpoint
        iterations and repeated queries share one split, exactly as
        :meth:`index_on` shares one hash index.  An empty ``key``
        partitions on the whole row.
        """
        positions = tuple(self.rtype.element.index_of(a) for a in key)
        return self._partition_cache.get(
            self._version, positions, k, self.raw_list()
        )

    # -- statistics ---------------------------------------------------------

    def stats(self) -> TableStats:
        """Table statistics: maintained incrementally, rebuilt lazily.

        Inserts and deletes update the live object in place (see
        :meth:`insert`/:meth:`delete`); a wholesale :meth:`assign`
        installs fresh statistics computed during the assignment itself.
        """
        if self._stats is None:
            self._stats = TableStats.from_rows(
                self._rows, len(self.rtype.element.attribute_names)
            )
        return self._stats

    # -- misc ------------------------------------------------------------

    def snapshot(self, name: str | None = None) -> "Relation":
        """An independent copy (used by the paper's REPEAT-loop programs)."""
        copy = Relation(name or self.name, self.rtype)
        copy._rows = set(self._rows)
        copy._version = 1
        return copy

    def __repr__(self) -> str:  # pragma: no cover - display only
        return f"<Relation {self.name}: {len(self._rows)} x {self.rtype.element.name}>"
