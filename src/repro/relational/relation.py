"""Relation variables: typed, key-enforcing sets of tuples.

A :class:`Relation` is the runtime object behind a DBPL ``VAR`` of a
relation type.  Every state change goes through the checked-assignment
discipline of section 2.2: element typing and the key functional
dependency are verified before the variable's value changes, otherwise
a :class:`~repro.errors.KeyConstraintError` or
:class:`~repro.errors.TypeMismatchError` is raised and the old value is
kept (the paper's ``ELSE <exception>``).

Concurrency discipline (the serving layer's contract): mutations are
**copy-on-write** — every insert/delete/assign builds a *new* row set and
swaps the reference, never mutating the set a concurrent reader may be
iterating — and writers serialize on a per-relation lock.  Readers run
lock-free: any set or cached row list they obtained stays internally
consistent forever (it corresponds to exactly one committed state), so a
query pipeline can never crash on a resized set or observe a torn,
half-applied mutation.  :meth:`snapshot_view` pins one committed state
as a version-stamped view for multi-scan snapshot reads.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Iterator
from contextlib import nullcontext

from ..errors import TypeMismatchError
from ..types import RelationType, check_relation_assignment
from .indexes import HashIndex, IndexCache, PartitionCache, ShardView, SnapshotView
from .rows import Row
from .stats import TableStats
from .vectors import Dictionary, EncodedTable

#: Sentinel row-list cache entry: (version, list) — replaced atomically.
_NO_RAW: tuple[int, list[tuple]] = (-1, [])

#: Sentinel encoded-view cache entry, same discipline as :data:`_NO_RAW`.
_NO_ENCODED: tuple[int, EncodedTable | None] = (-1, None)


class Relation:
    """A mutable relation variable holding a set of raw value tuples."""

    __slots__ = (
        "name",
        "rtype",
        "_rows",
        "_version",
        "_index_cache",
        "_partition_cache",
        "_stats",
        "_raw_entry",
        "_dicts",
        "_encoded_entry",
        "_write_lock",
        "_sink",
        "_store",
    )

    def __init__(
        self,
        name: str,
        rtype: RelationType,
        rows: Iterable[tuple] = (),
    ) -> None:
        self.name = name
        self.rtype = rtype
        self._rows: set[tuple] = set()
        self._version = 0
        self._index_cache = IndexCache()
        self._partition_cache = PartitionCache()
        self._stats: TableStats | None = None
        #: (version, rows-as-list), one tuple swapped atomically so the
        #: stamp can never be paired with another version's list.
        self._raw_entry: tuple[int, list[tuple]] = _NO_RAW
        #: Per-column dictionaries (created on first encode, then kept
        #: forever — append-only, so ids stay stable across versions).
        self._dicts: tuple[Dictionary, ...] | None = None
        #: (version, EncodedTable), swapped atomically like _raw_entry.
        self._encoded_entry: tuple[int, EncodedTable | None] = _NO_ENCODED
        #: Writers serialize here; readers never take it.
        self._write_lock = threading.Lock()
        #: Write-capture sink (duck-typed: ``lock``/``watching``/``emit``)
        #: — a per-database SubscriptionRegistry once anything subscribes
        #: to queries over this database, else None.  Wired by
        #: :meth:`repro.relational.Database.attach_sink`; this module
        #: stays ignorant of the serving layer above it.
        self._sink = None
        #: Storage backend (repro.relational.storage.RelationStore) when
        #: this relation was opened from a spilled database, else None.
        #: A store-backed relation starts **cold**: ``_rows`` is None
        #: until something genuinely needs the full row set, and scans
        #: go through the store's pushdown readers instead.
        self._store = None
        rows = tuple(rows)
        if rows:
            self.assign(rows)

    @classmethod
    def from_store(cls, name: str, rtype: RelationType, store) -> "Relation":
        """A cold relation backed by a spilled store (no rows in memory).

        Cardinality and statistics come from the store's manifest, so
        the planner and ``StatsCatalog.epoch()`` work without a scan;
        the first operation that needs the actual row set materializes
        it (see :meth:`_materialize`), after which the relation behaves
        exactly like a warm one — including accepting mutations.
        """
        rel = cls.__new__(cls)
        rel.name = name
        rel.rtype = rtype
        rel._rows = None
        rel._version = 0
        rel._index_cache = IndexCache()
        rel._partition_cache = PartitionCache()
        rel._stats = store.load_stats()
        rel._raw_entry = _NO_RAW
        rel._dicts = None
        rel._encoded_entry = _NO_ENCODED
        rel._write_lock = threading.Lock()
        rel._sink = None
        rel._store = store
        return rel

    # -- value access -------------------------------------------------------

    @property
    def element_type(self):
        return self.rtype.element

    @property
    def is_cold(self) -> bool:
        """True while a store-backed relation has not materialized rows."""
        return self._rows is None

    def _materialize(self) -> set[tuple]:
        """The committed row set, loading it from the store on first need.

        Materialization is *not* a mutation: the version stays put (the
        cache sentinels stamp -1, so version-0 caches still build), and
        no delta is emitted — the rows were always logically present.
        """
        rows = self._rows
        if rows is None:
            with self._write_lock:
                rows = self._rows
                if rows is None:
                    rows = set(self._store.scan())
                    self._rows = rows
        return rows

    def rows(self) -> frozenset[tuple]:
        """The current value as an immutable set of raw tuples."""
        return frozenset(self._materialize())

    def raw(self) -> set[tuple]:
        """The committed row set; callers must not mutate it.

        Copy-on-write mutation means the returned set object never
        changes after the reference is obtained — concurrent writers
        swap in *new* sets, they never resize this one under a reader's
        iteration.
        """
        return self._materialize()

    def raw_list(self) -> list[tuple]:
        """The current rows as a list, cached per version.

        The columnar executor's kernels make several aligned passes over
        a scan's rows (key slice, probe, expansion), which needs a
        stable sequence; materializing it once per relation version means
        repeated executions — fixpoint iterations especially — share one
        list instead of re-listing the set per scan.  Callers must not
        mutate it; writers never do (they replace, see
        :meth:`_commit`), so a list handed out once stays a consistent
        snapshot of one committed state.
        """
        return self._raw_pair()[1]

    def _raw_pair(self) -> tuple[int, list[tuple]]:
        """One consistent ``(version, rows-as-list)`` pair.

        The cached entry is a single tuple replaced atomically.  Racing
        a concurrent commit can at worst label a *newer* committed list
        with an older stamp (the next probe rebuilds); the list itself
        always materializes exactly one committed set object, because
        committed sets are never mutated in place.
        """
        entry = self._raw_entry
        version = self._version
        if entry[0] != version:
            entry = (version, list(self._materialize()))
            self._raw_entry = entry
        return entry

    @property
    def version(self) -> int:
        """Monotone stamp, bumped on every mutation (index invalidation)."""
        return self._version

    def __iter__(self) -> Iterator[Row]:
        schema = self.rtype.element
        for values in self._materialize():
            yield Row(schema, values)

    def __len__(self) -> int:
        # A cold relation answers from the manifest: epoch computation
        # and plan caching must never force a scan just to count.
        rows = self._rows
        if rows is None:
            return self._store.row_count
        return len(rows)

    def __contains__(self, item: object) -> bool:
        rows = self._materialize()
        if isinstance(item, Row):
            return item.values in rows
        return item in rows

    def is_empty(self) -> bool:
        rows = self._rows
        if rows is None:
            return self._store.row_count == 0
        return not rows

    def sorted_rows(self) -> list[tuple]:
        """Deterministically ordered contents, for display and tests."""
        return sorted(self._materialize())

    # -- checked mutation ----------------------------------------------------

    def _commit(self, new_rows: set[tuple]) -> None:
        """Swap in a new committed row set (copy-on-write commit point).

        The set reference is replaced *before* the version bump: a racing
        reader can at worst pair new rows with the old stamp — which only
        makes a cache rebuild on the next probe — never the reverse
        (a stale list vouched for by a fresh version).
        """
        self._rows = new_rows
        self._version += 1

    def _delta_guard(self, inserted, deleted):
        """(lock-or-null context, sink-or-None) for one mutation's commit.

        Once a subscription registry is attached to the database, every
        mutation that genuinely changes this relation commits *inside*
        the registry lock and reports its insert/delete delta batch —
        commit + maintenance is one atomic step, so two relations can
        never interleave commits and emissions (which would double-count
        derivations joining both deltas), and a concurrent ``subscribe``
        (which materializes under the same lock) either sees the commit
        in its initial result or receives the delta afterwards, never
        neither.  Lock order is always relation ``_write_lock`` →
        registry lock; the registry only ever *reads* other relations
        (lock-free by the copy-on-write discipline), so the order cannot
        invert.  No-op mutations skip the lock entirely, as does every
        database without subscriptions (``_sink`` is None).
        """
        sink = self._sink
        if sink is not None and (inserted or deleted):
            return sink.lock, sink
        return nullcontext(), None

    def assign(self, rows: Iterable[object]) -> None:
        """``rel := rex`` with full type and key checking.

        The assignment's pass over the new value also installs fresh
        table statistics (one batched absorption), so the first
        post-assign compilation is priced from real numbers instead of
        waiting for a lazy rebuild that used to leave it blind.
        """
        raw = tuple(self._coerce(r) for r in rows)
        checked = check_relation_assignment(self.rtype, raw)
        # Materialize outside the lock (it is not reentrant): mutating a
        # cold relation first loads its committed state for the delta.
        self._materialize()
        with self._write_lock:
            new_rows = set(checked)
            old_rows = self._rows
            inserted = [r for r in new_rows if r not in old_rows]
            deleted = [r for r in old_rows if r not in new_rows]
            guard, sink = self._delta_guard(inserted, deleted)
            with guard:
                stats = TableStats(len(self.rtype.element.attribute_names))
                stats.add_rows_batch(new_rows)
                self._stats = stats
                self._commit(new_rows)
                if sink is not None:
                    sink.emit(self, inserted, deleted)

    def insert(self, rows: Iterable[object]) -> None:
        """``rel :+ rex`` — add tuples, keeping typing and key integrity.

        One type sweep, one key check, and one *batched* statistics
        absorption for the whole argument (distinct multisets,
        heavy-hitter counts, and histograms are updated once per call,
        not once per row).  The new value is built as a copy and swapped
        in whole, so concurrent readers keep iterating the previous
        committed set untouched.
        """
        raw = [self._coerce(r) for r in rows]
        element = self.rtype.element
        for row in raw:
            if not element.contains(row):
                raise TypeMismatchError(
                    f"tuple {row!r} is not of element type {element.name} "
                    f"(insert into {self.name})"
                )
        self._materialize()
        with self._write_lock:
            old_rows = self._rows
            self.rtype.check_key(list(old_rows) + raw)
            new_rows = set(old_rows)
            new_rows.update(raw)
            fresh: list[tuple] = []
            seen: set[tuple] = set()
            for row in raw:
                if row not in old_rows and row not in seen:
                    seen.add(row)
                    fresh.append(row)
            if self._stats is not None:
                self._stats.add_rows_batch(fresh)
            raw_entry = self._raw_entry
            encoded_entry = self._encoded_entry
            old_version = self._version
            guard, sink = self._delta_guard(fresh, ())
            with guard:
                self._commit(new_rows)
                # Incremental maintenance of the cached row list and encoded
                # vectors, on the same mutation path as the statistics: when
                # both caches describe the pre-insert version, append the
                # genuinely fresh rows instead of letting the next reader
                # re-list and re-encode the whole relation.
                if fresh and raw_entry[0] == old_version:
                    new_list = raw_entry[1] + fresh
                    self._raw_entry = (self._version, new_list)
                    if encoded_entry[0] == old_version and encoded_entry[1] is not None:
                        self._encoded_entry = (
                            self._version,
                            encoded_entry[1].extended(fresh, new_list),
                        )
                if sink is not None:
                    sink.emit(self, fresh, ())

    def insert_many(self, rows: Iterable[object]) -> None:
        """Bulk ``rel :+ rex``: the explicit batch-load entry point.

        An alias of :meth:`insert`, which already absorbs its whole
        argument in one batch; kept as a named API so loaders say what
        they mean.
        """
        self.insert(rows)

    def delete(self, rows: Iterable[object]) -> None:
        """``rel :- rex`` — remove tuples (absent tuples are ignored)."""
        raw = {self._coerce(r) for r in rows}
        self._materialize()
        with self._write_lock:
            old_rows = self._rows
            removed = raw & old_rows
            guard, sink = self._delta_guard((), removed)
            with guard:
                if self._stats is not None:
                    self._stats.remove_rows(removed)
                self._commit(old_rows - raw)
                if sink is not None:
                    sink.emit(self, (), list(removed))

    def clear(self) -> None:
        self._materialize()
        with self._write_lock:
            old_rows = self._rows
            guard, sink = self._delta_guard((), old_rows)
            with guard:
                self._stats = None
                self._commit(set())
                if sink is not None:
                    sink.emit(self, (), list(old_rows))

    @staticmethod
    def _coerce(item: object) -> tuple:
        if isinstance(item, Row):
            return item.values
        if isinstance(item, tuple):
            return item
        if isinstance(item, list):
            return tuple(item)
        raise TypeMismatchError(
            f"relation elements must be tuples or Rows, got {type(item).__name__}"
        )

    # -- indexes ------------------------------------------------------------

    def index_on(self, attrs: tuple[str, ...]) -> HashIndex:
        """A (cached) hash index on the named attributes."""
        positions = tuple(self.rtype.element.index_of(a) for a in attrs)
        return self._index_cache.get(self._version, positions, self._materialize())

    def peek_index(self, positions: tuple[int, ...]) -> HashIndex | None:
        """An already-built index on ``positions``, or None (never builds)."""
        return self._index_cache.peek(self._version, positions)

    def partitions(self, key: tuple[str, ...], k: int) -> tuple[ShardView, ...]:
        """``k`` hash partitions of the rows on the named key attributes.

        The shard views (rows plus their lazily-built local indexes) are
        cached per relation version and per ``(key, k)``, so the sharded
        executor pays the partition pass once per mutation — fixpoint
        iterations and repeated queries share one split, exactly as
        :meth:`index_on` shares one hash index.  An empty ``key``
        partitions on the whole row.
        """
        positions = tuple(self.rtype.element.index_of(a) for a in key)
        return self._partition_cache.get(
            self._version, positions, k, self.raw_list()
        )

    # -- encoded vectors ------------------------------------------------------

    def dictionaries(self) -> tuple[Dictionary, ...]:
        """One append-only value↔id :class:`Dictionary` per column.

        Created on first use and kept for the relation's lifetime —
        dictionaries never shrink, so ids stay stable across every
        mutation and version-stamped encoded views remain mutually
        comparable (the vector executor's join translation tables and
        snapshot encodings rely on this).
        """
        dicts = self._dicts
        if dicts is None:
            with self._write_lock:
                dicts = self._dicts
                if dicts is None:
                    if self._store is not None:
                        # The persisted dictionaries produced the stored
                        # id pages; adopting them keeps those pages valid
                        # (dictionaries only append) across later use.
                        dicts = self._store.load_dictionaries()
                    else:
                        dicts = tuple(
                            Dictionary() for _ in self.rtype.element.attribute_names
                        )
                    self._dicts = dicts
        return dicts

    def encoded(self) -> EncodedTable:
        """The current rows as dictionary-encoded column vectors.

        Cached per relation version next to :meth:`raw_list` (one
        ``(version, table)`` entry swapped atomically); inserts extend
        the cached table incrementally (see :meth:`insert`), other
        mutations invalidate and the next reader re-encodes against the
        persistent dictionaries.
        """
        entry = self._encoded_entry
        if self._rows is None:
            # Cold fast path: the stored id pages *are* the encoding —
            # concatenate them instead of materializing and re-encoding.
            version = self._version
            if entry[0] == version and entry[1] is not None:
                return entry[1]
            table = self._store.encoded_table()
            self._encoded_entry = (version, table)
            self._raw_entry = (version, table.rows)
            return table
        version, rows = self._raw_pair()
        if entry[0] != version or entry[1] is None:
            entry = (version, EncodedTable.from_rows(rows, self.dictionaries()))
            self._encoded_entry = entry
        return entry[1]

    # -- statistics ---------------------------------------------------------

    def stats(self) -> TableStats:
        """Table statistics: maintained incrementally, rebuilt lazily.

        Inserts and deletes update the live object in place (see
        :meth:`insert`/:meth:`delete`); a wholesale :meth:`assign`
        installs fresh statistics computed during the assignment itself.
        """
        if self._stats is None:
            self._stats = TableStats.from_rows(
                self._materialize(), len(self.rtype.element.attribute_names)
            )
        return self._stats

    # -- storage pushdown ----------------------------------------------------

    @property
    def cold_store(self):
        """The backing RelationStore while cold (pushdown-capable), else None.

        Once the relation materializes (any whole-set read or mutation),
        in-memory rows are authoritative and pushdown turns itself off —
        the store keeps describing the spilled state, not the live one.
        """
        store = self._store
        if store is None or self._rows is not None:
            return None
        return store

    def scan_pushdown(self, projection, selection, params=None):
        """Rows via the store's projection/predicate-pushdown reader.

        Returns a full-width row list (dead columns None) when the
        relation is cold and store-backed, else None — the caller falls
        back to :meth:`raw_list` and its own filters.  The pushed
        predicates are re-checked downstream, so this is a pure
        pre-filter: dropping any of them is always safe.
        """
        store = self.cold_store
        if store is None:
            return None
        return store.scan(projection, selection, params)

    def scan_cost_fraction(self, restrictions) -> float:
        """Fraction of rows a pushdown scan would decode under
        ``restrictions`` (concrete ``(pos, op, value)`` triples) — the
        cost model's partition-pruning discount.  1.0 when warm."""
        store = self.cold_store
        if store is None:
            return 1.0
        return store.prune_fraction(restrictions)

    # -- misc ------------------------------------------------------------

    def snapshot(self, name: str | None = None) -> "Relation":
        """An independent copy (used by the paper's REPEAT-loop programs)."""
        copy = Relation(name or self.name, self.rtype)
        copy._rows = set(self._materialize())
        copy._version = 1
        return copy

    def snapshot_view(self) -> SnapshotView:
        """A version-stamped pinned view of the current committed state.

        The view holds the copy-on-write row list (never mutated, only
        ever replaced on the relation) plus its own lazy local indexes,
        so a reader pipeline can keep scanning and probing one committed
        state while writers move the relation forward — the serving
        layer's snapshot-read primitive (see ``repro.dbpl.serving``).
        """
        version, rows = self._raw_pair()
        return SnapshotView(rows, self.name, version)

    def __repr__(self) -> str:  # pragma: no cover - display only
        return f"<Relation {self.name}: {len(self)} x {self.rtype.element.name}>"
