"""Table statistics for cost-based query planning.

The paper's runtime level decides between generated access paths; those
decisions need numbers.  This module maintains the three quantities the
planner (:class:`repro.compiler.plans.CostModel`) prices plans with:

* **cardinalities** — ``|R|`` per relation (and per fixpoint delta);
* **distinct-value counts** — per column, kept *exactly* via value
  multisets so estimates stay correct under insert *and* delete;
* **selectivities** — the classic System-R estimates derived from the
  above: an equality on column ``c`` keeps ``1/distinct(c)`` of the
  rows, a join on ``R.a = S.b`` produces ``|R||S| / max(d_a, d_b)``;
* **equi-depth histograms** — per column, built lazily from the exact
  value multisets and maintained incrementally (bucket counters are
  adjusted per insert/delete; once mutations exceed a staleness
  threshold the histogram is rebuilt from the multiset on the next
  probe).  They price *range* predicates (``<``, ``<=``, ``>``,
  ``>=``), replacing the blind constant the planner used before.

Statistics are maintained **incrementally**: a :class:`TableStats` is
built once from a relation's rows and then updated in place by
:meth:`TableStats.add_rows` / :meth:`TableStats.remove_rows` on every
insert/delete (see :class:`~repro.relational.relation.Relation`), and a
:class:`DeltaStats` absorbs each semi-naive delta as the fixpoint engine
applies it.  The per-database :class:`StatsCatalog` additionally records
*observed* sizes of converged fixpoints, so later compilations of the
same constructor application start from a measured cardinality instead
of a guess.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass, field

#: Target bucket count for equi-depth histograms.
HISTOGRAM_BUCKETS = 16

#: A histogram is rebuilt (lazily, on the next probe) once the number of
#: mutations applied since it was built exceeds this fraction of the
#: rows it was built over (with a small absolute floor so tiny tables
#: don't thrash).
HISTOGRAM_STALENESS = 0.25
HISTOGRAM_STALENESS_FLOOR = 32

#: The plan epoch (see :meth:`StatsCatalog.epoch`) moves once some
#: relation's cardinality has drifted by more than this fraction of the
#: row count it had when the epoch was last stamped...
PLAN_EPOCH_STALENESS = 0.25
#: ...with a small absolute floor so tiny tables don't thrash the
#: serving layer's plan cache on every insert.
PLAN_EPOCH_FLOOR = 32


class Histogram:
    """An equi-depth histogram over one column's orderable values.

    ``bounds[i]`` is the inclusive upper bound of bucket ``i`` (bucket
    lower bounds are the previous bucket's upper bound, exclusive;
    bucket 0 starts at ``lo``).  ``depths[i]`` counts the rows currently
    attributed to bucket ``i`` — exact at build time, then adjusted
    incrementally per insert/delete until :meth:`stale` triggers a
    rebuild.  Values outside ``[lo, bounds[-1]]`` are clamped into the
    edge buckets, widening them.
    """

    __slots__ = ("lo", "bounds", "depths", "built_rows", "mutations")

    def __init__(self, lo, bounds: list, depths: list[int]) -> None:
        self.lo = lo
        self.bounds = bounds
        self.depths = depths
        self.built_rows = sum(depths)
        self.mutations = 0

    @classmethod
    def from_counts(cls, counts: Counter, buckets: int = HISTOGRAM_BUCKETS):
        """Build from an exact value multiset; None when unorderable."""
        if not counts:
            return None
        items = None
        for _ in range(4):
            try:
                items = sorted(counts.items())
                break
            except TypeError:
                return None  # mixed/unorderable value domain
            except RuntimeError:
                continue  # a concurrent writer resized the multiset; retry
        if items is None:
            return None
        total = sum(counts.values())
        target = max(1, total // max(1, buckets))
        lo = items[0][0]
        bounds: list = []
        depths: list[int] = []
        acc = 0
        for value, count in items:
            acc += count
            if acc >= target or value == items[-1][0]:
                bounds.append(value)
                depths.append(acc)
                acc = 0
        if acc:
            depths[-1] += acc
        return cls(lo, bounds, depths)

    @property
    def total(self) -> int:
        return sum(self.depths)

    def stale(self) -> bool:
        limit = max(HISTOGRAM_STALENESS_FLOOR, HISTOGRAM_STALENESS * self.built_rows)
        return self.mutations > limit

    # -- incremental maintenance -------------------------------------------

    def _bucket_of(self, value) -> int:
        try:
            i = bisect_left(self.bounds, value)
        except TypeError:
            return -1
        return min(i, len(self.bounds) - 1)

    def add(self, value: object) -> None:
        self.add_bulk(value, 1)

    def add_bulk(self, value: object, count: int) -> None:
        """Attribute ``count`` identical values to their bucket at once.

        The batch-load path calls this once per *distinct* value of a
        batch instead of once per row, so histogram maintenance costs
        scale with the value domain, not the row count.
        """
        i = self._bucket_of(value)
        if i < 0:
            self.mutations += count
            return
        self.depths[i] += count
        try:
            if value < self.lo:
                self.lo = value
            elif value > self.bounds[-1]:
                self.bounds[-1] = value
        except TypeError:
            pass
        self.mutations += count

    def remove(self, value: object) -> None:
        i = self._bucket_of(value)
        if i >= 0 and self.depths[i] > 0:
            self.depths[i] -= 1
        self.mutations += 1

    # -- estimation ---------------------------------------------------------

    def fraction_below(self, value, inclusive: bool) -> float | None:
        """Estimated fraction of rows ``<= value`` (or ``< value``)."""
        total = self.total
        if total <= 0:
            return None
        try:
            if inclusive:
                i = bisect_right(self.bounds, value)
            else:
                i = bisect_left(self.bounds, value)
            below_lo = (value <= self.lo) if not inclusive else (value < self.lo)
        except TypeError:
            return None
        if below_lo:
            return 0.0
        if i >= len(self.bounds):
            return 1.0
        rows = sum(self.depths[:i])
        # Partial bucket: linear interpolation on numeric bounds, half a
        # bucket otherwise (strings etc. have no meaningful midpoint).
        bucket_lo = self.bounds[i - 1] if i > 0 else self.lo
        bucket_hi = self.bounds[i]
        frac = 0.5
        if isinstance(value, (int, float)) and isinstance(bucket_lo, (int, float)) \
                and isinstance(bucket_hi, (int, float)) and bucket_hi > bucket_lo:
            frac = (value - bucket_lo) / (bucket_hi - bucket_lo)
            frac = min(1.0, max(0.0, frac))
        rows += self.depths[i] * frac
        return min(1.0, max(0.0, rows / total))

    def describe(self) -> str:
        return (
            f"histogram[{len(self.bounds)} buckets, rows={self.total}, "
            f"lo={self.lo!r}, hi={self.bounds[-1]!r}]"
        )


class ColumnStats:
    """Exact distinct-value accounting for one column position.

    Beyond the multiset itself this tracks two derived quantities the
    planner probes on every plan-enumeration step, both maintained
    without rescanning the multiset:

    * the **heavy-hitter count** (rows carrying the most frequent value)
      is kept incrementally — an insert can only raise the maximum, a
      delete invalidates it only when it hits a value at the current
      maximum, in which case the next probe rescans once and re-caches
      (``mcv_rescans`` counts those rescans, for tests);
    * the **equi-depth histogram** is built lazily on the first range
      probe and updated incrementally until stale (see
      :class:`Histogram`), then rebuilt from the multiset.
    """

    __slots__ = ("counts", "_max_count", "_max_dirty", "mcv_rescans",
                 "_histogram", "_histogram_failed", "histogram_builds")

    def __init__(self) -> None:
        self.counts: Counter = Counter()
        self._max_count = 0
        self._max_dirty = False
        self.mcv_rescans = 0
        self._histogram: Histogram | None = None
        self._histogram_failed = False
        self.histogram_builds = 0

    @property
    def distinct(self) -> int:
        return len(self.counts)

    @property
    def max_count(self) -> int:
        """Rows carrying the most frequent value (cached, see above)."""
        if self._max_dirty:
            for _ in range(4):
                try:
                    self._max_count = max(self.counts.values(), default=0)
                    self._max_dirty = False
                    self.mcv_rescans += 1
                    break
                except RuntimeError:
                    continue  # concurrent writer resized the multiset; retry
        return self._max_count

    def most_common_fraction(self, total_rows: int) -> float:
        """Fraction of rows carrying the most frequent value (skew signal)."""
        if not self.counts or total_rows <= 0:
            return 0.0
        return self.max_count / total_rows

    def add(self, value: object) -> None:
        count = self.counts[value] + 1
        self.counts[value] = count
        if not self._max_dirty and count > self._max_count:
            self._max_count = count
        if self._histogram is not None:
            self._histogram.add(value)
        elif self._histogram_failed:
            self._histogram_failed = False  # domain changed; retry later

    def add_many(self, values) -> None:
        """Batch insert: one ``Counter.update`` for the multiset and one
        histogram adjustment per *distinct* value, instead of per-row
        per-column Python calls (the batch-load path of ``insert_many``
        and ``assign``)."""
        fresh = Counter(values)
        if not fresh:
            return
        counts = self.counts
        counts.update(fresh)
        if not self._max_dirty:
            for value in fresh:
                if counts[value] > self._max_count:
                    self._max_count = counts[value]
        if self._histogram is not None:
            add_bulk = self._histogram.add_bulk
            for value, count in fresh.items():
                add_bulk(value, count)
        elif self._histogram_failed:
            self._histogram_failed = False  # domain changed; retry later

    def remove(self, value: object) -> None:
        old = self.counts.get(value, 0)
        if old - 1 > 0:
            self.counts[value] = old - 1
        else:
            self.counts.pop(value, None)
        if old and not self._max_dirty and old == self._max_count:
            # Another value may share the maximum: recompute lazily.
            self._max_dirty = True
        if self._histogram is not None:
            self._histogram.remove(value)

    def histogram(self) -> Histogram | None:
        """The (lazily built, staleness-checked) equi-depth histogram."""
        if self._histogram is not None and self._histogram.stale():
            self._histogram = None
        if self._histogram is None and not self._histogram_failed:
            self._histogram = Histogram.from_counts(self.counts)
            if self._histogram is None:
                self._histogram_failed = True
            else:
                self.histogram_builds += 1
        return self._histogram


class TableStats:
    """Cardinality plus per-column distinct counts for one row set."""

    __slots__ = ("arity", "row_count", "columns")

    def __init__(self, arity: int) -> None:
        self.arity = arity
        self.row_count = 0
        self.columns = tuple(ColumnStats() for _ in range(arity))

    @classmethod
    def from_rows(cls, rows: Iterable[tuple], arity: int) -> "TableStats":
        stats = cls(arity)
        stats.add_rows_batch(rows)
        return stats

    # -- incremental maintenance -------------------------------------------

    def add_rows(self, rows: Iterable[tuple]) -> None:
        columns = self.columns
        for row in rows:
            self.row_count += 1
            for pos, value in enumerate(row[: self.arity]):
                columns[pos].add(value)

    def add_rows_batch(self, rows: Iterable[tuple]) -> None:
        """Absorb a whole batch: one column-slice pass per column.

        Equivalent to :meth:`add_rows` but updates every derived
        quantity (distinct multisets, heavy-hitter counts, histograms)
        once per batch instead of once per row — the bulk-load path of
        :meth:`~repro.relational.relation.Relation.insert_many` and
        ``assign``, and of the fixpoint engines' delta absorption.
        """
        if not isinstance(rows, (list, tuple, set, frozenset)):
            rows = list(rows)
        if not rows:
            return
        self.row_count += len(rows)
        for pos, column in enumerate(self.columns):
            column.add_many([row[pos] for row in rows])

    def remove_rows(self, rows: Iterable[tuple]) -> None:
        columns = self.columns
        for row in rows:
            self.row_count -= 1
            for pos, value in enumerate(row[: self.arity]):
                columns[pos].remove(value)

    # -- estimates ----------------------------------------------------------

    def distinct(self, pos: int) -> int:
        if 0 <= pos < self.arity:
            return self.columns[pos].distinct
        return max(1, self.row_count)

    def eq_selectivity(self, pos: int) -> float:
        """Estimated fraction of rows matching ``col = constant``.

        The uniform estimate ``1/distinct`` is blended with the measured
        most-common-value fraction: on uniform data the two coincide and
        the blend is exactly ``1/distinct``, on skewed data probes land
        on heavy values more often than uniformity predicts and the
        estimate moves toward the heavy bucket.

        A column with no values at all (empty relation) matches
        *nothing*: the selectivity is 0, so the estimated matching rows
        are 0 and the planner treats an empty input as the cheapest
        possible join start, not as "matches everything".
        """
        d = self.distinct(pos)
        if not d:
            return 0.0
        return (1.0 / d + self.skew(pos)) / 2.0

    def range_selectivity(self, pos: int, op: str, value: object) -> float | None:
        """Estimated fraction of rows satisfying ``col <op> value``.

        Priced from the column's equi-depth histogram; ``None`` when the
        column has no histogram (unorderable domain) or the operator is
        not a range comparison — callers fall back to their own default
        constant in that case.  Empty columns match nothing.
        """
        if not (0 <= pos < self.arity):
            return None
        column = self.columns[pos]
        if not column.counts:
            return 0.0
        if op == "<>":
            return max(0.0, 1.0 - self.eq_selectivity(pos))
        histogram = column.histogram()
        if histogram is None:
            return None
        if op == "<":
            return histogram.fraction_below(value, inclusive=False)
        if op == "<=":
            return histogram.fraction_below(value, inclusive=True)
        if op == ">":
            below = histogram.fraction_below(value, inclusive=True)
            return None if below is None else max(0.0, 1.0 - below)
        if op == ">=":
            below = histogram.fraction_below(value, inclusive=False)
            return None if below is None else max(0.0, 1.0 - below)
        return None

    def key_selectivity(self, positions: Iterable[int]) -> float:
        """Combined selectivity of a conjunctive equality key.

        Independence is assumed; the product is floored at ``1/row_count``
        (a key can never select less than one row's worth on average
        without the estimate degenerating to zero).
        """
        sel = 1.0
        for pos in positions:
            sel *= self.eq_selectivity(pos)
        if self.row_count > 0:
            sel = max(sel, 1.0 / self.row_count)
        return min(sel, 1.0)

    def matching_rows(self, positions: Iterable[int]) -> float:
        """Estimated rows produced by one indexed lookup on ``positions``."""
        return self.row_count * self.key_selectivity(positions)

    def skew(self, pos: int) -> float:
        return self.columns[pos].most_common_fraction(self.row_count) if (
            0 <= pos < self.arity
        ) else 0.0

    def describe(self) -> str:
        distincts = "/".join(str(c.distinct) for c in self.columns)
        return f"rows={self.row_count} distinct={distincts}"

    def __repr__(self) -> str:  # pragma: no cover - display only
        return f"<TableStats {self.describe()}>"


class DeltaStats:
    """Running statistics over the deltas of one fixpoint variable.

    The semi-naive engine absorbs every per-iteration delta; the result
    is exact statistics over the accumulated fixpoint value, available to
    differential plan pricing without rescanning the value.
    """

    __slots__ = ("table", "deltas_applied", "peak_delta", "last_delta")

    def __init__(self, arity: int) -> None:
        self.table = TableStats(arity)
        self.deltas_applied = 0
        self.peak_delta = 0
        self.last_delta = 0

    def absorb(self, delta: Iterable[tuple]) -> None:
        delta = delta if isinstance(delta, (list, tuple, set, frozenset)) else list(delta)
        self.table.add_rows_batch(delta)
        self.deltas_applied += 1
        self.last_delta = len(delta)
        self.peak_delta = max(self.peak_delta, self.last_delta)

    @property
    def row_count(self) -> int:
        return self.table.row_count

    def describe(self) -> str:
        return (
            f"{self.table.describe()} deltas={self.deltas_applied} "
            f"peak_delta={self.peak_delta}"
        )


@dataclass
class FixpointObservation:
    """A converged fixpoint's measured size (and distincts when known).

    ``versions`` snapshots the version stamps of the base relations the
    instantiated application actually *reads*; the catalog treats the
    observation as stale — and drops it — once any of *those* relations
    has mutated since.  Mutations of unrelated tables do not discard it.

    ``table``, when present, is the exact :class:`TableStats` absorbed
    delta-by-delta while the fixpoint converged: full per-column
    distinct counts and histograms over the constructed value, which the
    cost model uses to price joins and range filters against fixpoint
    variables in later compilations.
    """

    rows: int
    distinct: tuple[int, ...] = ()
    runs: int = 1
    versions: dict[str, int] = field(default_factory=dict)
    table: "TableStats | None" = None

    def merge(
        self,
        rows: int,
        distinct: tuple[int, ...],
        versions: dict[str, int],
        table: "TableStats | None" = None,
    ) -> None:
        self.rows = rows
        if distinct:
            self.distinct = distinct
        self.versions = versions
        # The table payload must match the run that produced the latest
        # version stamp: an engine that tracked no statistics (table is
        # None) drops any previous table rather than letting a fresh
        # stamp vouch for a distribution observed on older data.
        self.table = table
        self.runs += 1


class StatsCatalog:
    """Per-database statistics: base-table stats plus fixpoint observations.

    Base-table statistics live on the relations themselves (lazily built,
    incrementally maintained); the catalog resolves them by name and owns
    the cross-compilation memory of observed constructed-relation sizes.
    """

    def __init__(self, db) -> None:
        self._db = db
        self._observations: dict[object, FixpointObservation] = {}
        self._epoch = 0
        #: Per-relation row counts at the last epoch stamp (plus the
        #: relation name set itself — declaring a variable moves the
        #: epoch too, since plans compiled before it can't reference it).
        self._epoch_marks: dict[str, int] | None = None

    # -- base tables ---------------------------------------------------------

    def table(self, name: str) -> TableStats:
        return self._db.relation(name).stats()

    # -- plan epoch ----------------------------------------------------------

    def epoch(self) -> int:
        """The statistics epoch the serving layer fingerprints plans with.

        A monotone counter that moves when the catalog's view of the data
        has drifted enough to make previously compiled plans *materially*
        stale: some relation's cardinality changed by more than
        :data:`PLAN_EPOCH_STALENESS` of its row count at the last stamp
        (floored at :data:`PLAN_EPOCH_FLOOR` rows), or the set of
        declared relations changed.  Small writes deliberately do **not**
        move it — cardinality drift below the histogram-staleness scale
        does not change join orders, and a plan cache invalidated on
        every insert would never hit under a mixed read/write workload.

        Deliberately the same staleness shape as histogram rebuilds: the
        epoch answers "would the cost model price this differently now?",
        not "did anything change?".
        """
        relations = self._db.relations
        marks = self._epoch_marks
        moved = marks is None or marks.keys() != relations.keys()
        if not moved:
            for name, base in marks.items():
                drift = abs(len(relations[name]) - base)
                if drift > max(PLAN_EPOCH_FLOOR, PLAN_EPOCH_STALENESS * base):
                    moved = True
                    break
        if moved:
            self._epoch += 1
            self._epoch_marks = {
                name: len(rel) for name, rel in relations.items()
            }
        return self._epoch

    def bump_epoch(self) -> int:
        """Force the plan epoch forward (drops every cached plan)."""
        self._epoch += 1
        self._epoch_marks = {
            name: len(rel) for name, rel in self._db.relations.items()
        }
        return self._epoch

    def analyze(self) -> dict[str, TableStats]:
        """Force statistics for every declared relation (ANALYZE)."""
        return {name: rel.stats() for name, rel in self._db.relations.items()}

    # -- fixpoint observations ----------------------------------------------

    def _versions(self, relations: Iterable[str] | None = None) -> dict[str, int]:
        """Version stamps of ``relations`` (default: every relation).

        Callers that know which base relations an application reads pass
        them explicitly, so the resulting observation is invalidated only
        by mutations it can actually see — not by writes to unrelated
        tables.
        """
        if relations is None:
            return {name: rel.version for name, rel in self._db.relations.items()}
        all_relations = self._db.relations
        return {
            name: all_relations[name].version
            for name in relations
            if name in all_relations
        }

    def record_fixpoint(
        self,
        key: object,
        rows: int,
        distinct: tuple[int, ...] = (),
        relations: Iterable[str] | None = None,
        table: "TableStats | None" = None,
    ) -> None:
        """Remember the converged size of one instantiated application.

        ``relations`` names the base relations the application reads
        (the observation's staleness scope); ``table`` optionally carries
        the exact statistics absorbed over the converged value.
        """
        versions = self._versions(relations)
        observation = self._observations.get(key)
        if observation is None:
            self._observations[key] = FixpointObservation(
                rows, distinct, versions=versions, table=table
            )
        else:
            observation.merge(rows, distinct, versions, table)

    def fixpoint_observation(self, key: object) -> FixpointObservation | None:
        """The recorded observation, dropped if any *read* relation mutated."""
        observation = self._observations.get(key)
        if observation is None:
            return None
        all_relations = self._db.relations
        for name, version in observation.versions.items():
            rel = all_relations.get(name)
            if rel is None or rel.version != version:
                del self._observations[key]
                return None
        return observation

    def constructed_estimate(self, key: object) -> float | None:
        """Observed cardinality of an instantiated application, if any
        (stale observations — base relations mutated since — return None)."""
        observation = self.fixpoint_observation(key)
        return float(observation.rows) if observation is not None else None

    def summary(self) -> str:
        lines = [f"statistics catalog for database {self._db.name!r}:"]
        for name, rel in sorted(self._db.relations.items()):
            lines.append(f"  {name}: {rel.stats().describe()}")
        for key, obs in self._observations.items():
            desc = key.describe() if hasattr(key, "describe") else repr(key)
            lines.append(
                f"  observed {desc}: rows={obs.rows} (over {obs.runs} runs)"
            )
        return "\n".join(lines)
