"""Table statistics for cost-based query planning.

The paper's runtime level decides between generated access paths; those
decisions need numbers.  This module maintains the three quantities the
planner (:class:`repro.compiler.plans.CostModel`) prices plans with:

* **cardinalities** — ``|R|`` per relation (and per fixpoint delta);
* **distinct-value counts** — per column, kept *exactly* via value
  multisets so estimates stay correct under insert *and* delete;
* **selectivities** — the classic System-R estimates derived from the
  above: an equality on column ``c`` keeps ``1/distinct(c)`` of the
  rows, a join on ``R.a = S.b`` produces ``|R||S| / max(d_a, d_b)``.

Statistics are maintained **incrementally**: a :class:`TableStats` is
built once from a relation's rows and then updated in place by
:meth:`TableStats.add_rows` / :meth:`TableStats.remove_rows` on every
insert/delete (see :class:`~repro.relational.relation.Relation`), and a
:class:`DeltaStats` absorbs each semi-naive delta as the fixpoint engine
applies it.  The per-database :class:`StatsCatalog` additionally records
*observed* sizes of converged fixpoints, so later compilations of the
same constructor application start from a measured cardinality instead
of a guess.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass, field


class ColumnStats:
    """Exact distinct-value accounting for one column position."""

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Counter = Counter()

    @property
    def distinct(self) -> int:
        return len(self.counts)

    def most_common_fraction(self, total_rows: int) -> float:
        """Fraction of rows carrying the most frequent value (skew signal)."""
        if not self.counts or total_rows <= 0:
            return 0.0
        return self.counts.most_common(1)[0][1] / total_rows

    def add(self, value: object) -> None:
        self.counts[value] += 1

    def remove(self, value: object) -> None:
        remaining = self.counts.get(value, 0) - 1
        if remaining > 0:
            self.counts[value] = remaining
        else:
            self.counts.pop(value, None)


class TableStats:
    """Cardinality plus per-column distinct counts for one row set."""

    __slots__ = ("arity", "row_count", "columns")

    def __init__(self, arity: int) -> None:
        self.arity = arity
        self.row_count = 0
        self.columns = tuple(ColumnStats() for _ in range(arity))

    @classmethod
    def from_rows(cls, rows: Iterable[tuple], arity: int) -> "TableStats":
        stats = cls(arity)
        stats.add_rows(rows)
        return stats

    # -- incremental maintenance -------------------------------------------

    def add_rows(self, rows: Iterable[tuple]) -> None:
        columns = self.columns
        for row in rows:
            self.row_count += 1
            for pos, value in enumerate(row[: self.arity]):
                columns[pos].add(value)

    def remove_rows(self, rows: Iterable[tuple]) -> None:
        columns = self.columns
        for row in rows:
            self.row_count -= 1
            for pos, value in enumerate(row[: self.arity]):
                columns[pos].remove(value)

    # -- estimates ----------------------------------------------------------

    def distinct(self, pos: int) -> int:
        if 0 <= pos < self.arity:
            return self.columns[pos].distinct
        return max(1, self.row_count)

    def eq_selectivity(self, pos: int) -> float:
        """Estimated fraction of rows matching ``col = constant``.

        The uniform estimate ``1/distinct`` is blended with the measured
        most-common-value fraction: on uniform data the two coincide and
        the blend is exactly ``1/distinct``, on skewed data probes land
        on heavy values more often than uniformity predicts and the
        estimate moves toward the heavy bucket.
        """
        d = self.distinct(pos)
        if not d:
            return 1.0
        return (1.0 / d + self.skew(pos)) / 2.0

    def key_selectivity(self, positions: Iterable[int]) -> float:
        """Combined selectivity of a conjunctive equality key.

        Independence is assumed; the product is floored at ``1/row_count``
        (a key can never select less than one row's worth on average
        without the estimate degenerating to zero).
        """
        sel = 1.0
        for pos in positions:
            sel *= self.eq_selectivity(pos)
        if self.row_count > 0:
            sel = max(sel, 1.0 / self.row_count)
        return min(sel, 1.0)

    def matching_rows(self, positions: Iterable[int]) -> float:
        """Estimated rows produced by one indexed lookup on ``positions``."""
        return self.row_count * self.key_selectivity(positions)

    def skew(self, pos: int) -> float:
        return self.columns[pos].most_common_fraction(self.row_count) if (
            0 <= pos < self.arity
        ) else 0.0

    def describe(self) -> str:
        distincts = "/".join(str(c.distinct) for c in self.columns)
        return f"rows={self.row_count} distinct={distincts}"

    def __repr__(self) -> str:  # pragma: no cover - display only
        return f"<TableStats {self.describe()}>"


class DeltaStats:
    """Running statistics over the deltas of one fixpoint variable.

    The semi-naive engine absorbs every per-iteration delta; the result
    is exact statistics over the accumulated fixpoint value, available to
    differential plan pricing without rescanning the value.
    """

    __slots__ = ("table", "deltas_applied", "peak_delta", "last_delta")

    def __init__(self, arity: int) -> None:
        self.table = TableStats(arity)
        self.deltas_applied = 0
        self.peak_delta = 0
        self.last_delta = 0

    def absorb(self, delta: Iterable[tuple]) -> None:
        delta = delta if isinstance(delta, (list, tuple, set, frozenset)) else list(delta)
        self.table.add_rows(delta)
        self.deltas_applied += 1
        self.last_delta = len(delta)
        self.peak_delta = max(self.peak_delta, self.last_delta)

    @property
    def row_count(self) -> int:
        return self.table.row_count

    def describe(self) -> str:
        return (
            f"{self.table.describe()} deltas={self.deltas_applied} "
            f"peak_delta={self.peak_delta}"
        )


@dataclass
class FixpointObservation:
    """A converged fixpoint's measured size (and distincts when known).

    ``versions`` snapshots the base-relation version stamps at
    observation time; the catalog treats the observation as stale — and
    drops it — once any base relation has mutated since.
    """

    rows: int
    distinct: tuple[int, ...] = ()
    runs: int = 1
    versions: dict[str, int] = field(default_factory=dict)

    def merge(
        self, rows: int, distinct: tuple[int, ...], versions: dict[str, int]
    ) -> None:
        self.rows = rows
        if distinct:
            self.distinct = distinct
        self.versions = versions
        self.runs += 1


class StatsCatalog:
    """Per-database statistics: base-table stats plus fixpoint observations.

    Base-table statistics live on the relations themselves (lazily built,
    incrementally maintained); the catalog resolves them by name and owns
    the cross-compilation memory of observed constructed-relation sizes.
    """

    def __init__(self, db) -> None:
        self._db = db
        self._observations: dict[object, FixpointObservation] = {}

    # -- base tables ---------------------------------------------------------

    def table(self, name: str) -> TableStats:
        return self._db.relation(name).stats()

    def analyze(self) -> dict[str, TableStats]:
        """Force statistics for every declared relation (ANALYZE)."""
        return {name: rel.stats() for name, rel in self._db.relations.items()}

    # -- fixpoint observations ----------------------------------------------

    def _versions(self) -> dict[str, int]:
        return {name: rel.version for name, rel in self._db.relations.items()}

    def record_fixpoint(
        self, key: object, rows: int, distinct: tuple[int, ...] = ()
    ) -> None:
        """Remember the converged size of one instantiated application."""
        versions = self._versions()
        observation = self._observations.get(key)
        if observation is None:
            self._observations[key] = FixpointObservation(
                rows, distinct, versions=versions
            )
        else:
            observation.merge(rows, distinct, versions)

    def fixpoint_observation(self, key: object) -> FixpointObservation | None:
        """The recorded observation, dropped if base relations mutated."""
        observation = self._observations.get(key)
        if observation is None:
            return None
        if observation.versions != self._versions():
            del self._observations[key]
            return None
        return observation

    def constructed_estimate(self, key: object) -> float | None:
        """Observed cardinality of an instantiated application, if any
        (stale observations — base relations mutated since — return None)."""
        observation = self.fixpoint_observation(key)
        return float(observation.rows) if observation is not None else None

    def summary(self) -> str:
        lines = [f"statistics catalog for database {self._db.name!r}:"]
        for name, rel in sorted(self._db.relations.items()):
            lines.append(f"  {name}: {rel.stats().describe()}")
        for key, obs in self._observations.items():
            desc = key.describe() if hasattr(key, "describe") else repr(key)
            lines.append(
                f"  observed {desc}: rows={obs.rows} (over {obs.runs} runs)"
            )
        return "\n".join(lines)
