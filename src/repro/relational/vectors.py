"""Typed column vectors: dictionary encoding over compact int-id buffers.

The columnar executor of PR 4 still carries Python object rows: every
hash probe hashes a full value tuple, every filter compares boxed
values, and every dedup hashes tuples of objects.  This module gives
each relation column a :class:`Dictionary` — an append-only bijection
between attribute values and dense int ids — and backs the encoded
columns with ``array('q')`` buffers (:class:`ColumnVector`), so the hot
operator kernels become integer work: equality joins probe dense
id-indexed tables, range and inequality filters compare against
per-dictionary lookup tables, and duplicate elimination reduces to
id-tuple set operations.

Encoding properties the executor relies on:

* **Ids are stable.**  A dictionary only ever appends; a value keeps
  its id across relation mutations, so encoded views of two versions of
  the same relation (or a snapshot and the live value) are directly
  comparable, and translation tables between two columns' dictionaries
  can be cached and extended instead of rebuilt.
* **Id tuples biject with value tuples.**  Deduplicating encoded rows
  and then decoding the distinct id tuples yields exactly the distinct
  value tuples.
* **Buffers are immutable once built.**  An :class:`EncodedTable` is
  version-stamped by its owning relation and never mutated afterwards —
  growth builds a new table (copy + extend, see
  :meth:`EncodedTable.extended`), so concurrent readers and zero-copy
  numpy views stay safe.

The optional **numpy fast path** is a feature gate, not a dependency:
:func:`get_numpy` returns the module only when it is importable *and*
enabled (``set_numpy_enabled`` / the ``REPRO_VECTOR_NUMPY`` environment
variable), and every kernel in :mod:`repro.compiler.operators` degrades
to the pure-stdlib ``array`` path when it returns None.
"""

from __future__ import annotations

import os
import threading
from array import array
from operator import itemgetter

__all__ = [
    "ColumnVector",
    "Dictionary",
    "EncodedTable",
    "get_numpy",
    "numpy_enabled",
    "set_numpy_enabled",
    "translation",
]

#: Environment kill switch for the numpy fast path: set to ``0``,
#: ``false``, or ``off`` to force the pure-stdlib ``array`` kernels even
#: when numpy is importable (the CI no-numpy leg uses a genuinely absent
#: numpy; this gate lets any environment test the same code path).
_NUMPY_ENV = "REPRO_VECTOR_NUMPY"

#: Tri-state override installed by :func:`set_numpy_enabled`:
#: None → follow the environment/availability, True/False → forced.
_NUMPY_OVERRIDE: bool | None = None

#: Lazily imported numpy module, or False once the import failed.
_NUMPY_MODULE = None


def _env_allows_numpy() -> bool:
    return os.environ.get(_NUMPY_ENV, "1").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


def set_numpy_enabled(flag: bool | None) -> None:
    """Force the numpy fast path on/off, or None to restore auto-detect.

    Forcing True still degrades cleanly when numpy is not importable —
    the gate can enable the fast path, never conjure the dependency.
    """
    global _NUMPY_OVERRIDE
    _NUMPY_OVERRIDE = flag


def get_numpy():
    """The numpy module when the fast path is enabled, else None."""
    global _NUMPY_MODULE
    if _NUMPY_OVERRIDE is False:
        return None
    if _NUMPY_OVERRIDE is None and not _env_allows_numpy():
        return None
    if _NUMPY_MODULE is None:
        try:
            import numpy
        except ImportError:
            numpy = False
        _NUMPY_MODULE = numpy
    return _NUMPY_MODULE or None


def numpy_enabled() -> bool:
    """True when vector kernels will take the numpy fast path."""
    return get_numpy() is not None


class Dictionary:
    """An append-only bijection between column values and dense int ids.

    ``ids[value]`` is the value's id, ``values[id]`` the id's value; ids
    are assigned in first-encounter order and never reused or removed,
    so every id handed out stays valid forever (deleted rows leave their
    values registered — harmless, and what keeps snapshot views and
    cached translation tables comparable across relation versions).

    Encoding serializes on a private lock (two threads racing to encode
    a fresh value must agree on its id); lookups and decodes are
    lock-free reads of append-only structures.
    """

    __slots__ = ("ids", "values", "_lock")

    def __init__(self) -> None:
        self.ids: dict = {}
        self.values: list = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.values)

    def encode_batch(self, column) -> array:
        """Encode an iterable of values, registering fresh ones."""
        ids = self.ids
        out = array("q")
        append = out.append
        missing = object()
        get = ids.get
        pending: list = []
        for value in column:
            i = get(value, missing)
            if i is missing:
                pending.append((len(out), value))
                append(-1)
            else:
                append(i)
        if pending:
            with self._lock:
                values = self.values
                for pos, value in pending:
                    i = get(value, missing)
                    if i is missing:
                        i = ids[value] = len(values)
                        values.append(value)
                    out[pos] = i
        return out

    def encode(self, value) -> int:
        """The value's id, registering it when unseen."""
        i = self.ids.get(value)
        if i is not None:
            return i
        with self._lock:
            i = self.ids.get(value)
            if i is None:
                i = self.ids[value] = len(self.values)
                self.values.append(value)
        return i

    def lookup(self, value) -> int:
        """The value's id, or -1 when the value was never encoded."""
        i = self.ids.get(value)
        return -1 if i is None else i

    def decode(self, i: int):
        return self.values[i]

    # Locks do not pickle; a shipped dictionary (sharded process-pool
    # tasks carry encoded shard tables) reconstructs a private one.
    def __getstate__(self):
        return (self.ids, self.values)

    def __setstate__(self, state) -> None:
        self.ids, self.values = state
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - display only
        return f"<Dictionary {len(self.values)} values>"


class ColumnVector:
    """One encoded column: an ``array('q')`` of ids plus its dictionary.

    The buffer is immutable once the vector is built (growth copies, see
    :meth:`EncodedTable.extended`), which makes the lazily created numpy
    view (:meth:`np_ids` — ``frombuffer``, zero copy) safe to cache.
    """

    __slots__ = ("ids", "dictionary", "_np")

    def __init__(self, ids: array, dictionary: Dictionary) -> None:
        self.ids = ids
        self.dictionary = dictionary
        self._np = None

    def __len__(self) -> int:
        return len(self.ids)

    def np_ids(self):
        """The ids as a zero-copy int64 numpy view (fast path only)."""
        view = self._np
        if view is None:
            np = get_numpy()
            if np is None:
                return None
            view = self._np = np.frombuffer(self.ids, dtype=np.int64)
        return view

    def nbytes(self) -> int:
        return len(self.ids) * self.ids.itemsize

    def __getstate__(self):
        return (self.ids, self.dictionary)

    def __setstate__(self, state) -> None:
        self.ids, self.dictionary = state
        self._np = None


class EncodedTable:
    """All columns of one committed relation state, dictionary-encoded.

    ``rows`` is the aligned raw row list the table was encoded from
    (row ``i``'s value tuple — late materialization and residual
    fallbacks read it); it is dropped when the table is pickled, so a
    sharded process-pool task ships only the compact id buffers and the
    dictionaries.

    Per-column probe structures are built lazily and cached: ``groups``
    is the dense id → row-index table the int-id hash joins probe, and
    ``csr`` its numpy form (stable argsort order + per-id starts and
    counts).  Benign build races only waste work — assignment of the
    finished structure is atomic.
    """

    __slots__ = ("columns", "rows", "n", "_groups", "_csr")

    def __init__(self, columns: tuple, rows: list | None, n: int) -> None:
        self.columns = columns
        self.rows = rows
        self.n = n
        self._groups: dict = {}
        self._csr: dict = {}

    @classmethod
    def from_rows(cls, rows: list, dictionaries: tuple) -> "EncodedTable":
        rows = rows if isinstance(rows, list) else list(rows)
        columns = tuple(
            ColumnVector(d.encode_batch(map(itemgetter(j), rows)), d)
            for j, d in enumerate(dictionaries)
        )
        return cls(columns, rows, len(rows))

    def extended(self, fresh_rows: list, all_rows: list) -> "EncodedTable":
        """A new table appending ``fresh_rows``: copy buffers + encode.

        The incremental-maintenance path of ``Relation.insert`` — a
        memcpy of the existing id buffers plus one dictionary pass over
        the new rows, instead of re-encoding the whole relation.
        """
        columns = []
        for j, col in enumerate(self.columns):
            ids = array("q", col.ids)
            ids.extend(col.dictionary.encode_batch(map(itemgetter(j), fresh_rows)))
            columns.append(ColumnVector(ids, col.dictionary))
        return EncodedTable(tuple(columns), all_rows, len(all_rows))

    def column(self, pos: int) -> ColumnVector:
        return self.columns[pos]

    def groups(self, pos: int) -> list:
        """Dense probe table: ``groups[id]`` lists the row indexes whose
        column ``pos`` encodes to ``id`` (sized to the dictionary at
        build time; probes bounds-check)."""
        table = self._groups.get(pos)
        if table is None:
            col = self.columns[pos]
            table = [[] for _ in range(len(col.dictionary))]
            for i, v in enumerate(col.ids):
                table[v].append(i)
            self._groups[pos] = table
        return table

    def csr(self, pos: int):
        """Numpy probe table ``(order, starts, counts)`` for column ``pos``.

        ``order`` is a stable argsort of the ids; the rows matching id
        ``g`` are ``order[starts[g] : starts[g] + counts[g]]``.  Returns
        None when the numpy fast path is disabled.
        """
        entry = self._csr.get(pos)
        if entry is None:
            np = get_numpy()
            if np is None:
                return None
            col = self.columns[pos]
            ids = col.np_ids()
            counts = np.bincount(ids, minlength=len(col.dictionary))
            starts = counts.cumsum() - counts
            order = np.argsort(ids, kind="stable")
            entry = self._csr[pos] = (order, starts, counts)
        return entry

    # Shipping: only the id buffers and dictionaries cross a process
    # boundary; the raw row list (and the lazily built probe caches)
    # stay behind.  Operators that need ``rows`` — late materialization,
    # whole-row targets — are excluded from shippable pipelines by the
    # lowering (see ``lower_branch_vector``).
    def __getstate__(self):
        return (self.columns, self.n)

    def __setstate__(self, state) -> None:
        self.columns, self.n = state
        self.rows = None
        self._groups = {}
        self._csr = {}

    def __repr__(self) -> str:  # pragma: no cover - display only
        return f"<EncodedTable {self.n} x {len(self.columns)} cols>"


def translation(src: Dictionary, dst: Dictionary) -> array | None:
    """Id-translation table from ``src``'s id space into ``dst``'s.

    ``translation(src, dst)[src_id]`` is the dst id encoding the same
    value, or -1 when dst never saw it (a join probe miss).  Returns
    None when both columns share one dictionary (a self-join on the
    same column — ids already agree).  Cost is one lookup per *distinct*
    src value; callers cache per execution keyed by the dictionary pair
    (both dictionaries only append, so a cached table is only ever too
    short, never wrong — see ``ExecutionContext.vector_cache`` users).
    """
    if src is dst:
        return None
    get = dst.ids.get
    return array("q", (get(v, -1) for v in src.values))
