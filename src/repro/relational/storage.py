"""Out-of-core columnar storage: partitioned, self-describing relation files.

The paper assumes database-resident relations; everything above this
module so far assumed *memory*-resident ones.  This module closes the
gap with a deliberately small on-disk format that reuses the PR 8
encoding verbatim: each relation directory persists its per-column
:class:`~repro.relational.vectors.Dictionary` objects once (the
dictionary pages) and its rows as fixed-width ``array('q')`` id pages,
split into partitions of ``rows_per_partition`` rows.

Layout of a spilled database directory::

    <db>/meta.json                  format magic + relation names
    <db>/<relation>/meta.json       arity, row count, partition manifest
                                    (per partition: file, rows, per-column
                                    min/max for pruning)
    <db>/<relation>/schema.pkl      pickled RelationType (self-description)
    <db>/<relation>/dicts.pkl       pickled per-column dictionaries
    <db>/<relation>/stats.pkl       pickled TableStats (optional)
    <db>/<relation>/part-NNNN.bin   one id page per column, seekable

A partition file is a 17-byte header (``RPC1`` magic, format version,
column count, row count) followed by one little-endian int64 id buffer
per column, each exactly ``8 * rows`` bytes.  Fixed-width pages are the
whole point: the reader computes the byte offset of any column and
**seeks past dead columns**, so a projection-pushdown scan performs I/O
and decoding proportional to the live columns of the *matching*
partitions only.  Predicate pushdown prunes whole partitions against
the manifest's per-column min/max before any page is read, then filters
the surviving partitions' decoded values row by row.

The optional **parquet codec** mirrors the numpy feature gate of
:mod:`repro.relational.vectors`: when pyarrow is importable *and*
enabled (:func:`set_pyarrow_enabled` / ``REPRO_STORAGE_PARQUET``),
spills write ``part-NNNN.parquet`` id pages instead; readers dispatch
on the file extension.  The stdlib ``.bin`` codec is first-class — the
CI ``test-no-pyarrow`` leg runs the whole suite without pyarrow.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import sys
import threading
from array import array
from operator import itemgetter

from ..errors import StorageError

__all__ = [
    "RelationStore",
    "get_pyarrow",
    "open_database",
    "pyarrow_enabled",
    "set_pyarrow_enabled",
    "spill_database",
]

#: Database-level format magic recorded in the top ``meta.json``.
_FORMAT = "repro-columnar"
_FORMAT_VERSION = 1

#: Partition page header: magic, format version, columns, rows.
_PAGE_MAGIC = b"RPC1"
_PAGE_HEADER = struct.Struct("<4sBIQ")

#: Environment kill switch for the parquet codec, mirroring
#: ``REPRO_VECTOR_NUMPY``: unset/``0`` keeps the stdlib ``.bin`` codec
#: even when pyarrow is importable (parquet is opt-in, not opt-out —
#: the stdlib format is the one every environment can read back).
_PARQUET_ENV = "REPRO_STORAGE_PARQUET"

#: Tri-state override installed by :func:`set_pyarrow_enabled`.
_PYARROW_OVERRIDE: bool | None = None

#: Lazily imported pyarrow module, or False once the import failed.
_PYARROW_MODULE = None


def _env_allows_parquet() -> bool:
    return os.environ.get(_PARQUET_ENV, "0").strip().lower() in (
        "1",
        "true",
        "on",
        "yes",
    )


def set_pyarrow_enabled(flag: bool | None) -> None:
    """Force the parquet codec on/off, or None to restore auto-detect.

    Forcing True still degrades cleanly when pyarrow is not importable —
    the gate can enable the codec, never conjure the dependency.
    """
    global _PYARROW_OVERRIDE
    _PYARROW_OVERRIDE = flag


def get_pyarrow():
    """The pyarrow module when the parquet codec is enabled, else None."""
    global _PYARROW_MODULE
    if _PYARROW_OVERRIDE is False:
        return None
    if _PYARROW_OVERRIDE is None and not _env_allows_parquet():
        return None
    if _PYARROW_MODULE is None:
        try:
            import pyarrow
            import pyarrow.parquet  # noqa: F401 - submodule import
        except ImportError:
            pyarrow = False
        _PYARROW_MODULE = pyarrow
    return _PYARROW_MODULE or None


def pyarrow_enabled() -> bool:
    """True when spills will write parquet id pages."""
    return get_pyarrow() is not None


def _load_parquet_module():
    """pyarrow for *reading* an existing ``.parquet`` page.

    Reading dispatches on the file extension, not the write gate: a
    database spilled with parquet pages must stay openable even when
    the gate has since been switched off — but it genuinely needs the
    module.
    """
    global _PYARROW_MODULE
    if _PYARROW_MODULE is None:
        try:
            import pyarrow
            import pyarrow.parquet  # noqa: F401 - submodule import
        except ImportError:
            pyarrow = False
        _PYARROW_MODULE = pyarrow
    if not _PYARROW_MODULE:
        raise StorageError(
            "partition page is parquet-encoded but pyarrow is not "
            "importable; re-spill with the stdlib codec or install pyarrow"
        )
    return _PYARROW_MODULE


# ---------------------------------------------------------------------------
# Pruning: conservative partition elimination against per-column min/max
# ---------------------------------------------------------------------------

#: JSON-faithful scalar types: values of these types survive the
#: ``meta.json`` round trip unchanged, so their min/max are safe to
#: compare against query constants.  Anything else (or a mixed-type
#: column chunk) records no min/max and is never pruned on.
_MINMAX_TYPES = (int, float, str)


def _chunk_minmax(values) -> list | None:
    """``[lo, hi]`` for one partition's column values, or None.

    Conservative: only homogeneous int/float/str chunks (bool excluded —
    it is an int subtype but semantically distinct) get bounds; any
    comparison surprise keeps the partition scannable forever.
    """
    lo = hi = None
    for v in values:
        if type(v) not in _MINMAX_TYPES:
            return None
        if lo is None:
            lo = hi = v
        else:
            try:
                if v < lo:
                    lo = v
                elif v > hi:
                    hi = v
            except TypeError:
                return None
    if lo is None or type(lo) is not type(hi):
        return None
    return [lo, hi]


def _partition_matches(minmax: dict, pos: int, op: str, value) -> bool:
    """Can any row of the partition satisfy ``column[pos] <op> value``?

    Answers True (keep the partition) on every doubt: missing bounds,
    cross-type comparisons, unknown operators.
    """
    bounds = minmax.get(str(pos))
    if bounds is None:
        return True
    lo, hi = bounds
    try:
        if op == "=":
            return not (value < lo or value > hi)
        if op == "<":
            return lo < value
        if op == "<=":
            return lo <= value
        if op == ">":
            return hi > value
        if op == ">=":
            return hi >= value
        if op == "<>":
            return not (lo == hi == value)
    except TypeError:
        return True
    return True


def _resolve_selection(selection, params) -> list | None:
    """``(pos, op, value)`` triples from symbolic pushdown specs.

    A spec's value is ``("const", v)`` (compile-time constant) or
    ``("param", name)`` (prepared-plan slot resolved per execution).
    Unresolvable conjuncts are dropped — the compiled plan's own filters
    re-check every pushed predicate, so the reader-side filter is a pure
    pre-filter and dropping one is always safe.
    """
    if not selection:
        return None
    resolved = []
    for pos, op, spec in selection:
        kind, payload = spec
        if kind == "const":
            resolved.append((pos, op, payload))
        elif kind == "param" and params is not None:
            try:
                resolved.append((pos, op, params[payload]))
            except KeyError:
                continue
    return resolved or None


_CMP = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


class StoreCounters:
    """Observability for scans: what the readers actually touched.

    ``rows_decoded``/``cells_decoded`` count id→value decodes (the work
    pushdown exists to avoid); ``bytes_read`` counts page bytes pulled
    off disk.  E22 and the pushdown tests assert on the ratios.
    """

    __slots__ = (
        "partitions_read",
        "partitions_pruned",
        "rows_decoded",
        "cells_decoded",
        "bytes_read",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.partitions_read = 0
        self.partitions_pruned = 0
        self.rows_decoded = 0
        self.cells_decoded = 0
        self.bytes_read = 0

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class RelationStore:
    """Lazy reader over one spilled relation directory.

    Everything heavy — dictionaries, statistics, the schema pickle, the
    id pages themselves — loads on first demand; constructing a store
    (and therefore opening a database) reads only the small per-relation
    ``meta.json``, which is what lets a reopened database answer
    ``len(rel)`` and plan from persisted statistics before any scan.
    """

    __slots__ = (
        "path",
        "meta",
        "counters",
        "_dicts",
        "_stats",
        "_rtype",
        "_lock",
    )

    def __init__(self, path: str) -> None:
        self.path = path
        try:
            with open(os.path.join(path, "meta.json"), encoding="utf-8") as fh:
                self.meta = json.load(fh)
        except (OSError, ValueError) as exc:
            raise StorageError(f"unreadable relation store at {path!r}: {exc}") from exc
        self.counters = StoreCounters()
        self._dicts = None
        self._stats = False  # tri-state: False=unloaded, None=absent
        self._rtype = None
        self._lock = threading.Lock()

    # -- self-description ---------------------------------------------------

    @property
    def name(self) -> str:
        return self.meta["name"]

    @property
    def arity(self) -> int:
        return self.meta["arity"]

    @property
    def row_count(self) -> int:
        return self.meta["row_count"]

    def relation_type(self):
        rtype = self._rtype
        if rtype is None:
            rtype = self._rtype = self._unpickle("schema.pkl")
        return rtype

    def load_dictionaries(self) -> tuple:
        dicts = self._dicts
        if dicts is None:
            with self._lock:
                dicts = self._dicts
                if dicts is None:
                    dicts = self._dicts = self._unpickle("dicts.pkl")
        return dicts

    def load_stats(self):
        """The persisted TableStats, or None when the spill had none."""
        stats = self._stats
        if stats is False:
            try:
                stats = self._unpickle("stats.pkl")
            except StorageError:
                stats = None
            self._stats = stats
        return stats

    def _unpickle(self, filename: str):
        try:
            with open(os.path.join(self.path, filename), "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.PickleError) as exc:
            raise StorageError(
                f"unreadable {filename} in relation store {self.path!r}: {exc}"
            ) from exc

    # -- page reading -------------------------------------------------------

    def _read_columns(self, part: dict, live: tuple) -> dict:
        """``{pos: array('q')}`` of the partition's live id pages."""
        filename = os.path.join(self.path, part["file"])
        if filename.endswith(".parquet"):
            return self._read_parquet_columns(filename, part, live)
        nrows = part["rows"]
        out = {}
        try:
            with open(filename, "rb") as fh:
                header = fh.read(_PAGE_HEADER.size)
                magic, version, ncols, hrows = _PAGE_HEADER.unpack(header)
                if magic != _PAGE_MAGIC or version != _FORMAT_VERSION:
                    raise StorageError(
                        f"bad partition page header in {filename!r}"
                    )
                if hrows != nrows or ncols != self.arity:
                    raise StorageError(
                        f"partition page {filename!r} disagrees with manifest"
                    )
                page = 8 * nrows
                for pos in live:
                    fh.seek(_PAGE_HEADER.size + pos * page)
                    ids = array("q")
                    ids.frombytes(fh.read(page))
                    if sys.byteorder != "little":
                        ids.byteswap()
                    if len(ids) != nrows:
                        raise StorageError(
                            f"truncated id page in {filename!r} (column {pos})"
                        )
                    out[pos] = ids
        except OSError as exc:
            raise StorageError(f"unreadable partition page {filename!r}: {exc}") from exc
        self.counters.partitions_read += 1
        self.counters.rows_decoded += nrows
        self.counters.cells_decoded += nrows * len(live)
        self.counters.bytes_read += _PAGE_HEADER.size + 8 * nrows * len(live)
        return out

    def _read_parquet_columns(self, filename: str, part: dict, live: tuple) -> dict:
        pa = _load_parquet_module()
        try:
            table = pa.parquet.read_table(
                filename, columns=[f"c{pos}" for pos in live]
            )
        except (OSError, pa.lib.ArrowInvalid) as exc:
            raise StorageError(f"unreadable partition page {filename!r}: {exc}") from exc
        nrows = part["rows"]
        out = {}
        for pos in live:
            ids = array("q", table.column(f"c{pos}").to_pylist())
            if len(ids) != nrows:
                raise StorageError(
                    f"truncated id page in {filename!r} (column {pos})"
                )
            out[pos] = ids
        self.counters.partitions_read += 1
        self.counters.rows_decoded += nrows
        self.counters.cells_decoded += nrows * len(live)
        self.counters.bytes_read += 8 * nrows * len(live)
        return out

    # -- scanning -----------------------------------------------------------

    def scan(self, projection=None, selection=(), params=None) -> list:
        """Materialize matching rows, decoding only the live columns.

        ``projection`` is a tuple of column positions the caller will
        read (None → all); ``selection`` a tuple of symbolic
        ``(pos, op, spec)`` pushdown predicates.  Returned tuples are
        always full-width — dead columns hold None, which is safe
        exactly because the pushdown compiler proved nothing reads them.
        """
        resolved = _resolve_selection(selection, params)
        arity = self.arity
        if projection is None:
            live = tuple(range(arity))
        else:
            live = set(projection)
            if resolved is not None:
                live.update(pos for pos, _, _ in resolved)
            live = tuple(sorted(live))
        values = [d.values for d in self.load_dictionaries()]
        rows: list = []
        template = [None] * arity
        for part in self.meta["partitions"]:
            if resolved is not None and not all(
                _partition_matches(part["minmax"], pos, op, value)
                for pos, op, value in resolved
            ):
                self.counters.partitions_pruned += 1
                continue
            columns = self._read_columns(part, live)
            decoded = {
                pos: [values[pos][i] for i in ids] for pos, ids in columns.items()
            }
            keep = range(part["rows"])
            if resolved is not None:
                try:
                    keep = [
                        i
                        for i in keep
                        if all(
                            _CMP[op](decoded[pos][i], value)
                            for pos, op, value in resolved
                        )
                    ]
                except (TypeError, KeyError):
                    # A surprise comparison: hand the whole partition
                    # downstream, where the compiled filters re-check.
                    keep = range(part["rows"])
            for i in keep:
                row = template[:]
                for pos in live:
                    row[pos] = decoded[pos][i]
                rows.append(tuple(row))
        return rows

    def scan_partition_groups(
        self, k: int, projection=None, selection=(), params=None
    ) -> list:
        """``k`` row groups for the sharded executor, one scan's worth.

        Partition files are the natural shard unit: whole partitions are
        dealt round-robin into ``k`` groups (pruned ones never read), so
        each shard materializes a disjoint slice without any hash pass
        over the data.  Correct whenever the lead scan needs no
        alignment with a downstream join — every output row derives from
        exactly one lead row, and the union of groups is the full scan.
        """
        resolved = _resolve_selection(selection, params)
        arity = self.arity
        if projection is None:
            live = tuple(range(arity))
        else:
            live = set(projection)
            if resolved is not None:
                live.update(pos for pos, _, _ in resolved)
            live = tuple(sorted(live))
        values = [d.values for d in self.load_dictionaries()]
        groups: list = [[] for _ in range(max(k, 1))]
        template = [None] * arity
        slot = 0
        for part in self.meta["partitions"]:
            if resolved is not None and not all(
                _partition_matches(part["minmax"], pos, op, value)
                for pos, op, value in resolved
            ):
                self.counters.partitions_pruned += 1
                continue
            columns = self._read_columns(part, live)
            decoded = {
                pos: [values[pos][i] for i in ids] for pos, ids in columns.items()
            }
            keep = range(part["rows"])
            if resolved is not None:
                try:
                    keep = [
                        i
                        for i in keep
                        if all(
                            _CMP[op](decoded[pos][i], value)
                            for pos, op, value in resolved
                        )
                    ]
                except (TypeError, KeyError):
                    keep = range(part["rows"])
            bucket = groups[slot]
            for i in keep:
                row = template[:]
                for pos in live:
                    row[pos] = decoded[pos][i]
                bucket.append(tuple(row))
            slot = (slot + 1) % len(groups)
        return groups

    def encoded_table(self):
        """The whole relation as one EncodedTable, straight from id pages.

        The persisted dictionaries produced the persisted ids, so the
        pages concatenate into valid column vectors without any
        re-encoding — a cold ``Relation.encoded()`` costs pure I/O plus
        one decode pass for the aligned raw row list.
        """
        from .vectors import ColumnVector, EncodedTable

        dicts = self.load_dictionaries()
        arity = self.arity
        live = tuple(range(arity))
        buffers = [array("q") for _ in range(arity)]
        for part in self.meta["partitions"]:
            columns = self._read_columns(part, live)
            for pos in live:
                buffers[pos].extend(columns[pos])
        values = [d.values for d in dicts]
        n = self.row_count
        rows = [
            tuple(values[pos][buffers[pos][i]] for pos in live) for i in range(n)
        ]
        columns = tuple(
            ColumnVector(buffers[pos], dicts[pos]) for pos in live
        )
        return EncodedTable(columns, rows, n)

    def encoded_scan(self, projection=None, selection=(), params=None):
        """A partial EncodedTable for the vector executor's leading scan.

        Only matching partitions' rows appear, and only live columns are
        read and carried as real id buffers — dead columns are zero-fill
        placeholders, safe exactly because the pushdown compiler proved
        no operator of the branch reads them (the aligned ``rows`` list
        likewise holds None there).
        """
        from .vectors import ColumnVector, EncodedTable

        dicts = self.load_dictionaries()
        resolved = _resolve_selection(selection, params)
        arity = self.arity
        if projection is None:
            live = tuple(range(arity))
        else:
            live = set(projection)
            if resolved is not None:
                live.update(pos for pos, _, _ in resolved)
            live = tuple(sorted(live))
        live_set = set(live)
        values = [d.values for d in dicts]
        buffers = {pos: array("q") for pos in live}
        rows: list = []
        template = [None] * arity
        for part in self.meta["partitions"]:
            if resolved is not None and not all(
                _partition_matches(part["minmax"], pos, op, value)
                for pos, op, value in resolved
            ):
                self.counters.partitions_pruned += 1
                continue
            columns = self._read_columns(part, live)
            decoded = {
                pos: [values[pos][i] for i in ids] for pos, ids in columns.items()
            }
            keep = range(part["rows"])
            if resolved is not None:
                try:
                    keep = [
                        i
                        for i in keep
                        if all(
                            _CMP[op](decoded[pos][i], value)
                            for pos, op, value in resolved
                        )
                    ]
                except (TypeError, KeyError):
                    keep = range(part["rows"])
            for pos in live:
                ids, buf = columns[pos], buffers[pos]
                for i in keep:
                    buf.append(ids[i])
            for i in keep:
                row = template[:]
                for pos in live:
                    row[pos] = decoded[pos][i]
                rows.append(tuple(row))
        n = len(rows)
        zero = array("q", bytes(8 * n))
        table_columns = tuple(
            ColumnVector(buffers[pos] if pos in live_set else zero, dicts[pos])
            for pos in range(arity)
        )
        return EncodedTable(table_columns, rows, n)

    def prune_fraction(self, restrictions) -> float:
        """Fraction of stored rows in partitions surviving ``restrictions``.

        ``restrictions`` are concrete ``(pos, op, value)`` triples (the
        cost model resolves constants at pricing time).  1.0 when the
        manifest carries no usable bounds — pruning never makes a plan
        *look* cheaper than an honest full scan without evidence.
        """
        total = self.row_count
        if not total or not restrictions:
            return 1.0
        kept = 0
        for part in self.meta["partitions"]:
            if all(
                _partition_matches(part["minmax"], pos, op, value)
                for pos, op, value in restrictions
            ):
                kept += part["rows"]
        return kept / total


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def _write_partition(path: str, chunk: list, dicts: tuple, parquet) -> dict:
    """Write one partition's id pages; return its manifest entry."""
    nrows = len(chunk)
    ncols = len(dicts)
    pages = [
        d.encode_batch(map(itemgetter(pos), chunk)) for pos, d in enumerate(dicts)
    ]
    minmax = {}
    for pos in range(ncols):
        bounds = _chunk_minmax(map(itemgetter(pos), chunk))
        if bounds is not None:
            minmax[str(pos)] = bounds
    if parquet is not None:
        filename = path + ".parquet"
        table = parquet.table(
            {f"c{pos}": parquet.array(pages[pos], type=parquet.int64())
             for pos in range(ncols)}
        )
        parquet.parquet.write_table(table, filename)
    else:
        filename = path + ".bin"
        with open(filename, "wb") as fh:
            fh.write(_PAGE_HEADER.pack(_PAGE_MAGIC, _FORMAT_VERSION, ncols, nrows))
            for page in pages:
                if sys.byteorder != "little":
                    page = array("q", page)
                    page.byteswap()
                fh.write(page.tobytes())
    return {
        "file": os.path.basename(filename),
        "rows": nrows,
        "minmax": minmax,
    }


def spill_relation(rel, path: str, rows_per_partition: int = 4096) -> RelationStore:
    """Persist one relation into ``path`` and return a reader over it."""
    if rows_per_partition < 1:
        raise StorageError("rows_per_partition must be at least 1")
    os.makedirs(path, exist_ok=True)
    parquet = get_pyarrow()
    # Deterministic partitioning: sorted rows spill identically across
    # runs, and sorting clusters values so per-partition min/max prune.
    try:
        rows = rel.sorted_rows()
    except TypeError:
        rows = rel.raw_list()
    dicts = rel.dictionaries()
    partitions = []
    for start in range(0, len(rows), rows_per_partition):
        chunk = rows[start : start + rows_per_partition]
        entry = _write_partition(
            os.path.join(path, f"part-{len(partitions):04d}"),
            chunk,
            dicts,
            parquet,
        )
        partitions.append(entry)
    element = rel.rtype.element
    meta = {
        "name": rel.name,
        "arity": len(element.attribute_names),
        "attributes": list(element.attribute_names),
        "key": list(rel.rtype.key),
        "row_count": len(rows),
        "codec": "parquet" if parquet is not None else "bin",
        "partitions": partitions,
    }
    with open(os.path.join(path, "meta.json"), "w", encoding="utf-8") as fh:
        json.dump(meta, fh, indent=1, sort_keys=True)
    with open(os.path.join(path, "schema.pkl"), "wb") as fh:
        pickle.dump(rel.rtype, fh)
    with open(os.path.join(path, "dicts.pkl"), "wb") as fh:
        pickle.dump(dicts, fh)
    with open(os.path.join(path, "stats.pkl"), "wb") as fh:
        pickle.dump(rel.stats(), fh)
    return RelationStore(path)


def spill_database(db, path: str, rows_per_partition: int = 4096) -> None:
    """Persist every relation of ``db`` into the directory ``path``.

    Statistics spill alongside the data, so :func:`open_database` plans
    as well as the warm database did — before its first scan.
    """
    os.makedirs(path, exist_ok=True)
    names = sorted(db.relations)
    for name in names:
        spill_relation(
            db.relations[name], os.path.join(path, name), rows_per_partition
        )
    meta = {
        "format": _FORMAT,
        "version": _FORMAT_VERSION,
        "name": db.name,
        "relations": names,
    }
    with open(os.path.join(path, "meta.json"), "w", encoding="utf-8") as fh:
        json.dump(meta, fh, indent=1, sort_keys=True)


def open_database(path: str):
    """Open a spilled directory as a database of cold, store-backed relations.

    Every relation knows its cardinality and statistics from the
    manifest, so planning, plan caching, and ``StatsCatalog.epoch()``
    work immediately; rows materialize lazily — and scans with pushdown
    may answer queries without ever materializing the full relation.
    """
    from .database import Database
    from .relation import Relation

    try:
        with open(os.path.join(path, "meta.json"), encoding="utf-8") as fh:
            meta = json.load(fh)
    except (OSError, ValueError) as exc:
        raise StorageError(f"unreadable database directory {path!r}: {exc}") from exc
    if meta.get("format") != _FORMAT:
        raise StorageError(
            f"{path!r} is not a {_FORMAT} database directory"
        )
    if meta.get("version", 0) > _FORMAT_VERSION:
        raise StorageError(
            f"{path!r} uses format version {meta['version']}, "
            f"newer than this reader ({_FORMAT_VERSION})"
        )
    db = Database(meta.get("name", "db"))
    for name in meta["relations"]:
        store = RelationStore(os.path.join(path, name))
        rel = Relation.from_store(name, store.relation_type(), store)
        rel._sink = db.subscriptions
        db.relations[name] = rel
    return db
