"""Relational substrate: rows, relation variables, databases, algebra."""

from .algebra import (
    antijoin,
    cartesian,
    difference,
    equijoin,
    intersection,
    project,
    select,
    semijoin,
    union,
)
from .database import Database
from .indexes import HashIndex, IndexCache
from .relation import Relation
from .rows import Row

__all__ = [
    "Database",
    "HashIndex",
    "IndexCache",
    "Relation",
    "Row",
    "antijoin",
    "cartesian",
    "difference",
    "equijoin",
    "intersection",
    "project",
    "select",
    "semijoin",
    "union",
]
