"""Relational substrate: rows, relation variables, databases, algebra."""

from .algebra import (
    antijoin,
    cartesian,
    difference,
    equijoin,
    intersection,
    project,
    select,
    semijoin,
    union,
)
from .database import Database
from .indexes import (
    HashIndex,
    IndexCache,
    PartitionCache,
    ShardView,
    SnapshotView,
    partition_rows,
    partition_views,
)
from .relation import Relation
from .rows import Row
from .stats import ColumnStats, DeltaStats, Histogram, StatsCatalog, TableStats
from .storage import (
    RelationStore,
    open_database,
    pyarrow_enabled,
    set_pyarrow_enabled,
    spill_database,
)
from .vectors import (
    ColumnVector,
    Dictionary,
    EncodedTable,
    numpy_enabled,
    set_numpy_enabled,
)

__all__ = [
    "ColumnStats",
    "ColumnVector",
    "Database",
    "DeltaStats",
    "Dictionary",
    "EncodedTable",
    "HashIndex",
    "Histogram",
    "IndexCache",
    "PartitionCache",
    "Relation",
    "RelationStore",
    "Row",
    "ShardView",
    "SnapshotView",
    "StatsCatalog",
    "TableStats",
    "numpy_enabled",
    "open_database",
    "pyarrow_enabled",
    "set_numpy_enabled",
    "set_pyarrow_enabled",
    "spill_database",
    "antijoin",
    "partition_rows",
    "partition_views",
    "cartesian",
    "difference",
    "equijoin",
    "intersection",
    "project",
    "select",
    "semijoin",
    "union",
]
