"""A small construction DSL for calculus ASTs.

Writing frozen dataclasses by hand is verbose; this module provides the
shorthand used throughout tests, examples, and the paper transcriptions:

    from repro.calculus import dsl as d

    ahead_2 = d.query(
        d.branch(d.each("r", "Infront")),
        d.branch(
            d.each("f", "Infront"), d.each("b", "Infront"),
            pred=d.eq(d.a("f", "back"), d.a("b", "front")),
            targets=[d.a("f", "front"), d.a("b", "back")],
        ),
    )

Every helper returns plain AST nodes from :mod:`repro.calculus.ast`.
"""

from __future__ import annotations

from collections.abc import Iterable

from . import ast


def _as_range(obj: str | ast.RangeExpr) -> ast.RangeExpr:
    if isinstance(obj, str):
        return ast.RelRef(obj)
    return obj


def _as_term(obj: object) -> ast.Term:
    if isinstance(
        obj, (ast.Const, ast.AttrRef, ast.VarRef, ast.ParamRef, ast.Arith, ast.TupleCons)
    ):
        return obj
    return ast.Const(obj)


# -- terms -------------------------------------------------------------------


def a(var: str, attr: str) -> ast.AttrRef:
    """``a("r", "front")`` is ``r.front``."""
    return ast.AttrRef(var, attr)


def v(var: str) -> ast.VarRef:
    return ast.VarRef(var)


def const(value: object) -> ast.Const:
    return ast.Const(value)


def param(name: str) -> ast.ParamRef:
    return ast.ParamRef(name)


def plus(left: object, right: object) -> ast.Arith:
    return ast.Arith("+", _as_term(left), _as_term(right))


def minus(left: object, right: object) -> ast.Arith:
    return ast.Arith("-", _as_term(left), _as_term(right))


def times(left: object, right: object) -> ast.Arith:
    return ast.Arith("*", _as_term(left), _as_term(right))


def mod(left: object, right: object) -> ast.Arith:
    return ast.Arith("MOD", _as_term(left), _as_term(right))


def tup(*items: object) -> ast.TupleCons:
    return ast.TupleCons(tuple(_as_term(i) for i in items))


# -- ranges ------------------------------------------------------------------


def rel(name: str) -> ast.RelRef:
    return ast.RelRef(name)


def selected(base: str | ast.RangeExpr, selector: str, *args: object) -> ast.Selected:
    return ast.Selected(_as_range(base), selector, tuple(_as_arg(x) for x in args))


def constructed(
    base: str | ast.RangeExpr, constructor: str, *args: object
) -> ast.Constructed:
    return ast.Constructed(_as_range(base), constructor, tuple(_as_arg(x) for x in args))


def _as_arg(obj: object) -> ast.Argument:
    if isinstance(obj, str):
        # Bare strings in argument position denote relation names; scalar
        # string constants must be wrapped with const("...").
        return ast.RelRef(obj)
    if isinstance(
        obj,
        (
            ast.Const,
            ast.ParamRef,
            ast.AttrRef,
            ast.RelRef,
            ast.Selected,
            ast.Constructed,
            ast.QueryRange,
            ast.ApplyVar,
        ),
    ):
        return obj
    return ast.Const(obj)


def inline(query: ast.Query) -> ast.QueryRange:
    return ast.QueryRange(query)


# -- predicates ----------------------------------------------------------------


TRUE = ast.TRUE


def eq(left: object, right: object) -> ast.Cmp:
    return ast.Cmp("=", _as_term(left), _as_term(right))


def ne(left: object, right: object) -> ast.Cmp:
    return ast.Cmp("<>", _as_term(left), _as_term(right))


def lt(left: object, right: object) -> ast.Cmp:
    return ast.Cmp("<", _as_term(left), _as_term(right))


def le(left: object, right: object) -> ast.Cmp:
    return ast.Cmp("<=", _as_term(left), _as_term(right))


def gt(left: object, right: object) -> ast.Cmp:
    return ast.Cmp(">", _as_term(left), _as_term(right))


def ge(left: object, right: object) -> ast.Cmp:
    return ast.Cmp(">=", _as_term(left), _as_term(right))


def not_(pred: ast.Pred) -> ast.Not:
    return ast.Not(pred)


def and_(*parts: ast.Pred) -> ast.Pred:
    flat = tuple(parts)
    if len(flat) == 1:
        return flat[0]
    return ast.And(flat)


def or_(*parts: ast.Pred) -> ast.Pred:
    flat = tuple(parts)
    if len(flat) == 1:
        return flat[0]
    return ast.Or(flat)


def some(vars: str | Iterable[str], range: str | ast.RangeExpr, pred: ast.Pred) -> ast.Some:
    names = (vars,) if isinstance(vars, str) else tuple(vars)
    return ast.Some(names, _as_range(range), pred)


def all_(vars: str | Iterable[str], range: str | ast.RangeExpr, pred: ast.Pred) -> ast.All:
    names = (vars,) if isinstance(vars, str) else tuple(vars)
    return ast.All(names, _as_range(range), pred)


def in_(element: object, range: str | ast.RangeExpr) -> ast.InRel:
    return ast.InRel(_as_term(element), _as_range(range))


# -- queries -------------------------------------------------------------------


def each(var: str, range: str | ast.RangeExpr) -> ast.Binding:
    return ast.Binding(var, _as_range(range))


def branch(
    *bindings: ast.Binding,
    pred: ast.Pred = TRUE,
    targets: Iterable[object] | None = None,
) -> ast.Branch:
    tgt = None if targets is None else tuple(_as_term(t) for t in targets)
    return ast.Branch(tuple(bindings), pred, tgt)


def query(*branches: ast.Branch) -> ast.Query:
    return ast.Query(tuple(branches))
