"""Tuple relational calculus: AST, DSL, evaluation, analysis, rewrites."""

from . import ast, dsl
from .analysis import (
    Occurrence,
    free_range_names,
    free_tuple_vars,
    is_positive_in,
    occurrences_of,
    positivity_violations,
    range_occurrences,
    uses_constructed_ranges,
)
from .evaluator import EvalStats, Evaluator, RangeValue, evaluate
from .pretty import render, render_pred, render_query, render_range, render_term
from .rewrite import (
    conjoin,
    conjuncts,
    eliminate_universals,
    negation_normal_form,
    nest_binding,
    nest_quantifier,
    simplify,
    unnest_query,
)
from .subst import (
    FreshNames,
    bound_vars,
    rename_vars,
    substitute_params,
    substitute_ranges,
    transform,
)

__all__ = [
    "EvalStats",
    "Evaluator",
    "FreshNames",
    "Occurrence",
    "RangeValue",
    "ast",
    "bound_vars",
    "conjoin",
    "conjuncts",
    "dsl",
    "eliminate_universals",
    "evaluate",
    "free_range_names",
    "free_tuple_vars",
    "is_positive_in",
    "negation_normal_form",
    "nest_binding",
    "nest_quantifier",
    "occurrences_of",
    "positivity_violations",
    "range_occurrences",
    "rename_vars",
    "render",
    "render_pred",
    "render_query",
    "render_range",
    "render_term",
    "simplify",
    "substitute_params",
    "substitute_ranges",
    "transform",
    "unnest_query",
    "uses_constructed_ranges",
]
