"""Substitution and renaming over calculus ASTs.

Constructor/selector application instantiates a definition body by
replacing its formal names with actual arguments (section 3.2: "taking
the function f which corresponds to the constructor ... and replacing all
formal parameters by their actual values").  Three substitutions cover
everything the paper needs:

* :func:`substitute_ranges` — formal relation names -> actual range
  expressions (also used to splice fixpoint ApplyVars in);
* :func:`substitute_params` — scalar formal parameters -> terms;
* :func:`rename_vars` — alpha-renaming of tuple variables (fresh names
  avoid capture when bodies are inlined into surrounding queries).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable
from itertools import count

from . import ast


def map_children(node: ast.Node, fn: Callable[[ast.Node], ast.Node]) -> ast.Node:
    """Rebuild ``node`` with ``fn`` applied to every direct AST child."""
    changes: dict[str, object] = {}
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        if ast.is_node(value):
            new = fn(value)
            if new is not value:
                changes[field.name] = new
        elif isinstance(value, tuple) and any(ast.is_node(i) for i in value):
            new_items = tuple(fn(i) if ast.is_node(i) else i for i in value)
            if new_items != value:
                changes[field.name] = new_items
    if not changes:
        return node
    return dataclasses.replace(node, **changes)


def transform(node: ast.Node, fn: Callable[[ast.Node], ast.Node | None]) -> ast.Node:
    """Bottom-up rewrite: apply ``fn`` to each node after its children.

    ``fn`` returns a replacement node or None to keep the rebuilt node.
    """

    def go(n: ast.Node) -> ast.Node:
        rebuilt = map_children(n, go)
        replacement = fn(rebuilt)
        return rebuilt if replacement is None else replacement

    return go(node)


def substitute_ranges(node: ast.Node, mapping: dict[str, ast.RangeExpr]) -> ast.Node:
    """Replace every ``RelRef(name)`` with ``mapping[name]`` where defined."""
    if not mapping:
        return node

    def rule(n: ast.Node) -> ast.Node | None:
        if isinstance(n, ast.RelRef) and n.name in mapping:
            return mapping[n.name]
        return None

    return transform(node, rule)


def substitute_params(node: ast.Node, mapping: dict[str, ast.Term]) -> ast.Node:
    """Replace every ``ParamRef(name)`` with ``mapping[name]`` where defined."""
    if not mapping:
        return node

    def rule(n: ast.Node) -> ast.Node | None:
        if isinstance(n, ast.ParamRef) and n.name in mapping:
            return mapping[n.name]
        return None

    return transform(node, rule)


def rename_vars(node: ast.Node, mapping: dict[str, str]) -> ast.Node:
    """Rename tuple variables (bindings, quantifiers, references)."""
    if not mapping:
        return node

    def rule(n: ast.Node) -> ast.Node | None:
        if isinstance(n, ast.AttrRef) and n.var in mapping:
            return ast.AttrRef(mapping[n.var], n.attr)
        if isinstance(n, ast.VarRef) and n.var in mapping:
            return ast.VarRef(mapping[n.var])
        if isinstance(n, ast.Binding) and n.var in mapping:
            return dataclasses.replace(n, var=mapping[n.var])
        if isinstance(n, (ast.Some, ast.All)) and any(v in mapping for v in n.vars):
            return dataclasses.replace(
                n, vars=tuple(mapping.get(v, v) for v in n.vars)
            )
        return None

    return transform(node, rule)


def bound_vars(node: ast.Node) -> set[str]:
    """All tuple-variable names bound anywhere inside ``node``."""
    names: set[str] = set()
    for n in ast.walk(node):
        if isinstance(n, ast.Binding):
            names.add(n.var)
        elif isinstance(n, (ast.Some, ast.All)):
            names.update(n.vars)
    return names


class FreshNames:
    """A generator of variable names guaranteed fresh w.r.t. a seed set."""

    def __init__(self, taken: set[str] | None = None, prefix: str = "v") -> None:
        self._taken = set(taken or ())
        self._prefix = prefix
        self._counter = count(1)

    def fresh(self, hint: str | None = None) -> str:
        base = hint or self._prefix
        if base not in self._taken:
            self._taken.add(base)
            return base
        while True:
            candidate = f"{base}_{next(self._counter)}"
            if candidate not in self._taken:
                self._taken.add(candidate)
                return candidate

    def freshen_all(self, node: ast.Node) -> ast.Node:
        """Rename every bound variable of ``node`` to a fresh name."""
        mapping = {v: self.fresh(v) for v in sorted(bound_vars(node))}
        return rename_vars(node, mapping)
