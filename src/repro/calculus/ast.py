"""Abstract syntax of the DBPL tuple relational calculus.

The expression form at the heart of the paper is the set constructor

    { EACH r IN Infront: TRUE,
      <f.front, b.back> OF EACH f, b IN Infront: f.back = b.front }

— a union of *branches*; each branch binds tuple variables over range
expressions, filters them with a first-order predicate, and emits either
the bound tuple itself or an explicit target list.  Range expressions may
be relation variables, selected relations ``Rel[sel(args)]``, constructed
relations ``Rel{con(args)}``, or nested set expressions (range nesting,
[JaKo 83]).

All nodes are immutable (frozen dataclasses) and hashable, which the
compiler exploits: instantiated constructor applications are canonical-
ized by the substituted AST itself.

The module also provides :func:`iter_children` / :func:`walk` for generic
traversal, used by the analysis and rewrite passes.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator
from dataclasses import dataclass
from typing import Union

from ..types import RecordType

# ---------------------------------------------------------------------------
# Scalar terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Const:
    """A literal value: ``"table"``, ``7``, ``TRUE``."""

    value: object


@dataclass(frozen=True)
class AttrRef:
    """``r.front`` — attribute ``attr`` of tuple variable ``var``."""

    var: str
    attr: str


@dataclass(frozen=True)
class VarRef:
    """``r`` used as a whole-tuple value (e.g. in ``r IN Rel{c}``)."""

    var: str


@dataclass(frozen=True)
class ParamRef:
    """A scalar formal parameter of a selector/constructor (e.g. ``Obj``)."""

    name: str


@dataclass(frozen=True)
class Arith:
    """Arithmetic term: ``s.number + 1``.  op in {+, -, *, DIV, MOD}."""

    op: str
    left: "Term"
    right: "Term"


@dataclass(frozen=True)
class TupleCons:
    """``<f.front, b.back>`` used as a tuple value (targets, membership)."""

    items: tuple["Term", ...]


Term = Union[Const, AttrRef, VarRef, ParamRef, Arith, TupleCons]


# ---------------------------------------------------------------------------
# Range expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RelRef:
    """A named range: relation variable, formal parameter, or view name."""

    name: str


@dataclass(frozen=True)
class Selected:
    """``base[selector(args)]`` — a selected subrelation (section 2.3)."""

    base: "RangeExpr"
    selector: str
    args: tuple["Argument", ...] = ()


@dataclass(frozen=True)
class Constructed:
    """``base{constructor(args)}`` — a constructed relation (section 3)."""

    base: "RangeExpr"
    constructor: str
    args: tuple["Argument", ...] = ()


@dataclass(frozen=True)
class QueryRange:
    """An inline set expression used as a range (range nesting, N1–N3)."""

    query: "Query"


@dataclass(frozen=True)
class ApplyVar:
    """A fixpoint variable standing for one instantiated application.

    Inserted by the constructor-instantiation pass in place of
    :class:`Constructed` ranges; ``token`` canonically identifies the
    application (see ``repro.constructors.instantiate``) and ``schema``
    is the element type of the constructed result.
    """

    token: object
    schema: RecordType = dataclasses.field(compare=False)

    def __hash__(self) -> int:  # schema excluded from identity
        return hash(("ApplyVar", self.token))


RangeExpr = Union[RelRef, Selected, Constructed, QueryRange, ApplyVar]

#: Arguments of selector/constructor applications: scalar terms or ranges.
Argument = Union[Const, ParamRef, AttrRef, RelRef, Selected, Constructed, QueryRange, ApplyVar]


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TruePred:
    """The constant predicate TRUE."""


@dataclass(frozen=True)
class Cmp:
    """Comparison: op in {=, <>, <, <=, >, >=}."""

    op: str
    left: Term
    right: Term


@dataclass(frozen=True)
class Not:
    pred: "Pred"


@dataclass(frozen=True)
class And:
    parts: tuple["Pred", ...]


@dataclass(frozen=True)
class Or:
    parts: tuple["Pred", ...]


@dataclass(frozen=True)
class Some:
    """``SOME r1, r2 IN range (pred)`` — existential, range-coupled."""

    vars: tuple[str, ...]
    range: RangeExpr
    pred: "Pred"


@dataclass(frozen=True)
class All:
    """``ALL r IN range (pred)`` — universal, range-coupled."""

    vars: tuple[str, ...]
    range: RangeExpr
    pred: "Pred"


@dataclass(frozen=True)
class InRel:
    """Membership: ``element IN range`` where element is tuple-valued."""

    element: Term
    range: RangeExpr


Pred = Union[TruePred, Cmp, Not, And, Or, Some, All, InRel]

TRUE = TruePred()


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Binding:
    """``EACH var IN range`` within a branch."""

    var: str
    range: RangeExpr


@dataclass(frozen=True)
class Branch:
    """One union arm: optional target list, bindings, predicate.

    ``targets is None`` means the branch emits the bound tuple of its
    single binding unchanged (the paper's ``EACH r IN Rel: TRUE`` shape).
    """

    bindings: tuple[Binding, ...]
    pred: Pred = TRUE
    targets: tuple[Term, ...] | None = None


@dataclass(frozen=True)
class Query:
    """A relational set expression: the union of its branches."""

    branches: tuple[Branch, ...]


# ---------------------------------------------------------------------------
# Generic traversal
# ---------------------------------------------------------------------------

_NODE_TYPES = (
    Const,
    AttrRef,
    VarRef,
    ParamRef,
    Arith,
    TupleCons,
    RelRef,
    Selected,
    Constructed,
    QueryRange,
    ApplyVar,
    TruePred,
    Cmp,
    Not,
    And,
    Or,
    Some,
    All,
    InRel,
    Binding,
    Branch,
    Query,
)

Node = Union[_NODE_TYPES]  # type: ignore[valid-type]


def is_node(obj: object) -> bool:
    return isinstance(obj, _NODE_TYPES)


def node_span(node: object):
    """The source :class:`~repro.analysis.diagnostics.Span` the parser
    attached to ``node``, or None for programmatically built nodes.

    Spans live outside the dataclass fields so node equality/hashing —
    which the compiler uses for canonicalization — is unaffected.
    """
    return getattr(node, "_span", None)


def iter_children(node: Node) -> Iterator[Node]:
    """Yield the direct AST children of ``node`` in field order."""
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        if is_node(value):
            yield value
        elif isinstance(value, tuple):
            for item in value:
                if is_node(item):
                    yield item


def walk(node: Node) -> Iterator[Node]:
    """Yield ``node`` and all descendants, pre-order."""
    yield node
    for child in iter_children(node):
        yield from walk(child)
